#![forbid(unsafe_code)]
//! Workspace umbrella for the Shotgun front-end reproduction.
//!
//! The code lives in the `crates/` members; this package only hosts the
//! cross-crate integration tests under `tests/` and the runnable
//! `examples/`. Start with `examples/quickstart.rs` and the
//! `fe_sim::Experiment` API.
