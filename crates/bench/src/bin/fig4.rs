#![forbid(unsafe_code)]
//! Figure 4: contribution of the hottest static branches to dynamic
//! branch execution — all branches vs unconditional-only — for Oracle
//! and DB2. Pure offline program analytics — no timing simulation,
//! hence no `Experiment` sweep.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig4
//! ```

use fe_bench::{banner, env_u64};
use fe_cfg::{analytics, workloads};

fn main() {
    banner(
        "Figure 4",
        "dynamic coverage of the K hottest static branches",
    );
    let instructions = env_u64("SHOTGUN_INSTRS", 8_000_000);

    let ks = [1024usize, 2048, 3072, 4096, 5120, 6144, 7168, 8192];
    for wl in [workloads::oracle(), workloads::db2()] {
        let program = wl.build();
        let prof = analytics::branch_profile(&program, 2, instructions);
        println!(
            "{} — {} static branches executed ({} unconditional)",
            wl.name,
            prof.static_branches(),
            prof.static_uncond(),
        );
        println!("{:>8} {:>14} {:>18}", "K", "all branches", "unconditional");
        for k in ks {
            println!(
                "{:>8} {:>13.1}% {:>17.1}%",
                k,
                100.0 * prof.coverage_all(k),
                100.0 * prof.coverage_uncond(k),
            );
        }
        println!();
    }
    println!(
        "paper shape: a 2K-entry budget covers only ~65-75% of all dynamic \
         branches but ~85-95% of unconditional executions; unconditional \
         curves saturate by ~3K static branches."
    );
}
