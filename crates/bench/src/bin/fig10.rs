#![forbid(unsafe_code)]
//! Figure 10: Shotgun prefetch accuracy under the 8-bit vector,
//! Entire Region and 5-Blocks region prefetching mechanisms.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig10
//! ```

use fe_bench::{banner, experiment, paper_shape, print_metric_table, write_report};
use fe_sim::SchemeSpec;
use shotgun::{RegionPolicy, ShotgunConfig};

const POLICIES: [RegionPolicy; 3] = [
    RegionPolicy::Bit8,
    RegionPolicy::EntireRegion,
    RegionPolicy::FiveBlocks,
];

fn main() {
    banner(
        "Figure 10",
        "prefetch accuracy by region prefetch mechanism",
    );
    let schemes: Vec<SchemeSpec> = POLICIES
        .iter()
        .map(|p| SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(*p)))
        .collect();
    let report = experiment().schemes(schemes).run();
    print_metric_table(
        &report,
        "Prefetch accuracy",
        &report.scheme_labels(),
        |s| s.prefetch_accuracy(),
        true,
    );
    write_report(&report, "fig10");
    paper_shape(
        "8-bit ~71% average accuracy vs Entire Region ~56% and \
         5-Blocks ~43%; the 5-Blocks collapse is worst on streaming \
         (many regions are smaller than five lines).",
    );
}
