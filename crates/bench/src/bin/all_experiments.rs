#![forbid(unsafe_code)]
//! Runs every table/figure experiment in sequence — the full
//! reproduction pass (see the experiment index in the repository
//! README).
//!
//! ```sh
//! cargo run --release -p fe-bench --bin all_experiments
//! # faster, noisier:
//! SHOTGUN_INSTRS=3000000 SHOTGUN_WARMUP=1000000 cargo run --release -p fe-bench --bin all_experiments
//! ```
//!
//! Each heavy sweep is one `Experiment` session, so its cells fan out
//! across all cores and the whole pass stays within minutes.

use fe_bench::{banner, default_len, experiment, experiment_on, write_report, WORKLOAD_ORDER};
use fe_cfg::{analytics, workloads};
use fe_sim::{render_table, SchemeSpec};
use shotgun::{RegionPolicy, ShotgunConfig};

fn main() {
    let len = default_len();
    let t0 = std::time::Instant::now();

    // ---- Characterization (Table 1, Figs. 3-4) -----------------------
    banner("Table 1", "BTB MPKI of a 2K-entry BTB, no prefetching");
    let table1 = experiment().scheme(SchemeSpec::NoPrefetch).run();
    println!("{:12} {:>12}", "workload", "measured");
    for wl in WORKLOAD_ORDER {
        println!(
            "{:12} {:>12.1}",
            wl,
            table1.cell(wl, &SchemeSpec::NoPrefetch).metrics.btb_mpki
        );
    }
    write_report(&table1, "table1");

    banner("Figure 3", "region spatial locality (within-10-lines mass)");
    for wl in fe_bench::suite() {
        let program = wl.build();
        let loc = analytics::region_locality(&program, 1, len.measure.min(4_000_000));
        println!(
            "{:12} within10 {:>5.1}%  within16 {:>5.1}%",
            wl.name,
            100.0 * loc.within(10),
            100.0 * loc.within(16)
        );
    }

    banner("Figure 4", "branch coverage at 2K static branches");
    for wl in [workloads::oracle(), workloads::db2()] {
        let program = wl.build();
        let prof = analytics::branch_profile(&program, 2, len.measure);
        println!(
            "{:12} all@2K {:>5.1}%  uncond@2K {:>5.1}%  ({} statics, {} uncond)",
            wl.name,
            100.0 * prof.coverage_all(2048),
            100.0 * prof.coverage_uncond(2048),
            prof.static_branches(),
            prof.static_uncond(),
        );
    }

    // ---- Main comparison (Figs. 1, 6, 7) ------------------------------
    banner("Figures 1/6/7", "scheme comparison sweep");
    let main_report = experiment()
        .schemes([
            SchemeSpec::NoPrefetch,
            SchemeSpec::Confluence,
            SchemeSpec::boomerang(),
            SchemeSpec::shotgun(),
            SchemeSpec::Ideal,
        ])
        .run();
    let spd = main_report.speedup_series(
        &WORKLOAD_ORDER,
        &["confluence", "boomerang", "shotgun", "ideal"],
    );
    print!(
        "{}",
        render_table("Fig 1+7: speedup over no-prefetch", &spd, "gmean", false)
    );
    let cov = main_report.coverage_series(
        &WORKLOAD_ORDER,
        &["confluence", "boomerang", "shotgun", "ideal"],
    );
    print!(
        "{}",
        render_table("\nFig 6: stall-cycle coverage", &cov, "avg", true)
    );
    write_report(&main_report, "main_comparison");

    // ---- Region policy study (Figs. 8-11) -----------------------------
    banner("Figures 8-11", "region prefetch mechanism study");
    let mut policy_schemes = vec![SchemeSpec::NoPrefetch];
    for policy in RegionPolicy::ALL {
        policy_schemes.push(SchemeSpec::Shotgun(
            ShotgunConfig::default().with_policy(policy),
        ));
    }
    let policy_report = experiment().schemes(policy_schemes).run();
    let labels = policy_report.comparison_labels();
    let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    print!(
        "{}",
        render_table(
            "Fig 8: coverage by policy",
            &policy_report.coverage_series(&WORKLOAD_ORDER, &refs),
            "avg",
            true,
        )
    );
    print!(
        "{}",
        render_table(
            "\nFig 9: speedup by policy",
            &policy_report.speedup_series(&WORKLOAD_ORDER, &refs),
            "gmean",
            false,
        )
    );
    let acc_refs: Vec<&str> = refs
        .iter()
        .filter(|l| !l.contains("No bit") && !l.contains("32-bit"))
        .copied()
        .collect();
    print!(
        "{}",
        render_table(
            "\nFig 10: prefetch accuracy",
            &policy_report.metric_series(
                &WORKLOAD_ORDER,
                &acc_refs,
                |s| s.prefetch_accuracy(),
                false
            ),
            "avg",
            true,
        )
    );
    print!(
        "{}",
        render_table(
            "\nFig 11: L1-D fill latency (cycles)",
            &policy_report.metric_series(
                &WORKLOAD_ORDER,
                &acc_refs,
                |s| s.avg_l1d_fill_latency(),
                false,
            ),
            "avg",
            false,
        )
    );
    write_report(&policy_report, "region_policies");

    // ---- C-BTB sensitivity (Fig. 12) ----------------------------------
    banner("Figure 12", "C-BTB size sensitivity");
    let mut cbtb_schemes = vec![SchemeSpec::NoPrefetch];
    for entries in [64u32, 128, 1024] {
        cbtb_schemes.push(SchemeSpec::Shotgun(
            ShotgunConfig::default().with_cbtb_entries(entries),
        ));
    }
    let cbtb_report = experiment().schemes(cbtb_schemes).run();
    let cbtb_labels = cbtb_report.comparison_labels();
    let cbtb_refs: Vec<&str> = cbtb_labels.iter().map(|s| s.as_str()).collect();
    print!(
        "{}",
        render_table(
            "Fig 12: speedup by C-BTB entries (64/128/1K)",
            &cbtb_report.speedup_series(&WORKLOAD_ORDER, &cbtb_refs),
            "gmean",
            false,
        )
    );
    write_report(&cbtb_report, "cbtb_sensitivity");

    // ---- BTB budget sweep (Fig. 13) -----------------------------------
    banner("Figure 13", "BTB storage budget sweep (oracle, db2)");
    let mut budget_schemes = vec![SchemeSpec::NoPrefetch];
    for budget in [512u32, 1024, 2048, 4096, 8192] {
        budget_schemes.push(SchemeSpec::Boomerang {
            btb_entries: budget,
        });
        budget_schemes.push(SchemeSpec::Shotgun(ShotgunConfig::for_budget(budget)));
    }
    let budget_report = experiment_on([workloads::oracle(), workloads::db2()])
        .schemes(budget_schemes)
        .run();
    for wl in ["oracle", "db2"] {
        println!("{wl}");
        println!("{:>8} {:>12} {:>12}", "budget", "boomerang", "shotgun");
        for budget in [512u32, 1024, 2048, 4096, 8192] {
            let boom = budget_report.cell(
                wl,
                &SchemeSpec::Boomerang {
                    btb_entries: budget,
                },
            );
            let shot =
                budget_report.cell(wl, &SchemeSpec::Shotgun(ShotgunConfig::for_budget(budget)));
            println!(
                "{:>8} {:>12.3} {:>12.3}",
                budget,
                boom.metrics.speedup.unwrap(),
                shot.metrics.speedup.unwrap()
            );
        }
    }
    write_report(&budget_report, "btb_budgets");

    println!(
        "\nall experiments done in {:.0}s",
        t0.elapsed().as_secs_f64()
    );
}
