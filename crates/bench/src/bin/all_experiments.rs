//! Runs every table/figure experiment in sequence — the full
//! reproduction pass behind EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin all_experiments
//! # faster, noisier:
//! SHOTGUN_INSTRS=3000000 SHOTGUN_WARMUP=1000000 cargo run --release -p fe-bench --bin all_experiments
//! ```
//!
//! The heavy sweeps share one `run_suite` invocation per scheme set so
//! the whole pass stays within minutes.

use fe_bench::{banner, default_len, machine, suite, SEED, WORKLOAD_ORDER};
use fe_cfg::{analytics, workloads};
use fe_model::stats::speedup;
use fe_sim::{
    coverage_series, metric_series, render_table, run_scheme, run_suite, speedup_series,
    SchemeSpec,
};
use shotgun::{RegionPolicy, ShotgunConfig};

fn main() {
    let machine = machine();
    let len = default_len();
    let t0 = std::time::Instant::now();

    // ---- Characterization (Table 1, Figs. 3-4) -----------------------
    banner("Table 1", "BTB MPKI of a 2K-entry BTB, no prefetching");
    let presets = suite();
    println!("{:12} {:>12}", "workload", "measured");
    for wl in &presets {
        let program = wl.build();
        let stats = run_scheme(&program, &SchemeSpec::NoPrefetch, &machine, len, SEED);
        println!("{:12} {:>12.1}", wl.name, stats.btb_mpki());
    }

    banner("Figure 3", "region spatial locality (within-10-lines mass)");
    for wl in &presets {
        let program = wl.build();
        let loc = analytics::region_locality(&program, 1, len.measure.min(4_000_000));
        println!(
            "{:12} within10 {:>5.1}%  within16 {:>5.1}%",
            wl.name,
            100.0 * loc.within(10),
            100.0 * loc.within(16)
        );
    }

    banner("Figure 4", "branch coverage at 2K static branches");
    for wl in [workloads::oracle(), workloads::db2()] {
        let program = wl.build();
        let prof = analytics::branch_profile(&program, 2, len.measure);
        println!(
            "{:12} all@2K {:>5.1}%  uncond@2K {:>5.1}%  ({} statics, {} uncond)",
            wl.name,
            100.0 * prof.coverage_all(2048),
            100.0 * prof.coverage_uncond(2048),
            prof.static_branches(),
            prof.static_uncond(),
        );
    }

    // ---- Main comparison (Figs. 1, 6, 7) ------------------------------
    banner("Figures 1/6/7", "scheme comparison sweep");
    let main_schemes = [
        SchemeSpec::NoPrefetch,
        SchemeSpec::Confluence,
        SchemeSpec::boomerang(),
        SchemeSpec::shotgun(),
        SchemeSpec::Ideal,
    ];
    let results = run_suite(&presets, &main_schemes, &machine, len, SEED);
    let spd = speedup_series(
        &results,
        &WORKLOAD_ORDER,
        "no-prefetch",
        &["confluence", "boomerang", "shotgun", "ideal"],
    );
    print!("{}", render_table("Fig 1+7: speedup over no-prefetch", &spd, "gmean", false));
    let cov = coverage_series(
        &results,
        &WORKLOAD_ORDER,
        "no-prefetch",
        &["confluence", "boomerang", "shotgun", "ideal"],
    );
    print!("{}", render_table("\nFig 6: stall-cycle coverage", &cov, "avg", true));

    // ---- Region policy study (Figs. 8-11) -----------------------------
    banner("Figures 8-11", "region prefetch mechanism study");
    let mut policy_schemes = vec![SchemeSpec::NoPrefetch];
    for policy in RegionPolicy::ALL {
        policy_schemes.push(SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(policy)));
    }
    let policy_results = run_suite(&presets, &policy_schemes, &machine, len, SEED);
    let labels: Vec<String> = policy_schemes[1..].iter().map(|s| s.label()).collect();
    let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    print!(
        "{}",
        render_table(
            "Fig 8: coverage by policy",
            &coverage_series(&policy_results, &WORKLOAD_ORDER, "no-prefetch", &refs),
            "avg",
            true,
        )
    );
    print!(
        "{}",
        render_table(
            "\nFig 9: speedup by policy",
            &speedup_series(&policy_results, &WORKLOAD_ORDER, "no-prefetch", &refs),
            "gmean",
            false,
        )
    );
    let acc_refs: Vec<&str> =
        refs.iter().filter(|l| !l.contains("No bit") && !l.contains("32-bit")).copied().collect();
    print!(
        "{}",
        render_table(
            "\nFig 10: prefetch accuracy",
            &metric_series(&policy_results, &WORKLOAD_ORDER, &acc_refs, |s| s.prefetch_accuracy(), false),
            "avg",
            true,
        )
    );
    print!(
        "{}",
        render_table(
            "\nFig 11: L1-D fill latency (cycles)",
            &metric_series(
                &policy_results,
                &WORKLOAD_ORDER,
                &acc_refs,
                |s| s.avg_l1d_fill_latency(),
                false,
            ),
            "avg",
            false,
        )
    );

    // ---- C-BTB sensitivity (Fig. 12) ----------------------------------
    banner("Figure 12", "C-BTB size sensitivity");
    let mut cbtb_schemes = vec![SchemeSpec::NoPrefetch];
    for entries in [64u32, 128, 1024] {
        cbtb_schemes.push(SchemeSpec::Shotgun(ShotgunConfig::default().with_cbtb_entries(entries)));
    }
    let cbtb_results = run_suite(&presets, &cbtb_schemes, &machine, len, SEED);
    let cbtb_labels: Vec<String> = cbtb_schemes[1..].iter().map(|s| s.label()).collect();
    let cbtb_refs: Vec<&str> = cbtb_labels.iter().map(|s| s.as_str()).collect();
    print!(
        "{}",
        render_table(
            "Fig 12: speedup by C-BTB entries (64/128/1K)",
            &speedup_series(&cbtb_results, &WORKLOAD_ORDER, "no-prefetch", &cbtb_refs),
            "gmean",
            false,
        )
    );

    // ---- BTB budget sweep (Fig. 13) -----------------------------------
    banner("Figure 13", "BTB storage budget sweep (oracle, db2)");
    for wl in [workloads::oracle(), workloads::db2()] {
        let program = wl.build();
        let base = run_scheme(&program, &SchemeSpec::NoPrefetch, &machine, len, SEED);
        println!("{}", wl.name);
        println!("{:>8} {:>12} {:>12}", "budget", "boomerang", "shotgun");
        for budget in [512u32, 1024, 2048, 4096, 8192] {
            let boom = run_scheme(
                &program,
                &SchemeSpec::Boomerang { btb_entries: budget },
                &machine,
                len,
                SEED,
            );
            let shot = run_scheme(
                &program,
                &SchemeSpec::Shotgun(ShotgunConfig::for_budget(budget)),
                &machine,
                len,
                SEED,
            );
            println!("{:>8} {:>12.3} {:>12.3}", budget, speedup(&base, &boom), speedup(&base, &shot));
        }
    }

    println!("\nall experiments done in {:.0}s", t0.elapsed().as_secs_f64());
}
