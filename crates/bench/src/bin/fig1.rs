//! Figure 1: speedup of the state-of-the-art unified front-end
//! prefetchers (Confluence, Boomerang) and an ideal front end over a
//! no-prefetch baseline.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig1
//! ```

use fe_bench::{banner, experiment, write_report, WORKLOAD_ORDER};
use fe_sim::{render_table, SchemeSpec};

fn main() {
    banner(
        "Figure 1",
        "Confluence / Boomerang / Ideal speedup over no-prefetch",
    );
    let report = experiment()
        .schemes([
            SchemeSpec::NoPrefetch,
            SchemeSpec::Confluence,
            SchemeSpec::boomerang(),
            SchemeSpec::Ideal,
        ])
        .run();
    let series = report.speedup_series(&WORKLOAD_ORDER, &["confluence", "boomerang", "ideal"]);
    print!(
        "{}",
        render_table("Speedup over no-prefetch baseline", &series, "gmean", false)
    );
    write_report(&report, "fig1");
    println!(
        "\npaper shape: Boomerang >= Confluence on small-footprint workloads \
         (nutch, zeus); Confluence wins on oracle/db2; ideal on top everywhere."
    );
}
