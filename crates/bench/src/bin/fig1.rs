#![forbid(unsafe_code)]
//! Figure 1: speedup of the state-of-the-art unified front-end
//! prefetchers (Confluence, Boomerang) and an ideal front end over a
//! no-prefetch baseline.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig1
//! ```

use fe_bench::{banner, experiment, paper_shape, print_speedup_table, write_report};
use fe_sim::SchemeSpec;

fn main() {
    banner(
        "Figure 1",
        "Confluence / Boomerang / Ideal speedup over no-prefetch",
    );
    let report = experiment()
        .schemes([
            SchemeSpec::NoPrefetch,
            SchemeSpec::Confluence,
            SchemeSpec::boomerang(),
            SchemeSpec::Ideal,
        ])
        .run();
    print_speedup_table(&report, &["confluence", "boomerang", "ideal"]);
    write_report(&report, "fig1");
    paper_shape(
        "Boomerang >= Confluence on small-footprint workloads \
         (nutch, zeus); Confluence wins on oracle/db2; ideal on top everywhere.",
    );
}
