//! Figure 1: speedup of the state-of-the-art unified front-end
//! prefetchers (Confluence, Boomerang) and an ideal front end over a
//! no-prefetch baseline.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig1
//! ```

use fe_bench::{banner, default_len, machine, suite, SEED, WORKLOAD_ORDER};
use fe_sim::{render_table, run_suite, speedup_series, SchemeSpec};

fn main() {
    banner("Figure 1", "Confluence / Boomerang / Ideal speedup over no-prefetch");
    let schemes = [
        SchemeSpec::NoPrefetch,
        SchemeSpec::Confluence,
        SchemeSpec::boomerang(),
        SchemeSpec::Ideal,
    ];
    let results = run_suite(&suite(), &schemes, &machine(), default_len(), SEED);
    let series = speedup_series(
        &results,
        &WORKLOAD_ORDER,
        "no-prefetch",
        &["confluence", "boomerang", "ideal"],
    );
    print!("{}", render_table("Speedup over no-prefetch baseline", &series, "gmean", false));
    println!(
        "\npaper shape: Boomerang >= Confluence on small-footprint workloads \
         (nutch, zeus); Confluence wins on oracle/db2; ideal on top everywhere."
    );
}
