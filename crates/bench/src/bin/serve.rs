#![forbid(unsafe_code)]
//! Experiment-service smoke + throughput harness: boots an in-process
//! `fe-serve` daemon on a loopback port, submits the same sweep twice
//! over real TCP, and enforces the service's two headline guarantees:
//!
//! 1. the second submission is served **entirely** from the
//!    content-addressed result cache (zero recomputed cells), and
//! 2. its report is **byte-identical** to the first run's — served
//!    results are indistinguishable from computed ones.
//!
//! Emitted as `BENCH_serve.json` under `SHOTGUN_JSON_DIR`: wall time,
//! jobs/s, and cache-hit rate per submission — the tracked throughput
//! trajectory of the service path (queue + checkpoint + cache + wire
//! protocol overhead rides on top of raw simulation).
//!
//! ```sh
//! cargo run --release -p fe-bench --bin serve
//! ```
//!
//! Standard knobs apply (`SHOTGUN_INSTRS`/`_WARMUP`/`_SCALE`,
//! `SHOTGUN_THREADS`, `SHOTGUN_JSON_DIR`); `SHOTGUN_SAMPLING` switches
//! the sweep to sampled mode, which also exercises the warmed-state
//! snapshot store. The service root is a per-process temp directory,
//! removed on success.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fe_bench::{banner, default_len, env_f64, suite, threads, write_serve_json, ServeRun, SEED};
use fe_serve::{submit_job, ClientOutcome, ExperimentService, JobSpec, JobWorkload, Server};
use fe_sim::{SamplingSpec, SchemeSpec};

fn main() {
    banner(
        "Serve",
        "experiment service: cold submission, then 100% cache-hit resubmission",
    );
    let len = default_len();
    let sampling = std::env::var("SHOTGUN_SAMPLING")
        .is_ok()
        .then(|| SamplingSpec::DEFAULT.from_env());
    if let Some(s) = sampling {
        if let Err(e) = s.validate() {
            eprintln!("invalid sampling spec: {e}");
            std::process::exit(2);
        }
    }
    let scale = env_f64("SHOTGUN_SCALE", 1.0);
    let spec = JobSpec {
        workloads: suite()
            .iter()
            .map(|w| JobWorkload {
                name: w.name.clone(),
                scale: Some(scale),
            })
            .collect(),
        schemes: vec![
            SchemeSpec::NoPrefetch,
            SchemeSpec::boomerang(),
            SchemeSpec::shotgun(),
        ],
        len,
        seed: SEED,
        sampling,
        threads: threads(),
    };
    let total = spec.cell_count();

    let root = std::env::temp_dir().join(format!("fe-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let service = Arc::new(ExperimentService::open(&root).expect("open service root"));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("bound address").to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || server.run_until(&stop))
    };

    let submit = |label: &str| -> (ClientOutcome, f64) {
        let t0 = Instant::now();
        let outcome = submit_job(&addr, &spec).expect("submission succeeds");
        let wall = t0.elapsed().as_secs_f64();
        eprintln!(
            "[{label}] job {}: {} cells ({} cached) in {:.1} ms",
            outcome.job_id,
            outcome.progress.len(),
            outcome.cached_cells(),
            wall * 1e3,
        );
        (outcome, wall)
    };
    let (cold, cold_wall) = submit("cold");
    let (warm, warm_wall) = submit("warm");
    stop.store(true, Ordering::SeqCst);
    server_thread.join().expect("server thread");

    // Gate 1: the resubmission must be served entirely from the cache.
    assert_eq!(cold.progress.len(), total, "cold run completes every cell");
    if warm.cached_cells() != total {
        eprintln!(
            "SERVE GATE FAILED: resubmission served {}/{} cells from cache",
            warm.cached_cells(),
            total,
        );
        std::process::exit(1);
    }
    // Gate 2: served == computed, byte for byte.
    if cold.report != warm.report {
        eprintln!("SERVE GATE FAILED: cached report differs from the computed one");
        std::process::exit(1);
    }

    let hit_rate = |o: &ClientOutcome| o.cached_cells() as f64 / total as f64;
    println!(
        "\n{:6} {:>8} {:>12} {:>10} {:>10}",
        "run", "cells", "wall ms", "jobs/s", "hit rate"
    );
    for (label, outcome, wall) in [("cold", &cold, cold_wall), ("warm", &warm, warm_wall)] {
        println!(
            "{:6} {:>8} {:>12.1} {:>10.2} {:>9.0}%",
            label,
            outcome.progress.len(),
            wall * 1e3,
            1.0 / wall,
            hit_rate(outcome) * 100.0,
        );
    }
    println!("\nserve gate: resubmission 100% cache hit, report byte-identical — ok");

    write_serve_json(&ServeRun {
        len,
        sampling,
        scale,
        total_cells: total,
        cold_wall_ms: cold_wall * 1e3,
        cold_hit_rate: hit_rate(&cold),
        warm_wall_ms: warm_wall * 1e3,
        warm_hit_rate: hit_rate(&warm),
        report_bytes: cold.report.len(),
    });
    let _ = std::fs::remove_dir_all(&root);
}
