#![forbid(unsafe_code)]
//! Control-flow trace tooling: record workload traces, inspect trace
//! files, replay them through the timing model, and verify replay
//! fidelity against live execution.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin trace -- record nutch nutch.fetr
//! cargo run --release -p fe-bench --bin trace -- inspect nutch.fetr
//! cargo run --release -p fe-bench --bin trace -- replay nutch.fetr shotgun
//! cargo run --release -p fe-bench --bin trace -- verify nutch
//! ```
//!
//! `record`/`verify` honor the standard `SHOTGUN_SCALE` /
//! `SHOTGUN_WARMUP` / `SHOTGUN_INSTRS` knobs; `replay` reads the same
//! knobs to size its run and refuses traces too short for it. Sweeps
//! pick traces up automatically via `SHOTGUN_TRACE_DIR` (see the
//! repository README).

use std::process::ExitCode;

use fe_bench::{default_len, machine, suite, SEED};
use fe_cfg::{Program, WorkloadSpec};
use fe_model::BranchKind;
use fe_sim::{run_scheme, run_scheme_replayed, SchemeSpec};
use fe_trace::Trace;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace <command>\n\
         \n\
         commands:\n\
         \x20 record  <workload> [path]   record a trace (default <workload>.fetr)\n\
         \x20 inspect <path>              print header and per-kind statistics\n\
         \x20 replay  <path> [scheme]     simulate the trace (default scheme: shotgun)\n\
         \x20 verify  <workload>          record + replay + live run, compare statistics\n\
         \n\
         workloads: nutch streaming apache zeus oracle db2\n\
         schemes:   no-prefetch fdip boomerang confluence ideal shotgun"
    );
    ExitCode::from(2)
}

/// The named preset at the sweep scale — `suite()` applies
/// `SHOTGUN_SCALE` exactly as the figure binaries do, so recorded
/// traces fingerprint-match the programs the sweeps build.
fn preset(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|w| w.name == name)
}

fn scheme_by_label(label: &str) -> Option<SchemeSpec> {
    [
        SchemeSpec::NoPrefetch,
        SchemeSpec::Fdip,
        SchemeSpec::boomerang(),
        SchemeSpec::Confluence,
        SchemeSpec::Ideal,
        SchemeSpec::shotgun(),
    ]
    .into_iter()
    .find(|s| s.label() == label)
}

fn record_trace(program: &Program) -> Trace {
    let needed = default_len().trace_instrs(&machine());
    Trace::record(program, SEED, needed)
}

fn cmd_record(workload: &str, path: &str) -> ExitCode {
    let Some(spec) = preset(workload) else {
        eprintln!("unknown workload `{workload}`");
        return ExitCode::from(2);
    };
    let program = spec.build();
    let trace = record_trace(&program);
    if let Err(e) = trace.write_to(path) {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    let h = trace.header();
    println!(
        "recorded {path}: {} blocks, {} instructions, {} bytes ({:.2} B/instr)",
        h.block_count,
        h.instr_count,
        trace.payload_len(),
        trace.payload_len() as f64 / h.instr_count as f64,
    );
    ExitCode::SUCCESS
}

fn cmd_inspect(path: &str) -> ExitCode {
    let trace = match Trace::read_from(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let h = trace.header();
    println!("trace {path}");
    println!("  workload     {}", h.name);
    println!("  seed         {:#x}", h.seed);
    println!("  blocks       {}", h.block_count);
    println!("  instructions {}", h.instr_count);
    println!(
        "  payload      {} bytes ({:.2} B/block, {:.2} B/instr)",
        trace.payload_len(),
        trace.payload_len() as f64 / h.block_count as f64,
        trace.payload_len() as f64 / h.instr_count as f64,
    );
    println!(
        "  program      {} blocks, digest {:#018x}{}",
        h.fingerprint.blocks,
        h.fingerprint.digest,
        if h.fingerprint.is_unknown() {
            " (unknown origin — imported)"
        } else {
            ""
        },
    );
    let mut counts = [0u64; BranchKind::ALL.len()];
    let mut taken = [0u64; BranchKind::ALL.len()];
    for rb in trace.reader() {
        let rb = match rb {
            Ok(rb) => rb,
            Err(e) => {
                eprintln!("payload decode failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let i = BranchKind::ALL
            .iter()
            .position(|k| *k == rb.block.kind)
            .expect("ALL covers every kind");
        counts[i] += 1;
        taken[i] += rb.taken as u64;
    }
    println!("  {:12} {:>12} {:>8}", "branch kind", "blocks", "taken");
    for (i, kind) in BranchKind::ALL.iter().enumerate() {
        if counts[i] > 0 {
            println!(
                "  {:12} {:>12} {:>7.1}%",
                format!("{kind:?}"),
                counts[i],
                100.0 * taken[i] as f64 / counts[i] as f64,
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_replay(path: &str, scheme_label: &str) -> ExitCode {
    let trace = match Trace::read_from(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = preset(&trace.header().name) else {
        eprintln!(
            "trace workload `{}` is not a named preset (imported traces \
             cannot be replayed yet: no program image)",
            trace.header().name,
        );
        return ExitCode::FAILURE;
    };
    let Some(scheme) = scheme_by_label(scheme_label) else {
        eprintln!("unknown scheme `{scheme_label}`");
        return ExitCode::from(2);
    };
    let program = spec.build();
    if !trace.matches(&program) {
        eprintln!(
            "trace {path} was recorded against a different build of `{}` \
             (check SHOTGUN_SCALE); re-record it",
            trace.header().name,
        );
        return ExitCode::FAILURE;
    }
    let machine = machine();
    let len = default_len();
    let needed = len.trace_instrs(&machine);
    if trace.header().instr_count < needed {
        eprintln!(
            "trace holds {} instructions but this run needs {needed} \
             (lower SHOTGUN_INSTRS/SHOTGUN_WARMUP or re-record)",
            trace.header().instr_count,
        );
        return ExitCode::FAILURE;
    }
    let stats = run_scheme_replayed(&program, &trace, &scheme, &machine, len, SEED);
    println!(
        "replayed {} under {}: IPC {:.3}, L1-I MPKI {:.2}, BTB MPKI {:.2}, \
         misfetches {}, cycles {}",
        trace.header().name,
        scheme_label,
        stats.ipc(),
        stats.l1i_mpki(),
        stats.btb_mpki(),
        stats.misfetches,
        stats.cycles,
    );
    ExitCode::SUCCESS
}

fn cmd_verify(workload: &str) -> ExitCode {
    let Some(spec) = preset(workload) else {
        eprintln!("unknown workload `{workload}`");
        return ExitCode::from(2);
    };
    let program = spec.build();
    let machine = machine();
    let len = default_len();
    let trace = record_trace(&program);
    println!(
        "recorded {}: {} blocks, {} instructions",
        workload,
        trace.header().block_count,
        trace.header().instr_count,
    );
    let mut ok = true;
    for scheme in [SchemeSpec::NoPrefetch, SchemeSpec::shotgun()] {
        let live = run_scheme(&program, &scheme, &machine, len, SEED);
        let replayed = run_scheme_replayed(&program, &trace, &scheme, &machine, len, SEED);
        let verdict = if live == replayed { "ok" } else { "MISMATCH" };
        ok &= live == replayed;
        println!(
            "  {:12} live IPC {:.4} | replay IPC {:.4} | {verdict}",
            scheme.label(),
            live.ipc(),
            replayed.ipc(),
        );
        if live != replayed {
            eprintln!("    live:   {live:?}");
            eprintln!("    replay: {replayed:?}");
        }
    }
    if ok {
        println!("replay is bit-identical to live execution");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize| args.get(i).map(String::as_str);
    match (arg(0), arg(1), arg(2)) {
        (Some("record"), Some(workload), path) => {
            let default = format!("{workload}.fetr");
            cmd_record(workload, path.unwrap_or(&default))
        }
        (Some("inspect"), Some(path), None) => cmd_inspect(path),
        (Some("replay"), Some(path), scheme) => cmd_replay(path, scheme.unwrap_or("shotgun")),
        (Some("verify"), Some(workload), None) => cmd_verify(workload),
        _ => usage(),
    }
}
