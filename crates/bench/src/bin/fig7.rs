//! Figure 7: speedup of Confluence, Boomerang and Shotgun over the
//! no-prefetch baseline — the paper's headline result.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig7
//! ```

use fe_bench::{banner, experiment, write_report, WORKLOAD_ORDER};
use fe_sim::{render_table, SchemeSpec};

fn main() {
    banner("Figure 7", "speedup over no-prefetch (headline result)");
    let report = experiment()
        .schemes([
            SchemeSpec::NoPrefetch,
            SchemeSpec::Confluence,
            SchemeSpec::boomerang(),
            SchemeSpec::shotgun(),
        ])
        .run();
    let series = report.speedup_series(&WORKLOAD_ORDER, &["confluence", "boomerang", "shotgun"]);
    print!(
        "{}",
        render_table("Speedup over no-prefetch baseline", &series, "gmean", false)
    );
    write_report(&report, "fig7");
    println!(
        "\npaper shape: Shotgun ~32% average speedup, ~5% over each of \
         Boomerang and Confluence; beats Boomerang everywhere (most on \
         oracle/db2); beats Confluence on the web workloads but trails it \
         on oracle."
    );
}
