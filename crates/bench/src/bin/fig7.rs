//! Figure 7: speedup of Confluence, Boomerang and Shotgun over the
//! no-prefetch baseline — the paper's headline result.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig7
//! ```

use fe_bench::{banner, default_len, machine, suite, SEED, WORKLOAD_ORDER};
use fe_sim::{render_table, run_suite, speedup_series, SchemeSpec};

fn main() {
    banner("Figure 7", "speedup over no-prefetch (headline result)");
    let schemes = [
        SchemeSpec::NoPrefetch,
        SchemeSpec::Confluence,
        SchemeSpec::boomerang(),
        SchemeSpec::shotgun(),
    ];
    let results = run_suite(&suite(), &schemes, &machine(), default_len(), SEED);
    let series = speedup_series(
        &results,
        &WORKLOAD_ORDER,
        "no-prefetch",
        &["confluence", "boomerang", "shotgun"],
    );
    print!("{}", render_table("Speedup over no-prefetch baseline", &series, "gmean", false));
    println!(
        "\npaper shape: Shotgun ~32% average speedup, ~5% over each of \
         Boomerang and Confluence; beats Boomerang everywhere (most on \
         oracle/db2); beats Confluence on the web workloads but trails it \
         on oracle."
    );
}
