#![forbid(unsafe_code)]
//! Figure 7: speedup of Confluence, Boomerang and Shotgun over the
//! no-prefetch baseline — the paper's headline result.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig7
//! ```

use fe_bench::{banner, experiment, paper_shape, print_speedup_table, write_report};
use fe_sim::SchemeSpec;

fn main() {
    banner("Figure 7", "speedup over no-prefetch (headline result)");
    let report = experiment()
        .schemes([
            SchemeSpec::NoPrefetch,
            SchemeSpec::Confluence,
            SchemeSpec::boomerang(),
            SchemeSpec::shotgun(),
        ])
        .run();
    print_speedup_table(&report, &["confluence", "boomerang", "shotgun"]);
    write_report(&report, "fig7");
    paper_shape(
        "Shotgun ~32% average speedup, ~5% over each of \
         Boomerang and Confluence; beats Boomerang everywhere (most on \
         oracle/db2); beats Confluence on the web workloads but trails it \
         on oracle.",
    );
}
