#![forbid(unsafe_code)]
//! Sampled vs full-detail comparison: runs a fig1-style sweep twice —
//! once cycle-accurate, once under interval sampling with functional
//! warming — and reports per-cell error and the wall-clock speedup.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin sampling
//! ```
//!
//! Knobs beyond the standard set: `SHOTGUN_SAMPLING=interval[:detail[:warmup]]`
//! (or `SHOTGUN_SAMPLING_INTERVAL` / `_DETAIL` / `_WARMUP`) shape the
//! sampling; `SHOTGUN_SAMPLING_CHECK=1` exits non-zero when any cell
//! violates the documented error bounds — fe-stall PKI within
//! max(10% relative, 0.5 absolute, the cell's 95% CI) and IPC within
//! 5% of full detail — or measures fewer than two intervals;
//! `SHOTGUN_SAMPLING_MIN_SPEEDUP=<x>` additionally enforces a
//! wall-clock speedup floor.

use std::time::Instant;

use fe_bench::{
    banner, default_len, env_f64, machine, paper_shape, print_metric_table, suite, write_report,
    WORKLOAD_ORDER,
};
use fe_sim::{SamplingSpec, SchemeSpec, SweepReport};
use fe_trace::Trace;

const SCHEMES: [&str; 3] = ["no-prefetch", "boomerang", "shotgun"];

fn sweep(sampling: Option<SamplingSpec>, trace_dir: &std::path::Path) -> SweepReport {
    let mut exp = fe_bench::experiment().trace_dir(trace_dir);
    if let Some(spec) = sampling {
        exp = exp.sampling(spec);
    }
    exp.schemes([
        SchemeSpec::NoPrefetch,
        SchemeSpec::boomerang(),
        SchemeSpec::shotgun(),
    ])
    .run()
}

fn main() {
    let spec = SamplingSpec::DEFAULT.from_env();
    // Fail fast on a malformed SHOTGUN_SAMPLING shape — before either
    // multi-minute sweep runs (and before the banner's arithmetic).
    if let Err(e) = spec.validate() {
        eprintln!("invalid sampling spec: {e}");
        std::process::exit(2);
    }
    banner(
        "Sampling",
        "sampled (functional warming) vs full-detail error and speedup",
    );
    println!(
        "    sampling: interval {}K = {}K skipped + {}K warmed + {}K timed ({:.0}% timed)\n",
        spec.interval / 1000,
        (spec.interval - spec.detail - spec.warmup) / 1000,
        spec.warmup / 1000,
        spec.detail / 1000,
        spec.timed_fraction() * 100.0,
    );

    // Record every workload's trace up front so neither timed sweep
    // pays the executor walk — the comparison is simulation time only.
    // An explicit SHOTGUN_TRACE_DIR is honored (and its recordings
    // kept for reuse, as everywhere else); otherwise a per-process
    // temp dir is used and cleaned up. (File name convention matches
    // the Experiment trace cache.)
    let (trace_dir, ephemeral) = match std::env::var("SHOTGUN_TRACE_DIR") {
        Ok(dir) => (std::path::PathBuf::from(dir), false),
        Err(_) => (
            std::env::temp_dir().join(format!("shotgun-sampling-{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&trace_dir).expect("create trace dir");
    let len = default_len();
    let needed = len.trace_instrs(&machine());
    for wl in suite() {
        let program = wl.build();
        let path = trace_dir.join(format!("{}-{:016x}.fetr", program.name(), fe_bench::SEED));
        // Reuse a long-enough compatible recording (Experiment
        // re-validates seed/fingerprint/length and re-records if the
        // file is unusable).
        if let Ok(existing) = Trace::read_from(&path) {
            if existing.header().instr_count >= needed && existing.matches(&program) {
                continue;
            }
        }
        Trace::record(&program, fe_bench::SEED, needed)
            .write_to(&path)
            .expect("persist trace");
    }

    let t = Instant::now();
    let full = sweep(None, &trace_dir);
    let full_wall = t.elapsed();
    let t = Instant::now();
    let sampled = sweep(Some(spec), &trace_dir);
    let sampled_wall = t.elapsed();
    if ephemeral {
        let _ = std::fs::remove_dir_all(&trace_dir);
    }

    print_metric_table(
        &full,
        "Front-end stall cycles / kilo-instruction (full detail)",
        &SCHEMES,
        |s| s.front_end_stall_pki(),
        false,
    );
    println!();
    print_metric_table(
        &sampled,
        "Front-end stall cycles / kilo-instruction (sampled)",
        &SCHEMES,
        |s| s.front_end_stall_pki(),
        false,
    );

    println!("\nPer-cell sampled error vs full detail:");
    println!(
        "{:12} {:>14} {:>10} {:>9} {:>9} {:>10} {:>12}",
        "workload", "scheme", "intervals", "pki err", "ipc err", "pki ci95", "ci covers?"
    );
    let mut violations = Vec::new();
    for wl in WORKLOAD_ORDER {
        for scheme in SCHEMES {
            let f = &full.cell_labeled(wl, scheme).stats;
            let cell = sampled.cell_labeled(wl, scheme);
            let s = &cell.stats;
            let summary = cell.sampling.as_ref().expect("sampled cell summary");
            let pki_err = (s.front_end_stall_pki() - f.front_end_stall_pki()).abs();
            // The documented bound: max(10% relative, 0.5 absolute), or
            // the cell's own 95% confidence interval when sampling
            // variance dominates (bursty workloads at few intervals).
            let pki_bound = (0.10 * f.front_end_stall_pki())
                .max(0.5)
                .max(summary.fe_stall_pki.ci95);
            let ipc_err = (s.ipc() - f.ipc()).abs() / f.ipc();
            // IPC bound gets the same variance term: 5% relative or the
            // per-interval 95% CI, whichever is larger.
            let ipc_bound = (0.05 * f.ipc()).max(summary.ipc.ci95) / f.ipc();
            let covered = (summary.fe_stall_pki.mean - f.front_end_stall_pki()).abs()
                <= summary.fe_stall_pki.ci95.max(pki_bound);
            println!(
                "{:12} {:>14} {:>10} {:>8.2} {:>8.2}% {:>10.2} {:>12}",
                wl,
                scheme,
                summary.intervals,
                pki_err,
                ipc_err * 100.0,
                summary.fe_stall_pki.ci95,
                if covered { "yes" } else { "no" },
            );
            if summary.intervals < 2 {
                violations.push(format!(
                    "{wl}/{scheme}: only {} interval(s)",
                    summary.intervals
                ));
            }
            if pki_err > pki_bound {
                violations.push(format!(
                    "{wl}/{scheme}: fe-stall PKI err {pki_err:.2} exceeds {pki_bound:.2}"
                ));
            }
            if ipc_err > ipc_bound {
                violations.push(format!(
                    "{wl}/{scheme}: IPC err {:.1}% exceeds {:.1}%",
                    ipc_err * 100.0,
                    ipc_bound * 100.0,
                ));
            }
        }
    }

    let speedup = full_wall.as_secs_f64() / sampled_wall.as_secs_f64();
    println!(
        "\nwall clock: full {:.2}s, sampled {:.2}s -> {speedup:.2}x speedup \
         at {:.0}% timed fraction",
        full_wall.as_secs_f64(),
        sampled_wall.as_secs_f64(),
        spec.timed_fraction() * 100.0,
    );
    let min_speedup = env_f64("SHOTGUN_SAMPLING_MIN_SPEEDUP", 0.0);
    if min_speedup > 0.0 && speedup < min_speedup {
        violations.push(format!("speedup {speedup:.2}x below floor {min_speedup}x"));
    }

    write_report(&sampled, "sampling");
    paper_shape(
        "sampled MPKI/IPC track full detail within the documented bounds \
         (fe-stall PKI within max(10%, 0.5), IPC within 5%) at a fraction \
         of the wall clock; error shrinks as the detail fraction grows.",
    );

    if !violations.is_empty() {
        eprintln!("\nsampling bound violations:");
        for v in &violations {
            eprintln!("  {v}");
        }
        if std::env::var("SHOTGUN_SAMPLING_CHECK").is_ok_and(|v| v == "1") {
            std::process::exit(1);
        }
    }
}
