//! Simulator throughput harness: host-side simulated-MIPS per
//! (scheme × workload) across the engine's run modes, emitted as
//! `BENCH_perf.json` — the tracked perf trajectory of the hot loop and
//! the number the CI perf gate enforces.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin perf
//! ```
//!
//! Modes measured per cell:
//!
//! * `full` — live execution: the executor walk feeds the cycle-level
//!   pipeline directly.
//! * `replay` — trace-driven: the same stream decoded from an
//!   `fe-trace` recording (recorded once per workload, untimed).
//! * `sampled` — interval sampling with functional warming over the
//!   recorded trace (the paper-scale mode). Its MIPS counts *covered*
//!   instructions — skip + warm + detail — which is precisely why
//!   sampling exists.
//!
//! Wall-clock numbers live only in `BENCH_perf.json`. Deterministic
//! sweep reports (`BENCH_fig*.json`, the pinned engine fixture) carry
//! no timing fields, so this harness can run anywhere without
//! perturbing byte-identical report diffs. As a self-check, the harness
//! asserts that `full` and `replay` produce bit-identical statistics.
//!
//! Knobs beyond the standard set (`SHOTGUN_INSTRS`/`_WARMUP`/`_SCALE`,
//! `SHOTGUN_JSON_DIR`, `SHOTGUN_SAMPLING*`):
//!
//! * `SHOTGUN_PERF_MIN_MIPS=<x>` — exit non-zero when the overall
//!   full-detail MIPS falls below `x` (the CI regression floor).
//! * `SHOTGUN_PERF_MODES=full,replay,sampled` — subset of modes to run.

use std::time::Instant;

use fe_bench::{banner, default_len, env_f64, machine, suite, SEED};
use fe_cfg::WorkloadSpec;
use fe_model::SimStats;
use fe_sim::json::Json;
use fe_sim::{
    run_scheme, run_scheme_replayed, run_scheme_sampled_replayed, RunLength, SamplingSpec,
    SchemeSpec,
};
use fe_trace::Trace;

/// One measured (workload, scheme, mode) cell.
struct PerfCell {
    workload: String,
    scheme: String,
    mode: &'static str,
    /// Simulated instructions covered (warmup + measure).
    instructions: u64,
    wall_ms: f64,
    mips: f64,
}

fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::NoPrefetch,
        SchemeSpec::boomerang(),
        SchemeSpec::shotgun(),
    ]
}

fn enabled_modes() -> Vec<String> {
    std::env::var("SHOTGUN_PERF_MODES")
        .unwrap_or_else(|_| "full,replay,sampled".into())
        .split(',')
        .map(|m| m.trim().to_string())
        .filter(|m| !m.is_empty())
        .collect()
}

fn main() {
    banner(
        "Perf",
        "simulator throughput (simulated MIPS) per scheme x workload x mode",
    );
    let machine = machine();
    let len = default_len();
    let sampling = SamplingSpec::DEFAULT.from_env();
    if let Err(e) = sampling.validate() {
        eprintln!("invalid sampling spec: {e}");
        std::process::exit(2);
    }
    let modes = enabled_modes();
    if modes.is_empty() {
        eprintln!("SHOTGUN_PERF_MODES selects no modes — nothing to measure");
        std::process::exit(2);
    }
    for mode in &modes {
        if !matches!(mode.as_str(), "full" | "replay" | "sampled") {
            eprintln!("unknown mode `{mode}` in SHOTGUN_PERF_MODES");
            std::process::exit(2);
        }
    }
    let covered = len.warmup + len.measure;
    let workloads: Vec<WorkloadSpec> = suite();

    let mut cells: Vec<PerfCell> = Vec::new();
    for wl in &workloads {
        let program = wl.build();
        // Record once (untimed): replay and sampled modes share it.
        let trace = (modes.iter().any(|m| m == "replay" || m == "sampled"))
            .then(|| Trace::record(&program, SEED, len.trace_instrs(&machine)));
        for spec in schemes() {
            let mut full_stats: Option<SimStats> = None;
            let mut replay_stats: Option<SimStats> = None;
            for mode in &modes {
                let t0 = Instant::now();
                match mode.as_str() {
                    "full" => {
                        full_stats = Some(run_scheme(&program, &spec, &machine, len, SEED));
                    }
                    "replay" => {
                        replay_stats = Some(run_scheme_replayed(
                            &program,
                            trace.as_ref().expect("trace recorded"),
                            &spec,
                            &machine,
                            len,
                            SEED,
                        ));
                    }
                    "sampled" => {
                        // Sampling needs room for at least one detail
                        // window; skip the mode on tiny smoke lengths.
                        if len.measure < sampling.detail {
                            continue;
                        }
                        let _ = run_scheme_sampled_replayed(
                            &program,
                            trace.as_ref().expect("trace recorded"),
                            &spec,
                            &machine,
                            len,
                            sampling,
                            SEED,
                        );
                    }
                    _ => unreachable!("modes validated above"),
                }
                let wall = t0.elapsed().as_secs_f64();
                let cell = PerfCell {
                    workload: wl.name.clone(),
                    scheme: spec.label(),
                    mode: match mode.as_str() {
                        "full" => "full",
                        "replay" => "replay",
                        _ => "sampled",
                    },
                    instructions: covered,
                    wall_ms: wall * 1e3,
                    mips: covered as f64 / wall / 1e6,
                };
                eprintln!(
                    "[{:>9}] {:12} {:12} {:9.1} ms  {:7.2} MIPS",
                    cell.mode, cell.workload, cell.scheme, cell.wall_ms, cell.mips,
                );
                cells.push(cell);
            }
            // Self-check: replay must be bit-identical to live
            // execution whenever both modes ran, whatever their order
            // in SHOTGUN_PERF_MODES (wall-clock differs, stats must
            // not).
            if let (Some(full), Some(replay)) = (&full_stats, &replay_stats) {
                assert_eq!(
                    replay,
                    full,
                    "replay diverged from live execution on ({}, {})",
                    wl.name,
                    spec.label(),
                );
            }
        }
    }

    // Per-mode summary table.
    println!(
        "\n{:10} {:>14} {:>12} {:>10}",
        "mode", "instructions", "wall ms", "MIPS"
    );
    for mode in ["full", "replay", "sampled"] {
        if let Some(pool) = pool_mode(&cells, mode) {
            println!(
                "{:10} {:>14} {:>12.1} {:>10.2}",
                mode, pool.instructions, pool.wall_ms, pool.mips
            );
        }
    }

    write_perf_json(&cells, len, sampling, &modes);

    // The CI regression floor: overall full-detail MIPS. When `full`
    // is disabled, gate on the first enabled mode alone — pooling
    // sampled covered-MIPS with timed modes would inflate the gated
    // number far past any useful floor.
    let (gate_mode, gate_mips) = if let Some(pool) = pool_mode(&cells, "full") {
        ("full", Some(pool.mips))
    } else {
        let first = modes.first().map(String::as_str).unwrap_or("full");
        (first, pool_mode(&cells, first).map(|p| p.mips))
    };
    let min_mips = env_f64("SHOTGUN_PERF_MIN_MIPS", 0.0);
    if min_mips > 0.0 {
        let Some(gate_mips) = gate_mips else {
            // A floor was requested but nothing was measured (e.g. the
            // run length was too short for even one sampled window) —
            // passing silently would defeat the gate.
            eprintln!("PERF GATE FAILED: no `{gate_mode}` cells were measured");
            std::process::exit(1);
        };
        if gate_mips < min_mips {
            eprintln!(
                "PERF GATE FAILED: {gate_mips:.2} {gate_mode} MIPS < floor {min_mips:.2} \
                 (override via SHOTGUN_PERF_MIN_MIPS)"
            );
            std::process::exit(1);
        }
        println!("\nperf gate: {gate_mips:.2} {gate_mode} MIPS >= floor {min_mips:.2} — ok");
    }
}

/// Pooled totals for one mode's cells — the single aggregation the
/// summary table, the CI gate, and the JSON `full_mips` field all
/// share (so they cannot drift apart).
struct ModePool {
    instructions: u64,
    wall_ms: f64,
    mips: f64,
}

fn pool_mode(cells: &[PerfCell], mode: &str) -> Option<ModePool> {
    let in_mode: Vec<&PerfCell> = cells.iter().filter(|c| c.mode == mode).collect();
    if in_mode.is_empty() {
        return None;
    }
    let instructions: u64 = in_mode.iter().map(|c| c.instructions).sum();
    let wall_ms: f64 = in_mode.iter().map(|c| c.wall_ms).sum();
    Some(ModePool {
        instructions,
        wall_ms,
        mips: instructions as f64 / (wall_ms / 1e3) / 1e6,
    })
}

/// Emits `BENCH_perf.json` under `SHOTGUN_JSON_DIR`. All wall-clock
/// fields live here and only here — deterministic sweep reports carry
/// no timing.
fn write_perf_json(cells: &[PerfCell], len: RunLength, sampling: SamplingSpec, modes: &[String]) {
    let Ok(dir) = std::env::var("SHOTGUN_JSON_DIR") else {
        return;
    };
    let run = Json::Obj(vec![
        ("warmup".into(), Json::U64(len.warmup)),
        ("measure".into(), Json::U64(len.measure)),
        ("seed".into(), Json::U64(SEED)),
        ("scale".into(), Json::F64(env_f64("SHOTGUN_SCALE", 1.0))),
        (
            "modes".into(),
            Json::Arr(modes.iter().map(|m| Json::Str(m.clone())).collect()),
        ),
        (
            "sampling".into(),
            Json::Obj(vec![
                ("interval".into(), Json::U64(sampling.interval)),
                ("detail".into(), Json::U64(sampling.detail)),
                ("warmup".into(), Json::U64(sampling.warmup)),
            ]),
        ),
    ]);
    let cell_json = Json::Arr(
        cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("workload".into(), Json::Str(c.workload.clone())),
                    ("scheme".into(), Json::Str(c.scheme.clone())),
                    ("mode".into(), Json::Str(c.mode.into())),
                    ("instructions".into(), Json::U64(c.instructions)),
                    ("wall_ms".into(), Json::F64(c.wall_ms)),
                    ("mips".into(), Json::F64(c.mips)),
                ])
            })
            .collect(),
    );
    let total_instrs: u64 = cells.iter().map(|c| c.instructions).sum();
    let total_wall_ms: f64 = cells.iter().map(|c| c.wall_ms).sum();
    let full_mips = pool_mode(cells, "full").map_or(Json::Null, |p| Json::F64(p.mips));
    let min_cell = cells.iter().map(|c| c.mips).fold(f64::INFINITY, f64::min);
    let summary = Json::Obj(vec![
        ("total_instructions".into(), Json::U64(total_instrs)),
        ("total_wall_ms".into(), Json::F64(total_wall_ms)),
        (
            "overall_mips".into(),
            Json::F64(total_instrs as f64 / (total_wall_ms / 1e3) / 1e6),
        ),
        ("full_mips".into(), full_mips),
        (
            "min_cell_mips".into(),
            if min_cell.is_finite() {
                Json::F64(min_cell)
            } else {
                Json::Null
            },
        ),
    ]);
    let doc = Json::Obj(vec![
        ("run".into(), run),
        ("cells".into(), cell_json),
        ("summary".into(), summary),
    ]);
    let path = std::path::Path::new(&dir).join("BENCH_perf.json");
    // Warn-and-continue on write failure, like every other binary's
    // report emission — the CI smoke separately asserts the file
    // exists, so a broken artifact dir still fails the build there.
    match std::fs::write(&path, doc.render()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
