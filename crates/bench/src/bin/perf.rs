#![forbid(unsafe_code)]
//! Simulator throughput harness: host-side simulated-MIPS per
//! (scheme × workload) across the engine's run modes, emitted as
//! `BENCH_perf.json` — the tracked perf trajectory of the hot loop and
//! the number the CI perf gate enforces.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin perf
//! ```
//!
//! Modes measured per cell:
//!
//! * `full` — live execution: the executor walk feeds the cycle-level
//!   pipeline directly.
//! * `replay` — trace-driven: the same stream decoded from an
//!   `fe-trace` recording (recorded once per workload, untimed). This
//!   is the *serial* reference the batch speedup is judged against.
//! * `sampled` — interval sampling with functional warming over the
//!   recorded trace (the paper-scale mode). Its MIPS counts *covered*
//!   instructions — skip + warm + detail — which is precisely why
//!   sampling exists.
//! * `batch` — the shared-decode batch engine: one pass over the
//!   recording drives every scheme's pipeline in lockstep. Per-cell
//!   numbers are *effective* MIPS (the group's wall clock split evenly
//!   across its cells), so the batch column is directly comparable to
//!   the serial `replay` column for the same cell.
//! * `batch-sampled` — the batch engine in sampled mode, against the
//!   serial `sampled` column.
//!
//! Wall-clock numbers live only in `BENCH_perf.json`. Deterministic
//! sweep reports (`BENCH_fig*.json`, the pinned engine fixture) carry
//! no timing fields, so this harness can run anywhere without
//! perturbing byte-identical report diffs. As a self-check, the harness
//! asserts that `full`, `replay`, and `batch` produce bit-identical
//! statistics (and `sampled` vs `batch-sampled` likewise).
//!
//! Knobs beyond the standard set (`SHOTGUN_INSTRS`/`_WARMUP`/`_SCALE`,
//! `SHOTGUN_JSON_DIR`, `SHOTGUN_SAMPLING*`):
//!
//! * `SHOTGUN_PERF_MIN_MIPS=<x>` — exit non-zero when the gated MIPS
//!   pool falls below `x` (the CI regression floor). The gate prefers
//!   the `batch` pool — the throughput sweeps actually run at — and
//!   falls back to `full`, then to the first enabled mode.
//! * `SHOTGUN_PERF_MODES=full,replay,sampled,batch,batch-sampled` —
//!   subset of modes to run.

use std::time::Instant;

use fe_bench::{banner, default_len, env_f64, machine, suite, SEED};
use fe_cfg::WorkloadSpec;
use fe_model::SimStats;
use fe_sim::json::Json;
use fe_sim::{
    run_scheme, run_scheme_replayed, run_scheme_sampled_replayed, run_schemes_batch_replayed,
    run_schemes_batch_sampled_replayed, RunLength, SampledStats, SamplingSpec, SchemeSpec,
};
use fe_trace::Trace;

/// One measured (workload, scheme, mode) cell.
struct PerfCell {
    workload: String,
    scheme: String,
    mode: &'static str,
    /// Simulated instructions covered (warmup + measure).
    instructions: u64,
    wall_ms: f64,
    mips: f64,
}

fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::NoPrefetch,
        SchemeSpec::boomerang(),
        SchemeSpec::shotgun(),
    ]
}

const ALL_MODES: [&str; 5] = ["full", "replay", "sampled", "batch", "batch-sampled"];

fn enabled_modes() -> Vec<String> {
    std::env::var("SHOTGUN_PERF_MODES")
        .unwrap_or_else(|_| ALL_MODES.join(","))
        .split(',')
        .map(|m| m.trim().to_string())
        .filter(|m| !m.is_empty())
        .collect()
}

/// Interns a validated mode string to the `&'static str` cells carry.
fn static_mode(mode: &str) -> &'static str {
    ALL_MODES
        .iter()
        .find(|m| **m == mode)
        .expect("modes validated at startup")
}

fn main() {
    banner(
        "Perf",
        "simulator throughput (simulated MIPS) per scheme x workload x mode",
    );
    let machine = machine();
    let len = default_len();
    let sampling = SamplingSpec::DEFAULT.from_env();
    if let Err(e) = sampling.validate() {
        eprintln!("invalid sampling spec: {e}");
        std::process::exit(2);
    }
    let modes = enabled_modes();
    if modes.is_empty() {
        eprintln!("SHOTGUN_PERF_MODES selects no modes — nothing to measure");
        std::process::exit(2);
    }
    for mode in &modes {
        if !ALL_MODES.contains(&mode.as_str()) {
            eprintln!("unknown mode `{mode}` in SHOTGUN_PERF_MODES");
            std::process::exit(2);
        }
    }
    let has = |m: &str| modes.iter().any(|x| x == m);
    let covered = len.warmup + len.measure;
    let workloads: Vec<WorkloadSpec> = suite();
    let specs = schemes();

    let mut cells: Vec<PerfCell> = Vec::new();
    for wl in &workloads {
        let program = wl.build();
        // Record once (untimed): every trace-driven mode shares it.
        let trace = (modes.iter().any(|m| m != "full"))
            .then(|| Trace::record(&program, SEED, len.trace_instrs(&machine)));
        let mut replay_stats: Vec<Option<SimStats>> = vec![None; specs.len()];
        let mut sampled_stats: Vec<Option<SampledStats>> = vec![None; specs.len()];
        for (si, spec) in specs.iter().enumerate() {
            let mut full_stats: Option<SimStats> = None;
            for mode in &modes {
                let t0 = Instant::now();
                match mode.as_str() {
                    "full" => {
                        full_stats = Some(run_scheme(&program, spec, &machine, len, SEED));
                    }
                    "replay" => {
                        replay_stats[si] = Some(run_scheme_replayed(
                            &program,
                            trace.as_ref().expect("trace recorded"),
                            spec,
                            &machine,
                            len,
                            SEED,
                        ));
                    }
                    "sampled" => {
                        // Sampling needs room for at least one detail
                        // window; skip the mode on tiny smoke lengths.
                        if len.measure < sampling.detail {
                            continue;
                        }
                        sampled_stats[si] = Some(run_scheme_sampled_replayed(
                            &program,
                            trace.as_ref().expect("trace recorded"),
                            spec,
                            &machine,
                            len,
                            sampling,
                            SEED,
                        ));
                    }
                    // Batch modes run once per workload group, below.
                    _ => continue,
                }
                let wall = t0.elapsed().as_secs_f64();
                push_cell(
                    &mut cells,
                    wl.name.clone(),
                    spec.label(),
                    static_mode(mode),
                    covered,
                    wall,
                );
            }
            // Self-check: replay must be bit-identical to live
            // execution whenever both modes ran, whatever their order
            // in SHOTGUN_PERF_MODES (wall-clock differs, stats must
            // not).
            if let (Some(full), Some(replay)) = (&full_stats, &replay_stats[si]) {
                assert_eq!(
                    replay,
                    full,
                    "replay diverged from live execution on ({}, {})",
                    wl.name,
                    spec.label(),
                );
            }
        }
        // The batch engine decodes the recording once and drives every
        // scheme's pipeline from the shared stream; wall clock covers
        // the whole group, so each cell is charged an even share.
        if has("batch") {
            let trace = trace.as_ref().expect("trace recorded");
            let t0 = Instant::now();
            let stats = run_schemes_batch_replayed(&program, trace, &specs, &machine, len, SEED);
            let wall = t0.elapsed().as_secs_f64() / specs.len() as f64;
            for (si, spec) in specs.iter().enumerate() {
                // Self-check: the batch engine must be bit-identical to
                // the serial trace-driven run.
                if let Some(replay) = &replay_stats[si] {
                    assert_eq!(
                        &stats[si],
                        replay,
                        "batch diverged from serial replay on ({}, {})",
                        wl.name,
                        spec.label(),
                    );
                }
                push_cell(
                    &mut cells,
                    wl.name.clone(),
                    spec.label(),
                    "batch",
                    covered,
                    wall,
                );
            }
        }
        if has("batch-sampled") && len.measure >= sampling.detail {
            let trace = trace.as_ref().expect("trace recorded");
            let t0 = Instant::now();
            let stats = run_schemes_batch_sampled_replayed(
                &program, trace, &specs, &machine, len, sampling, SEED,
            );
            let wall = t0.elapsed().as_secs_f64() / specs.len() as f64;
            for (si, spec) in specs.iter().enumerate() {
                if let Some(sampled) = &sampled_stats[si] {
                    assert_eq!(
                        &stats[si],
                        sampled,
                        "batch-sampled diverged from serial sampled on ({}, {})",
                        wl.name,
                        spec.label(),
                    );
                }
                push_cell(
                    &mut cells,
                    wl.name.clone(),
                    spec.label(),
                    "batch-sampled",
                    covered,
                    wall,
                );
            }
        }
    }

    // Per-mode summary table.
    println!(
        "\n{:14} {:>14} {:>12} {:>10}",
        "mode", "instructions", "wall ms", "MIPS"
    );
    for mode in ALL_MODES {
        if let Some(pool) = pool_mode(&cells, mode) {
            println!(
                "{:14} {:>14} {:>12.1} {:>10.2}",
                mode, pool.instructions, pool.wall_ms, pool.mips
            );
        }
    }
    if let Some(s) = speedup(&cells, "batch", "replay") {
        println!("\nbatch speedup over serial replay: {s:.2}x");
    }
    if let Some(s) = speedup(&cells, "batch-sampled", "sampled") {
        println!("batch-sampled speedup over serial sampled: {s:.2}x");
    }

    write_perf_json(&cells, len, sampling, &modes);

    // The CI regression floor. Gate on the batch pool when it was
    // measured — sweeps run batched by default, so that is the
    // throughput that matters — falling back to serial full detail,
    // then to the first enabled mode alone. Pooling sampled
    // covered-MIPS with timed modes would inflate the gated number far
    // past any useful floor, hence a single-mode gate.
    let (gate_mode, gate_mips) = if let Some(pool) = pool_mode(&cells, "batch") {
        ("batch", Some(pool.mips))
    } else if let Some(pool) = pool_mode(&cells, "full") {
        ("full", Some(pool.mips))
    } else {
        let first = modes.first().map(String::as_str).unwrap_or("full");
        (first, pool_mode(&cells, first).map(|p| p.mips))
    };
    let min_mips = env_f64("SHOTGUN_PERF_MIN_MIPS", 0.0);
    if min_mips > 0.0 {
        let Some(gate_mips) = gate_mips else {
            // A floor was requested but nothing was measured (e.g. the
            // run length was too short for even one sampled window) —
            // passing silently would defeat the gate.
            eprintln!("PERF GATE FAILED: no `{gate_mode}` cells were measured");
            std::process::exit(1);
        };
        if gate_mips < min_mips {
            eprintln!(
                "PERF GATE FAILED: {gate_mips:.2} {gate_mode} MIPS < floor {min_mips:.2} \
                 (override via SHOTGUN_PERF_MIN_MIPS)"
            );
            std::process::exit(1);
        }
        println!("\nperf gate: {gate_mips:.2} {gate_mode} MIPS >= floor {min_mips:.2} — ok");
    }
}

/// Records and prints one measured cell.
fn push_cell(
    cells: &mut Vec<PerfCell>,
    workload: String,
    scheme: String,
    mode: &'static str,
    instructions: u64,
    wall: f64,
) {
    let cell = PerfCell {
        workload,
        scheme,
        mode,
        instructions,
        wall_ms: wall * 1e3,
        mips: instructions as f64 / wall / 1e6,
    };
    eprintln!(
        "[{:>13}] {:12} {:12} {:9.1} ms  {:7.2} MIPS",
        cell.mode, cell.workload, cell.scheme, cell.wall_ms, cell.mips,
    );
    cells.push(cell);
}

/// Pooled totals for one mode's cells — the single aggregation the
/// summary table, the CI gate, and the JSON summary fields all share
/// (so they cannot drift apart).
struct ModePool {
    instructions: u64,
    wall_ms: f64,
    mips: f64,
}

fn pool_mode(cells: &[PerfCell], mode: &str) -> Option<ModePool> {
    let in_mode: Vec<&PerfCell> = cells.iter().filter(|c| c.mode == mode).collect();
    if in_mode.is_empty() {
        return None;
    }
    let instructions: u64 = in_mode.iter().map(|c| c.instructions).sum();
    let wall_ms: f64 = in_mode.iter().map(|c| c.wall_ms).sum();
    Some(ModePool {
        instructions,
        wall_ms,
        mips: instructions as f64 / (wall_ms / 1e3) / 1e6,
    })
}

/// Pooled-MIPS ratio of `fast` over `slow`, when both modes ran.
fn speedup(cells: &[PerfCell], fast: &str, slow: &str) -> Option<f64> {
    match (pool_mode(cells, fast), pool_mode(cells, slow)) {
        (Some(f), Some(s)) => Some(f.mips / s.mips),
        _ => None,
    }
}

/// Emits `BENCH_perf.json` under `SHOTGUN_JSON_DIR`. All wall-clock
/// fields live here and only here — deterministic sweep reports carry
/// no timing.
fn write_perf_json(cells: &[PerfCell], len: RunLength, sampling: SamplingSpec, modes: &[String]) {
    let Ok(dir) = std::env::var("SHOTGUN_JSON_DIR") else {
        return;
    };
    let run = Json::Obj(vec![
        ("warmup".into(), Json::U64(len.warmup)),
        ("measure".into(), Json::U64(len.measure)),
        ("seed".into(), Json::U64(SEED)),
        ("scale".into(), Json::F64(env_f64("SHOTGUN_SCALE", 1.0))),
        (
            "modes".into(),
            Json::Arr(modes.iter().map(|m| Json::Str(m.clone())).collect()),
        ),
        (
            "sampling".into(),
            Json::Obj(vec![
                ("interval".into(), Json::U64(sampling.interval)),
                ("detail".into(), Json::U64(sampling.detail)),
                ("warmup".into(), Json::U64(sampling.warmup)),
            ]),
        ),
    ]);
    let cell_json = Json::Arr(
        cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("workload".into(), Json::Str(c.workload.clone())),
                    ("scheme".into(), Json::Str(c.scheme.clone())),
                    ("mode".into(), Json::Str(c.mode.into())),
                    ("instructions".into(), Json::U64(c.instructions)),
                    ("wall_ms".into(), Json::F64(c.wall_ms)),
                    ("mips".into(), Json::F64(c.mips)),
                ])
            })
            .collect(),
    );
    let total_instrs: u64 = cells.iter().map(|c| c.instructions).sum();
    let total_wall_ms: f64 = cells.iter().map(|c| c.wall_ms).sum();
    let mode_mips = |mode: &str| pool_mode(cells, mode).map_or(Json::Null, |p| Json::F64(p.mips));
    let ratio = |fast: &str, slow: &str| speedup(cells, fast, slow).map_or(Json::Null, Json::F64);
    let min_cell = cells.iter().map(|c| c.mips).fold(f64::INFINITY, f64::min);
    let summary = Json::Obj(vec![
        ("total_instructions".into(), Json::U64(total_instrs)),
        ("total_wall_ms".into(), Json::F64(total_wall_ms)),
        (
            "overall_mips".into(),
            Json::F64(total_instrs as f64 / (total_wall_ms / 1e3) / 1e6),
        ),
        ("full_mips".into(), mode_mips("full")),
        ("batch_mips".into(), mode_mips("batch")),
        // The tentpole ratio: shared-decode batch engine over the
        // serial trace-driven path, full detail. CI asserts a floor on
        // this field.
        ("batch_speedup".into(), ratio("batch", "replay")),
        (
            "batch_sampled_speedup".into(),
            ratio("batch-sampled", "sampled"),
        ),
        (
            "min_cell_mips".into(),
            if min_cell.is_finite() {
                Json::F64(min_cell)
            } else {
                Json::Null
            },
        ),
    ]);
    let doc = Json::Obj(vec![
        ("run".into(), run),
        ("cells".into(), cell_json),
        ("summary".into(), summary),
    ]);
    let path = std::path::Path::new(&dir).join("BENCH_perf.json");
    // Warn-and-continue on write failure, like every other binary's
    // report emission — the CI smoke separately asserts the file
    // exists, so a broken artifact dir still fails the build there.
    match std::fs::write(&path, doc.render()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
