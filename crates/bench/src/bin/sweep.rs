use fe_cfg::workloads;
use fe_model::{stats, MachineConfig};
use fe_sim::{run_scheme, RunLength, SchemeSpec};
use std::time::Instant;

fn main() {
    let machine = MachineConfig::table3();
    let len = RunLength { warmup: 2_000_000, measure: 6_000_000 };
    println!("{:10} {:12} {:>6} {:>7} {:>7} {:>7} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6}",
        "workload","scheme","ipc","l1iMPKI","btbMPKI","feSt%","ic%","btb%","rdr%","acc%","l1dF","spd");
    for wl in workloads::all() {
        let program = wl.build();
        let t = Instant::now();
        let base = run_scheme(&program, &SchemeSpec::NoPrefetch, &machine, len, 7);
        for (label, spec) in [
            ("no-prefetch", SchemeSpec::NoPrefetch),
            ("boomerang", SchemeSpec::boomerang()),
            ("confluence", SchemeSpec::Confluence),
            ("shotgun", SchemeSpec::shotgun()),
            ("ideal", SchemeSpec::Ideal),
        ] {
            let s = if label == "no-prefetch" { base.clone() } else { run_scheme(&program, &spec, &machine, len, 7) };
            println!("{:10} {:12} {:>6.3} {:>7.1} {:>7.1} {:>6.1} {:>6.1} {:>6.1} {:>7.1} {:>7.1} {:>6.1} {:>6.3}",
                wl.name, label, s.ipc(), s.l1i_mpki(), s.btb_mpki(),
                100.0*s.front_end_stall_fraction(),
                100.0*s.stalls.icache_miss as f64/s.cycles as f64,
                100.0*s.stalls.btb_resolve as f64/s.cycles as f64,
                100.0*s.stalls.redirect as f64/s.cycles as f64,
                100.0*s.prefetch_accuracy(), s.avg_l1d_fill_latency(),
                stats::speedup(&base, &s));
        }
        eprintln!("[{}: {:.0}s]", wl.name, t.elapsed().as_secs_f64());
    }
}
