#![forbid(unsafe_code)]
//! Full per-cell metric dump across the suite and the five main
//! schemes — the kitchen-sink diagnostic table.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin sweep
//! ```

use fe_bench::{experiment, write_report, WORKLOAD_ORDER};
use fe_sim::SchemeSpec;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = experiment()
        .schemes([
            SchemeSpec::NoPrefetch,
            SchemeSpec::boomerang(),
            SchemeSpec::Confluence,
            SchemeSpec::shotgun(),
            SchemeSpec::Ideal,
        ])
        .run();
    println!(
        "{:10} {:12} {:>6} {:>7} {:>7} {:>7} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6}",
        "workload",
        "scheme",
        "ipc",
        "l1iMPKI",
        "btbMPKI",
        "feSt%",
        "ic%",
        "btb%",
        "rdr%",
        "acc%",
        "l1dF",
        "spd"
    );
    for wl in WORKLOAD_ORDER {
        for label in ["no-prefetch", "boomerang", "confluence", "shotgun", "ideal"] {
            let cell = report.cell_labeled(wl, label);
            let (s, m) = (&cell.stats, &cell.metrics);
            println!(
                "{:10} {:12} {:>6.3} {:>7.1} {:>7.1} {:>6.1} {:>6.1} {:>6.1} {:>7.1} {:>7.1} {:>6.1} {:>6.3}",
                wl,
                label,
                m.ipc,
                m.l1i_mpki,
                m.btb_mpki,
                100.0 * s.front_end_stall_fraction(),
                100.0 * s.stalls.icache_miss as f64 / s.cycles as f64,
                100.0 * s.stalls.btb_resolve as f64 / s.cycles as f64,
                100.0 * s.stalls.redirect as f64 / s.cycles as f64,
                100.0 * m.prefetch_accuracy,
                m.l1d_fill_latency,
                m.speedup.unwrap(),
            );
        }
    }
    write_report(&report, "sweep");
    eprintln!("[sweep: {:.0}s]", t0.elapsed().as_secs_f64());
}
