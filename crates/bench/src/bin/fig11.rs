#![forbid(unsafe_code)]
//! Figure 11: cycles to fill an L1-D miss under the 8-bit vector,
//! Entire Region and 5-Blocks mechanisms — the NoC-congestion cost of
//! over-prefetching.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig11
//! ```

use fe_bench::{banner, experiment, paper_shape, print_metric_table, write_report};
use fe_sim::SchemeSpec;
use shotgun::{RegionPolicy, ShotgunConfig};

const POLICIES: [RegionPolicy; 3] = [
    RegionPolicy::Bit8,
    RegionPolicy::EntireRegion,
    RegionPolicy::FiveBlocks,
];

fn main() {
    banner(
        "Figure 11",
        "L1-D miss fill latency by region prefetch mechanism",
    );
    let schemes: Vec<SchemeSpec> = POLICIES
        .iter()
        .map(|p| SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(*p)))
        .collect();
    let report = experiment().schemes(schemes).run();
    print_metric_table(
        &report,
        "Cycles to fill an L1-D miss",
        &report.scheme_labels(),
        |s| s.avg_l1d_fill_latency(),
        false,
    );
    write_report(&report, "fig11");
    paper_shape(
        "over-prefetching inflates shared-NoC queueing — \
         data fills slow from ~54 cycles (8-bit) toward ~65 (5-Blocks on \
         db2); the effect compounds the accuracy loss of Fig. 10.",
    );
}
