//! Figure 6: front-end stall cycles covered by each prefetching scheme
//! over the no-prefetch baseline.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig6
//! ```

use fe_bench::{banner, experiment, write_report, WORKLOAD_ORDER};
use fe_sim::{render_table, SchemeSpec};

fn main() {
    banner(
        "Figure 6",
        "front-end stall-cycle coverage over no-prefetch",
    );
    let report = experiment()
        .schemes([
            SchemeSpec::NoPrefetch,
            SchemeSpec::Confluence,
            SchemeSpec::boomerang(),
            SchemeSpec::shotgun(),
        ])
        .run();
    let series = report.coverage_series(&WORKLOAD_ORDER, &["confluence", "boomerang", "shotgun"]);
    print!(
        "{}",
        render_table("Front-end stall cycle coverage", &series, "avg", true)
    );
    write_report(&report, "fig6");
    println!(
        "\npaper shape: Shotgun ~68% average, ~8% above both Boomerang and \
         Confluence; Shotgun beats Boomerang on every workload, biggest gains \
         on the high-BTB-MPKI ones (db2, streaming, oracle); Confluence keeps \
         an edge on oracle."
    );
}
