//! Figure 6: front-end stall cycles covered by each prefetching scheme
//! over the no-prefetch baseline.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig6
//! ```

use fe_bench::{banner, default_len, machine, suite, SEED, WORKLOAD_ORDER};
use fe_sim::{coverage_series, render_table, run_suite, SchemeSpec};

fn main() {
    banner("Figure 6", "front-end stall-cycle coverage over no-prefetch");
    let schemes = [
        SchemeSpec::NoPrefetch,
        SchemeSpec::Confluence,
        SchemeSpec::boomerang(),
        SchemeSpec::shotgun(),
    ];
    let results = run_suite(&suite(), &schemes, &machine(), default_len(), SEED);
    let series = coverage_series(
        &results,
        &WORKLOAD_ORDER,
        "no-prefetch",
        &["confluence", "boomerang", "shotgun"],
    );
    print!("{}", render_table("Front-end stall cycle coverage", &series, "avg", true));
    println!(
        "\npaper shape: Shotgun ~68% average, ~8% above both Boomerang and \
         Confluence; Shotgun beats Boomerang on every workload, biggest gains \
         on the high-BTB-MPKI ones (db2, streaming, oracle); Confluence keeps \
         an edge on oracle."
    );
}
