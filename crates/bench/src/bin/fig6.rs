#![forbid(unsafe_code)]
//! Figure 6: front-end stall cycles covered by each prefetching scheme
//! over the no-prefetch baseline.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig6
//! ```

use fe_bench::{banner, experiment, paper_shape, print_coverage_table, write_report};
use fe_sim::SchemeSpec;

fn main() {
    banner(
        "Figure 6",
        "front-end stall-cycle coverage over no-prefetch",
    );
    let report = experiment()
        .schemes([
            SchemeSpec::NoPrefetch,
            SchemeSpec::Confluence,
            SchemeSpec::boomerang(),
            SchemeSpec::shotgun(),
        ])
        .run();
    print_coverage_table(&report, &["confluence", "boomerang", "shotgun"]);
    write_report(&report, "fig6");
    paper_shape(
        "Shotgun ~68% average, ~8% above both Boomerang and \
         Confluence; Shotgun beats Boomerang on every workload, biggest gains \
         on the high-BTB-MPKI ones (db2, streaming, oracle); Confluence keeps \
         an edge on oracle.",
    );
}
