#![forbid(unsafe_code)]
//! Figure 3: cumulative instruction-cache-block access probability by
//! distance from the code-region entry point. Pure offline program
//! analytics — no timing simulation, hence no `Experiment` sweep.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig3
//! ```

use fe_bench::{banner, env_u64, suite};
use fe_cfg::analytics;

fn main() {
    banner(
        "Figure 3",
        "cache-line access distribution inside code regions",
    );
    let instructions = env_u64("SHOTGUN_INSTRS", 4_000_000);

    let presets = suite();
    let curves: Vec<(String, [f64; 18])> = presets
        .iter()
        .map(|wl| {
            let program = wl.build();
            let loc = analytics::region_locality(&program, 1, instructions);
            (wl.name.clone(), loc.cumulative())
        })
        .collect();

    print!("{:>9}", "distance");
    for (name, _) in &curves {
        print!(" {name:>10}");
    }
    println!();
    for d in 0..=17 {
        if d <= 16 {
            print!("{d:>9}");
        } else {
            print!("{:>9}", ">16");
        }
        for (_, cum) in &curves {
            print!(" {:>9.1}%", 100.0 * cum[d]);
        }
        println!();
    }
    println!(
        "\npaper shape: ~90% of accesses within 10 lines of the region entry \
         on every workload (the insight enabling compact spatial footprints)."
    );
}
