#![forbid(unsafe_code)]
//! External-trace ingestion: convert CBP-style captures (textual or
//! binary) and flat `fe-trace` recordings into the chunk-compressed,
//! seekable v2 store format, verifying losslessness on the way (see
//! `docs/TRACE_FORMAT.md` and the `fe_trace::ingest` module).
//!
//! ```sh
//! cargo run --release -p fe-bench --bin ingest -- \
//!     convert capture.cbp nutch.fets --provenance "cbp5 capture"
//! cargo run --release -p fe-bench --bin ingest -- inspect nutch.fets
//! cargo run --release -p fe-bench --bin ingest -- verify nutch.fets
//! ```
//!
//! `convert` prints a human-readable ingest report and, with
//! `--report <path>`, writes the same facts as JSON. Stores named
//! after a preset workload drop into `SHOTGUN_TRACE_DIR` as
//! `<name>-<seed:016x>.fets` and the sweeps pick them up like any
//! cached recording.

use std::process::ExitCode;

use fe_sim::json::Json;
use fe_trace::{ingest_file, IngestOptions, IngestReport, TraceStore};

fn usage() -> ExitCode {
    eprintln!(
        "usage: ingest <command>\n\
         \n\
         commands:\n\
         \x20 convert <src> [dest]  ingest a capture/trace into a v2 store\n\
         \x20                       (default dest: <src stem>.fets)\n\
         \x20 inspect <path>        print store header, provenance and chunk stats\n\
         \x20 verify  <path>        re-check an existing store end to end\n\
         \n\
         convert flags:\n\
         \x20 --name <name>           workload name to record in the store\n\
         \x20 --provenance <text>     origin string stored with the trace\n\
         \x20 --chunk-records <n>     records per chunk (default {})\n\
         \x20 --lossy                 skip malformed lines in textual captures\n\
         \x20 --report <path>         also write the ingest report as JSON\n\
         \n\
         accepted sources: fe-trace v1 (.fetr), v2 stores (.fets,\n\
         re-chunked), CBP-style text, CBP-style binary (CBPB)",
        fe_trace::DEFAULT_CHUNK_RECORDS,
    );
    ExitCode::from(2)
}

/// The ingest report as a JSON document (the machine-readable twin of
/// the printed report).
fn report_json(report: &IngestReport, dest: &str) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(report.name.clone())),
        ("dest".into(), Json::Str(dest.to_string())),
        (
            "source_format".into(),
            Json::Str(report.format.label().to_string()),
        ),
        ("source_bytes".into(), Json::U64(report.source_bytes)),
        ("store_bytes".into(), Json::U64(report.store_bytes)),
        ("records".into(), Json::U64(report.records)),
        ("instrs".into(), Json::U64(report.instrs)),
        ("chunks".into(), Json::U64(report.chunks)),
        (
            "payload_raw_bytes".into(),
            Json::U64(report.payload_raw_bytes),
        ),
        (
            "payload_stored_bytes".into(),
            Json::U64(report.payload_stored_bytes),
        ),
        (
            "compression_ratio".into(),
            Json::F64(report.payload_raw_bytes as f64 / report.payload_stored_bytes.max(1) as f64),
        ),
        ("skipped_lines".into(), Json::U64(report.skipped)),
        (
            "first_error".into(),
            report.first_error.clone().map_or(Json::Null, Json::Str),
        ),
        (
            "fingerprint".into(),
            Json::Obj(vec![
                ("blocks".into(), Json::U64(report.fingerprint.blocks)),
                ("digest".into(), Json::U64(report.fingerprint.digest)),
            ]),
        ),
        ("verified".into(), Json::Bool(report.verified)),
    ])
}

fn print_report(report: &IngestReport, dest: &str) {
    println!("ingested `{}` -> {dest}", report.name);
    println!(
        "  source       {} ({} bytes)",
        report.format.label(),
        report.source_bytes
    );
    println!(
        "  store        {} bytes, {} chunks ({} records each at most)",
        report.store_bytes,
        report.chunks,
        report.records.div_ceil(report.chunks.max(1)),
    );
    println!("  records      {}", report.records);
    println!("  instructions {}", report.instrs);
    println!(
        "  payload      {} raw -> {} stored ({:.2}x)",
        report.payload_raw_bytes,
        report.payload_stored_bytes,
        report.payload_raw_bytes as f64 / report.payload_stored_bytes.max(1) as f64,
    );
    if report.skipped > 0 {
        println!(
            "  skipped      {} malformed line(s); first: {}",
            report.skipped,
            report.first_error.as_deref().unwrap_or("(unrecorded)"),
        );
    }
    println!(
        "  fingerprint  {} blocks, digest {:#018x}",
        report.fingerprint.blocks, report.fingerprint.digest,
    );
    println!("  verified     replay + reconstruction round-trip ok");
}

struct ConvertArgs {
    src: String,
    dest: Option<String>,
    report_path: Option<String>,
    opts: IngestOptions,
}

fn parse_convert(args: &[String]) -> Option<ConvertArgs> {
    let mut positional = Vec::new();
    let mut opts = IngestOptions::default();
    let mut report_path = None;
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--name" => opts.name = Some(take_value(&mut i)?),
            "--provenance" => opts.provenance = take_value(&mut i)?,
            "--chunk-records" => {
                let v = take_value(&mut i)?;
                match v.parse() {
                    Ok(n) => opts.chunk_records = n,
                    Err(_) => {
                        eprintln!("--chunk-records wants a number, got `{v}`");
                        return None;
                    }
                }
            }
            "--lossy" => opts.lossy = true,
            "--report" => report_path = Some(take_value(&mut i)?),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                return None;
            }
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }
    if positional.is_empty() || positional.len() > 2 {
        return None;
    }
    let mut positional = positional.into_iter();
    Some(ConvertArgs {
        src: positional.next().expect("checked non-empty"),
        dest: positional.next(),
        report_path,
        opts,
    })
}

fn cmd_convert(args: ConvertArgs) -> ExitCode {
    let (store, report) = match ingest_file(&args.src, &args.opts) {
        Ok(done) => done,
        Err(e) => {
            eprintln!("cannot ingest {}: {e}", args.src);
            return ExitCode::FAILURE;
        }
    };
    let dest = args.dest.unwrap_or_else(|| {
        let stem = std::path::Path::new(&args.src)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "ingested".to_string());
        format!("{stem}.fets")
    });
    if let Err(e) = store.write_to(&dest) {
        eprintln!("failed to write {dest}: {e}");
        return ExitCode::FAILURE;
    }
    print_report(&report, &dest);
    if let Some(path) = &args.report_path {
        let mut text = report_json(&report, &dest).render();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_inspect(path: &str) -> ExitCode {
    let store = match TraceStore::read_from(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let h = store.header();
    println!("store {path}");
    println!("  workload     {}", h.name);
    if !store.provenance().is_empty() {
        println!("  provenance   {}", store.provenance());
    }
    println!("  seed         {:#x}", h.seed);
    println!("  records      {}", h.block_count);
    println!("  instructions {}", h.instr_count);
    println!(
        "  chunks       {} of up to {} records",
        store.chunk_count(),
        store.chunk_records(),
    );
    let compressed = (0..store.chunk_count())
        .filter(|&c| store.chunk_entry(c).is_some_and(|e| e.compressed))
        .count();
    println!(
        "  payload      {} raw -> {} stored ({:.2}x, {compressed}/{} chunks compressed)",
        store.raw_len(),
        store.stored_len(),
        store.raw_len() as f64 / store.stored_len().max(1) as f64,
        store.chunk_count(),
    );
    println!(
        "  program      {} blocks, digest {:#018x}{}",
        h.fingerprint.blocks,
        h.fingerprint.digest,
        if h.fingerprint.is_unknown() {
            " (unknown origin — imported)"
        } else {
            ""
        },
    );
    ExitCode::SUCCESS
}

fn cmd_verify(path: &str) -> ExitCode {
    // Reading already validates the container (magic, version, index
    // arithmetic, whole-file checksum); re-ingesting the file then
    // runs the full replay/seek/reconstruction verification.
    let opts = IngestOptions::default();
    match ingest_file(path, &opts) {
        Ok((_, report)) => {
            println!(
                "{path}: ok — {} records, {} instructions, {} chunks, checksum and \
                 replay round-trip verified",
                report.records, report.instrs, report.chunks,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: FAILED — {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("convert") => match parse_convert(&args[1..]) {
            Some(parsed) => cmd_convert(parsed),
            None => usage(),
        },
        Some("inspect") if args.len() == 2 => cmd_inspect(&args[1]),
        Some("verify") if args.len() == 2 => cmd_verify(&args[1]),
        _ => usage(),
    }
}
