#![forbid(unsafe_code)]
//! Table 1: BTB miss rate (MPKI) of a 2K-entry BTB without
//! prefetching, per workload.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin table1 [-- --config]
//! ```
//!
//! `--config` additionally prints the Table 2 workload inventory and
//! the Table 3 machine parameters in use.

use fe_bench::{banner, experiment, machine, suite, write_report, WORKLOAD_ORDER};
use fe_cfg::analytics;
use fe_sim::SchemeSpec;

fn main() {
    let show_config = std::env::args().any(|a| a == "--config");
    banner("Table 1", "BTB MPKI of a 2K-entry BTB, no prefetching");

    let paper = [
        ("nutch", 2.5),
        ("streaming", 14.5),
        ("apache", 23.7),
        ("zeus", 14.6),
        ("oracle", 45.1),
        ("db2", 40.2),
    ];

    let report = experiment().scheme(SchemeSpec::NoPrefetch).run();
    println!("{:12} {:>10} {:>12}", "workload", "paper", "measured");
    for wl in WORKLOAD_ORDER {
        let cell = report.cell(wl, &SchemeSpec::NoPrefetch);
        let paper_v = paper
            .iter()
            .find(|(n, _)| *n == wl)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        println!(
            "{:12} {:>10.1} {:>12.1}",
            wl, paper_v, cell.metrics.btb_mpki
        );
    }
    write_report(&report, "table1");

    if show_config {
        println!("\n--- Table 2 stand-ins (synthetic workload presets)");
        println!(
            "{:12} {:>10} {:>10} {:>10} {:>10}",
            "workload", "functions", "blocks", "code KB", "lines"
        );
        for wl in suite() {
            let program = wl.build();
            let fp = analytics::footprint(&program);
            println!(
                "{:12} {:>10} {:>10} {:>10} {:>10}",
                wl.name,
                fp.functions,
                fp.blocks,
                fp.bytes / 1024,
                fp.lines
            );
        }
        println!("\n--- Table 3 machine parameters\n{:#?}", machine());
    }
}
