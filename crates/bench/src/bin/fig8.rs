//! Figure 8: Shotgun front-end stall-cycle coverage under the five
//! spatial-region prefetching mechanisms of §6.3.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig8
//! ```

use fe_bench::{banner, default_len, machine, suite, SEED, WORKLOAD_ORDER};
use fe_sim::{coverage_series, render_table, run_suite, SchemeSpec};
use shotgun::{RegionPolicy, ShotgunConfig};

fn main() {
    banner("Figure 8", "Shotgun stall coverage by region prefetch mechanism");
    let mut schemes = vec![SchemeSpec::NoPrefetch];
    for policy in RegionPolicy::ALL {
        schemes.push(SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(policy)));
    }
    let results = run_suite(&suite(), &schemes, &machine(), default_len(), SEED);
    let labels: Vec<String> = RegionPolicy::ALL
        .iter()
        .map(|p| SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(*p)).label())
        .collect();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let series = coverage_series(&results, &WORKLOAD_ORDER, "no-prefetch", &label_refs);
    print!("{}", render_table("Front-end stall cycle coverage", &series, "avg", true));
    println!(
        "\npaper shape: 8-bit vector ~6% coverage above no-bit-vector; 32-bit \
         adds almost nothing; Entire Region and 5-Blocks fall below 8-bit on \
         the high-opportunity workloads (db2, streaming)."
    );
}
