#![forbid(unsafe_code)]
//! Figure 8: Shotgun front-end stall-cycle coverage under the five
//! spatial-region prefetching mechanisms of §6.3.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig8
//! ```

use fe_bench::{banner, experiment, paper_shape, print_coverage_table, write_report};
use fe_sim::SchemeSpec;
use shotgun::{RegionPolicy, ShotgunConfig};

fn main() {
    banner(
        "Figure 8",
        "Shotgun stall coverage by region prefetch mechanism",
    );
    let mut schemes = vec![SchemeSpec::NoPrefetch];
    for policy in RegionPolicy::ALL {
        schemes.push(SchemeSpec::Shotgun(
            ShotgunConfig::default().with_policy(policy),
        ));
    }
    let report = experiment().schemes(schemes).run();
    print_coverage_table(&report, &report.comparison_labels());
    write_report(&report, "fig8");
    paper_shape(
        "8-bit vector ~6% coverage above no-bit-vector; 32-bit \
         adds almost nothing; Entire Region and 5-Blocks fall below 8-bit on \
         the high-opportunity workloads (db2, streaming).",
    );
}
