#![forbid(unsafe_code)]
//! Consolidation experiment: what happens to each workload when the
//! paper's server suite shares a chip instead of owning it.
//!
//! Runs every member of a mix twice per scheme — solo (private memory
//! system) and consolidated (all contexts round-robin over one shared
//! LLC/NoC via `MultiSimulator`) — and reports per-context speedup,
//! consolidation slowdown, and the L1-I / LLC interference the shared
//! hierarchy adds (miss MPKI deltas, cross-context LLC evictions, NoC
//! queue wait).
//!
//! ```sh
//! cargo run --release -p fe-bench --bin consolidation
//! SHOTGUN_MIX=oracle+oracle cargo run --release -p fe-bench --bin consolidation
//! ```
//!
//! Environment: `SHOTGUN_MIX` (default `apache+db2`; `+`-separated
//! preset names) and `SHOTGUN_LLC_KIB` (per-tile LLC KiB override —
//! shrink it to study capacity contention; the Table 3 8 MB LLC holds
//! the suite's code footprints comfortably), plus the standard
//! `SHOTGUN_SCALE` / `SHOTGUN_WARMUP` / `SHOTGUN_INSTRS` /
//! `SHOTGUN_JSON_DIR` knobs.

use fe_bench::{banner, default_len, machine, SEED};
use fe_cfg::{workloads, Program};
use fe_model::stats::geometric_mean;
use fe_model::{MachineConfig, SimStats};
use fe_sim::json::Json;
use fe_sim::{derive_ctx_seed, MultiSimulator, SchemeSpec, Simulator};
use fe_uarch::MemStats;

/// One (context, scheme) measurement in one deployment shape.
struct Cell {
    stats: SimStats,
    mem: MemStats,
}

fn run_solo(machine: &MachineConfig, program: &Program, spec: &SchemeSpec, ctx: u32) -> Cell {
    let len = default_len();
    let mut sim = Simulator::new(
        program,
        machine.clone(),
        spec.build(machine),
        derive_ctx_seed(SEED, ctx),
    );
    let stats = sim.run(len.warmup, len.measure);
    Cell {
        stats,
        mem: sim.mem_stats(),
    }
}

fn run_consolidated(
    machine: &MachineConfig,
    programs: &[&Program],
    spec: &SchemeSpec,
) -> Vec<Cell> {
    let len = default_len();
    let members = programs.iter().map(|p| (*p, spec.build(machine))).collect();
    MultiSimulator::new(machine, members, SEED)
        .run(len.warmup, len.measure)
        .contexts
        .into_iter()
        .map(|ctx| Cell {
            stats: ctx.stats,
            mem: ctx.mem,
        })
        .collect()
}

fn mpki(stats: &SimStats, misses: u64) -> f64 {
    stats.mpki(misses)
}

fn main() {
    let mix_name = std::env::var("SHOTGUN_MIX").unwrap_or_else(|_| "apache+db2".into());
    let mix = workloads::mix_by_name(&mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix `{mix_name}` (want e.g. apache+db2); using apache+db2");
        workloads::apache_db2()
    });
    let scale = fe_bench::env_f64("SHOTGUN_SCALE", 1.0);
    let mix = if (scale - 1.0).abs() < 1e-9 {
        mix
    } else {
        mix.scaled(scale)
    };
    banner(
        "Consolidation",
        &format!("per-context interference for the `{}` mix", mix.name),
    );

    let mut machine = machine();
    if let Some(kib) = std::env::var("SHOTGUN_LLC_KIB")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        machine.llc.kib_per_core = kib;
        println!(
            "    LLC override: {} KiB/tile ({} KiB total)\n",
            kib,
            machine.llc_total_kib()
        );
    }

    let schemes = [SchemeSpec::NoPrefetch, SchemeSpec::shotgun()];
    // Build each distinct member once (homogeneous mixes share a build).
    let mut built: Vec<(String, Program)> = Vec::new();
    for member in &mix.members {
        if !built.iter().any(|(name, _)| *name == member.name) {
            built.push((member.name.clone(), member.build()));
        }
    }
    let programs: Vec<&Program> = mix
        .members
        .iter()
        .map(|m| {
            &built
                .iter()
                .find(|(name, _)| *name == m.name)
                .expect("built above")
                .1
        })
        .collect();

    // scheme -> (per-context solo cells, per-context consolidated cells)
    let mut measured: Vec<(String, Vec<Cell>, Vec<Cell>)> = Vec::new();
    for spec in &schemes {
        let solo: Vec<Cell> = programs
            .iter()
            .enumerate()
            .map(|(i, p)| run_solo(&machine, p, spec, i as u32))
            .collect();
        let consolidated = run_consolidated(&machine, &programs, spec);
        measured.push((spec.label(), solo, consolidated));
    }

    let mut json_schemes = Vec::new();
    for (label, solo, consolidated) in &measured {
        println!("--- scheme: {label}");
        println!(
            "{:<24} {:>9} {:>9} {:>9} {:>12} {:>12} {:>12} {:>10}",
            "context",
            "solo IPC",
            "cons IPC",
            "slowdown",
            "L1I MPKI Δ",
            "LLC MPKI Δ",
            "x-evict/KI",
            "q-wait/msg"
        );
        let mut json_ctxs = Vec::new();
        for (i, (s, c)) in solo.iter().zip(consolidated).enumerate() {
            let slowdown = if c.stats.ipc() > 0.0 {
                s.stats.ipc() / c.stats.ipc()
            } else {
                0.0
            };
            let l1i_delta = mpki(&c.stats, c.stats.l1i_misses) - mpki(&s.stats, s.stats.l1i_misses);
            let llc_delta =
                mpki(&c.stats, c.mem.instr_llc_misses) - mpki(&s.stats, s.mem.instr_llc_misses);
            let xevict_ki = mpki(&c.stats, c.mem.cross_evictions);
            let qwait = if c.mem.messages > 0 {
                c.mem.queue_wait as f64 / c.mem.messages as f64
            } else {
                0.0
            };
            println!(
                "{:<24} {:>9.3} {:>9.3} {:>9.3} {:>12.3} {:>12.3} {:>12.3} {:>10.2}",
                mix.member_id(i),
                s.stats.ipc(),
                c.stats.ipc(),
                slowdown,
                l1i_delta,
                llc_delta,
                xevict_ki,
                qwait
            );
            json_ctxs.push(Json::Obj(vec![
                ("context".into(), Json::Str(mix.member_id(i))),
                ("solo_ipc".into(), Json::F64(s.stats.ipc())),
                ("consolidated_ipc".into(), Json::F64(c.stats.ipc())),
                ("slowdown".into(), Json::F64(slowdown)),
                ("l1i_mpki_solo".into(), Json::F64(s.stats.l1i_mpki())),
                (
                    "l1i_mpki_consolidated".into(),
                    Json::F64(c.stats.l1i_mpki()),
                ),
                (
                    "llc_instr_mpki_solo".into(),
                    Json::F64(mpki(&s.stats, s.mem.instr_llc_misses)),
                ),
                (
                    "llc_instr_mpki_consolidated".into(),
                    Json::F64(mpki(&c.stats, c.mem.instr_llc_misses)),
                ),
                ("cross_evictions".into(), Json::U64(c.mem.cross_evictions)),
                ("queue_wait_per_msg".into(), Json::F64(qwait)),
            ]));
        }
        json_schemes.push((label.clone(), Json::Arr(json_ctxs)));
        println!();
    }

    // Scheme speedups *within* the consolidated deployment: shotgun
    // over no-prefetch, per context — prefetching matters at least as
    // much when the hierarchy is contended.
    let (_, _, base_cons) = &measured[0];
    let (_, _, sg_cons) = &measured[1];
    let speedups: Vec<f64> = base_cons
        .iter()
        .zip(sg_cons)
        .map(|(b, s)| {
            if b.stats.ipc() > 0.0 {
                s.stats.ipc() / b.stats.ipc()
            } else {
                0.0
            }
        })
        .collect();
    for (i, sp) in speedups.iter().enumerate() {
        println!(
            "consolidated speedup (shotgun / no-prefetch) {:<24} {:.3}",
            mix.member_id(i),
            sp
        );
    }
    println!(
        "geomean consolidated shotgun speedup: {:.3}",
        geometric_mean(&speedups)
    );
    println!(
        "\npaper context: §5.1 runs the suite per-core homogeneous; consolidation \
         shares the LLC/NoC across heterogeneous contexts, so prefetch traffic \
         and code working sets now interfere — the deltas above quantify it."
    );

    if let Ok(dir) = std::env::var("SHOTGUN_JSON_DIR") {
        let len = default_len();
        let doc = Json::Obj(vec![
            ("mix".into(), Json::Str(mix.name.clone())),
            ("seed".into(), Json::U64(SEED)),
            ("warmup".into(), Json::U64(len.warmup)),
            ("measure".into(), Json::U64(len.measure)),
            (
                "schemes".into(),
                Json::Obj(json_schemes.into_iter().collect()),
            ),
            (
                "consolidated_speedups".into(),
                Json::Arr(speedups.iter().map(|s| Json::F64(*s)).collect()),
            ),
        ]);
        let path = std::path::Path::new(&dir).join("BENCH_consolidation.json");
        match std::fs::write(&path, doc.render()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}
