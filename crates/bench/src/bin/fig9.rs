//! Figure 9: Shotgun speedup under the five spatial-region prefetching
//! mechanisms of §6.3.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig9
//! ```

use fe_bench::{banner, experiment, write_report, WORKLOAD_ORDER};
use fe_sim::{render_table, SchemeSpec};
use shotgun::{RegionPolicy, ShotgunConfig};

fn main() {
    banner("Figure 9", "Shotgun speedup by region prefetch mechanism");
    let mut schemes = vec![SchemeSpec::NoPrefetch];
    for policy in RegionPolicy::ALL {
        schemes.push(SchemeSpec::Shotgun(
            ShotgunConfig::default().with_policy(policy),
        ));
    }
    let report = experiment().schemes(schemes).run();
    let labels = report.comparison_labels();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let series = report.speedup_series(&WORKLOAD_ORDER, &label_refs);
    print!(
        "{}",
        render_table("Speedup over no-prefetch baseline", &series, "gmean", false)
    );
    write_report(&report, "fig9");
    println!(
        "\npaper shape: 8-bit vector ~4% speedup over no-bit-vector (every \
         workload improves, up to ~9% on streaming/db2); 32-bit adds ~0.5%; \
         Entire Region and 5-Blocks degrade, worst on db2/streaming."
    );
}
