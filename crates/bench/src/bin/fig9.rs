//! Figure 9: Shotgun speedup under the five spatial-region prefetching
//! mechanisms of §6.3.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig9
//! ```

use fe_bench::{banner, default_len, machine, suite, SEED, WORKLOAD_ORDER};
use fe_sim::{render_table, run_suite, speedup_series, SchemeSpec};
use shotgun::{RegionPolicy, ShotgunConfig};

fn main() {
    banner("Figure 9", "Shotgun speedup by region prefetch mechanism");
    let mut schemes = vec![SchemeSpec::NoPrefetch];
    for policy in RegionPolicy::ALL {
        schemes.push(SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(policy)));
    }
    let results = run_suite(&suite(), &schemes, &machine(), default_len(), SEED);
    let labels: Vec<String> = RegionPolicy::ALL
        .iter()
        .map(|p| SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(*p)).label())
        .collect();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let series = speedup_series(&results, &WORKLOAD_ORDER, "no-prefetch", &label_refs);
    print!("{}", render_table("Speedup over no-prefetch baseline", &series, "gmean", false));
    println!(
        "\npaper shape: 8-bit vector ~4% speedup over no-bit-vector (every \
         workload improves, up to ~9% on streaming/db2); 32-bit adds ~0.5%; \
         Entire Region and 5-Blocks degrade, worst on db2/streaming."
    );
}
