#![forbid(unsafe_code)]
//! Figure 9: Shotgun speedup under the five spatial-region prefetching
//! mechanisms of §6.3.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig9
//! ```

use fe_bench::{banner, experiment, paper_shape, print_speedup_table, write_report};
use fe_sim::SchemeSpec;
use shotgun::{RegionPolicy, ShotgunConfig};

fn main() {
    banner("Figure 9", "Shotgun speedup by region prefetch mechanism");
    let mut schemes = vec![SchemeSpec::NoPrefetch];
    for policy in RegionPolicy::ALL {
        schemes.push(SchemeSpec::Shotgun(
            ShotgunConfig::default().with_policy(policy),
        ));
    }
    let report = experiment().schemes(schemes).run();
    print_speedup_table(&report, &report.comparison_labels());
    write_report(&report, "fig9");
    paper_shape(
        "8-bit vector ~4% speedup over no-bit-vector (every \
         workload improves, up to ~9% on streaming/db2); 32-bit adds ~0.5%; \
         Entire Region and 5-Blocks degrade, worst on db2/streaming.",
    );
}
