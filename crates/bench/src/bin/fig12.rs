//! Figure 12: Shotgun speedup sensitivity to C-BTB capacity
//! (64 / 128 / 1K entries).
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig12
//! ```

use fe_bench::{banner, default_len, machine, suite, SEED, WORKLOAD_ORDER};
use fe_sim::{render_table, run_suite, speedup_series, SchemeSpec};
use shotgun::ShotgunConfig;

const SIZES: [u32; 3] = [64, 128, 1024];

fn main() {
    banner("Figure 12", "Shotgun speedup vs C-BTB entries");
    let mut schemes = vec![SchemeSpec::NoPrefetch];
    for entries in SIZES {
        schemes.push(SchemeSpec::Shotgun(ShotgunConfig::default().with_cbtb_entries(entries)));
    }
    let results = run_suite(&suite(), &schemes, &machine(), default_len(), SEED);
    let labels: Vec<String> =
        schemes[1..].iter().map(|s| s.label()).collect();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let series = speedup_series(&results, &WORKLOAD_ORDER, "no-prefetch", &label_refs);
    print!("{}", render_table("Speedup over no-prefetch baseline", &series, "gmean", false));
    println!(
        "\npaper shape: footprint-driven prefill makes the C-BTB size-\
         insensitive upward — 1K entries buy only ~0.8% over 128 — while \
         64 entries lose ~2% on average (worst on streaming/db2)."
    );
}
