#![forbid(unsafe_code)]
//! Figure 12: Shotgun speedup sensitivity to C-BTB capacity
//! (64 / 128 / 1K entries).
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig12
//! ```

use fe_bench::{banner, experiment, paper_shape, print_speedup_table, write_report};
use fe_sim::SchemeSpec;
use shotgun::ShotgunConfig;

const SIZES: [u32; 3] = [64, 128, 1024];

fn main() {
    banner("Figure 12", "Shotgun speedup vs C-BTB entries");
    let mut schemes = vec![SchemeSpec::NoPrefetch];
    for entries in SIZES {
        schemes.push(SchemeSpec::Shotgun(
            ShotgunConfig::default().with_cbtb_entries(entries),
        ));
    }
    let report = experiment().schemes(schemes).run();
    print_speedup_table(&report, &report.comparison_labels());
    write_report(&report, "fig12");
    paper_shape(
        "footprint-driven prefill makes the C-BTB size-\
         insensitive upward — 1K entries buy only ~0.8% over 128 — while \
         64 entries lose ~2% on average (worst on streaming/db2).",
    );
}
