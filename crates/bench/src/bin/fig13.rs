//! Figure 13: Boomerang vs Shotgun speedup across BTB storage budgets
//! (512-entry to 8K-entry conventional-BTB equivalents) on the two
//! OLTP workloads.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig13
//! ```

use fe_bench::{banner, default_len, machine, SEED};
use fe_cfg::workloads;
use fe_model::stats::speedup;
use fe_sim::{run_scheme, SchemeSpec};
use shotgun::ShotgunConfig;

const BUDGETS: [u32; 5] = [512, 1024, 2048, 4096, 8192];

fn main() {
    banner("Figure 13", "Boomerang vs Shotgun across BTB storage budgets");
    let machine = machine();
    let len = default_len();

    for wl in [workloads::oracle(), workloads::db2()] {
        let program = wl.build();
        let base = run_scheme(&program, &SchemeSpec::NoPrefetch, &machine, len, SEED);
        println!("{} (baseline IPC {:.3})", wl.name, base.ipc());
        println!("{:>8} {:>12} {:>12}", "budget", "boomerang", "shotgun");
        for budget in BUDGETS {
            let boom = run_scheme(
                &program,
                &SchemeSpec::Boomerang { btb_entries: budget },
                &machine,
                len,
                SEED,
            );
            let shot = run_scheme(
                &program,
                &SchemeSpec::Shotgun(ShotgunConfig::for_budget(budget)),
                &machine,
                len,
                SEED,
            );
            let marker = if budget == 2048 { "  <- paper baseline budget" } else { "" };
            println!(
                "{:>8} {:>12.3} {:>12.3}{marker}",
                budget,
                speedup(&base, &boom),
                speedup(&base, &shot),
            );
        }
        println!();
    }
    println!(
        "paper shape: Shotgun wins at every equal budget; 1K-budget Shotgun \
         rivals 8K-entry Boomerang on oracle, and Boomerang needs >2x \
         Shotgun's budget to match it on db2."
    );
}
