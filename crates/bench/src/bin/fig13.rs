#![forbid(unsafe_code)]
//! Figure 13: Boomerang vs Shotgun speedup across BTB storage budgets
//! (512-entry to 8K-entry conventional-BTB equivalents) on the two
//! OLTP workloads.
//!
//! ```sh
//! cargo run --release -p fe-bench --bin fig13
//! ```

use fe_bench::{banner, experiment_on, paper_shape, write_report};
use fe_cfg::workloads;
use fe_sim::SchemeSpec;
use shotgun::ShotgunConfig;

const BUDGETS: [u32; 5] = [512, 1024, 2048, 4096, 8192];

fn main() {
    banner(
        "Figure 13",
        "Boomerang vs Shotgun across BTB storage budgets",
    );
    let mut schemes = vec![SchemeSpec::NoPrefetch];
    for budget in BUDGETS {
        schemes.push(SchemeSpec::Boomerang {
            btb_entries: budget,
        });
        schemes.push(SchemeSpec::Shotgun(ShotgunConfig::for_budget(budget)));
    }
    // One parallel sweep over every (workload, budget, scheme) cell.
    let report = experiment_on([workloads::oracle(), workloads::db2()])
        .schemes(schemes)
        .run();

    for wl in ["oracle", "db2"] {
        let base = report.cell(wl, &SchemeSpec::NoPrefetch);
        println!("{wl} (baseline IPC {:.3})", base.metrics.ipc);
        println!("{:>8} {:>12} {:>12}", "budget", "boomerang", "shotgun");
        for budget in BUDGETS {
            let boom = report.cell(
                wl,
                &SchemeSpec::Boomerang {
                    btb_entries: budget,
                },
            );
            let shot = report.cell(wl, &SchemeSpec::Shotgun(ShotgunConfig::for_budget(budget)));
            let marker = if budget == 2048 {
                "  <- paper baseline budget"
            } else {
                ""
            };
            println!(
                "{:>8} {:>12.3} {:>12.3}{marker}",
                budget,
                boom.metrics.speedup.unwrap(),
                shot.metrics.speedup.unwrap(),
            );
        }
        println!();
    }
    write_report(&report, "fig13");
    paper_shape(
        "Shotgun wins at every equal budget; 1K-budget Shotgun \
         rivals 8K-entry Boomerang on oracle, and Boomerang needs >2x \
         Shotgun's budget to match it on db2.",
    );
}
