//! # fe-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see the
//! experiment index in the repository README), plus std-only
//! throughput benchmarks of the core structures. Shared setup lives
//! here: every binary builds its sweep through [`experiment`], which
//! preconfigures the [`Experiment`] session API with the Table 3
//! machine, the Table 2 workload suite, and the evaluation seed.
//!
//! Every binary accepts the environment knobs:
//!
//! * `SHOTGUN_INSTRS` — measured instructions per (workload, scheme)
//!   cell (default per binary, typically 8M);
//! * `SHOTGUN_WARMUP` — warmup instructions (default 2-3M);
//! * `SHOTGUN_SCALE` — workload scale factor (default 1.0; use e.g.
//!   0.25 for quick shape checks);
//! * `SHOTGUN_THREADS` — sweep worker threads (default: all cores);
//! * `SHOTGUN_JSON_DIR` — when set, each binary also writes its
//!   `SweepReport` as `BENCH_<figure>.json` into this directory;
//! * `SHOTGUN_TRACE_DIR` — when set, sweeps persist each workload's
//!   recorded control-flow trace there and reuse compatible recordings,
//!   skipping the executor walk on repeated runs;
//! * `SHOTGUN_SAMPLING` / `SHOTGUN_SAMPLING_*` — shape of sampled
//!   simulation where a binary supports it (currently `sampling`; see
//!   `fe_sim::SamplingSpec::from_env`).

use std::io::IsTerminal;

use fe_cfg::{workloads, WorkloadSpec};
use fe_model::{MachineConfig, SimStats};
use fe_sim::{render_table, Experiment, RunLength, SweepReport};

/// Workload presentation order used by every figure (the paper's
/// left-to-right order).
pub const WORKLOAD_ORDER: [&str; 6] = ["nutch", "streaming", "apache", "zeus", "oracle", "db2"];

/// The evaluation seed: all experiments run the same retired streams.
pub const SEED: u64 = 0x5407;

/// Default per-cell run length for figure binaries.
pub fn default_len() -> RunLength {
    RunLength {
        warmup: 2_000_000,
        measure: 8_000_000,
    }
    .from_env()
}

/// Integer environment knob with `_` separators allowed — the parsing
/// every binary otherwise reimplements.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(default)
}

/// Floating-point environment knob (`SHOTGUN_SCALE` and friends).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The six Table 2 workloads, scaled by `SHOTGUN_SCALE` if set.
pub fn suite() -> Vec<WorkloadSpec> {
    let scale = env_f64("SHOTGUN_SCALE", 1.0);
    workloads::all()
        .into_iter()
        .map(|w| {
            if (scale - 1.0).abs() < 1e-9 {
                w
            } else {
                w.scaled(scale)
            }
        })
        .collect()
}

/// The Table 3 machine.
pub fn machine() -> MachineConfig {
    MachineConfig::table3()
}

/// Sweep worker threads: `SHOTGUN_THREADS` or all available cores.
pub fn threads() -> usize {
    std::env::var("SHOTGUN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The standard figure-binary sweep over an explicit workload set:
/// Table 3 machine, evaluation seed, env-tuned run length and thread
/// count, and a stderr progress line per completed cell when attached
/// to a terminal. Callers add schemes (and may override anything).
pub fn experiment_on(workloads: impl IntoIterator<Item = WorkloadSpec>) -> Experiment {
    let mut exp = Experiment::new(machine())
        .workloads(workloads)
        .len(default_len())
        .seed(SEED)
        .threads(threads());
    if let Ok(dir) = std::env::var("SHOTGUN_TRACE_DIR") {
        exp = exp.trace_dir(dir);
    }
    if std::io::stderr().is_terminal() {
        exp.on_progress(|e| {
            eprintln!(
                "[{:>3}/{}] {} / {}",
                e.completed, e.total, e.workload, e.scheme
            );
        })
    } else {
        exp
    }
}

/// [`experiment_on`] preloaded with the Table 2 suite — what most
/// figure binaries sweep.
pub fn experiment() -> Experiment {
    experiment_on(suite())
}

/// Writes `report` as `BENCH_<figure>.json` under `SHOTGUN_JSON_DIR`,
/// when that variable is set — the machine-readable perf trajectory
/// companion to each binary's printed tables.
pub fn write_report(report: &SweepReport, figure: &str) {
    let Ok(dir) = std::env::var("SHOTGUN_JSON_DIR") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("BENCH_{figure}.json"));
    match report.write_json(&path) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Borrows owned labels as the `&[&str]` the series extractors take.
fn as_refs(labels: &[impl AsRef<str>]) -> Vec<&str> {
    labels.iter().map(|l| l.as_ref()).collect()
}

/// Prints the standard speedup-over-baseline table for `labels` in the
/// paper's workload order.
pub fn print_speedup_table(report: &SweepReport, labels: &[impl AsRef<str>]) {
    let series = report.speedup_series(&WORKLOAD_ORDER, &as_refs(labels));
    print!(
        "{}",
        render_table("Speedup over no-prefetch baseline", &series, "gmean", false)
    );
}

/// Prints the standard front-end stall-cycle coverage table for
/// `labels` in the paper's workload order.
pub fn print_coverage_table(report: &SweepReport, labels: &[impl AsRef<str>]) {
    let series = report.coverage_series(&WORKLOAD_ORDER, &as_refs(labels));
    print!(
        "{}",
        render_table("Front-end stall cycle coverage", &series, "avg", true)
    );
}

/// Prints a table of an arbitrary per-cell statistic for `labels` in
/// the paper's workload order.
pub fn print_metric_table(
    report: &SweepReport,
    title: &str,
    labels: &[impl AsRef<str>],
    metric: impl Fn(&SimStats) -> f64,
    percent: bool,
) {
    let series = report.metric_series(&WORKLOAD_ORDER, &as_refs(labels), metric, false);
    print!("{}", render_table(title, &series, "avg", percent));
}

/// Prints the closing "paper shape" note of a figure binary.
pub fn paper_shape(text: &str) {
    println!("\npaper shape: {text}");
}

/// Prints the standard experiment header.
pub fn banner(experiment: &str, what: &str) {
    let len = default_len();
    println!("=== {experiment} — {what}");
    println!(
        "    machine: Table 3 | warmup {}M, measure {}M instructions per cell | {} threads\n",
        len.warmup / 1_000_000,
        len.measure / 1_000_000,
        threads(),
    );
}
