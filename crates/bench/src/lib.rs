//! # fe-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see
//! DESIGN.md's per-experiment index), plus Criterion microbenchmarks of
//! the core structures. Shared setup lives here.
//!
//! Every binary accepts the environment knobs:
//!
//! * `SHOTGUN_INSTRS` — measured instructions per (workload, scheme)
//!   cell (default per binary, typically 8M);
//! * `SHOTGUN_WARMUP` — warmup instructions (default 2-3M);
//! * `SHOTGUN_SCALE` — workload scale factor (default 1.0; use e.g.
//!   0.25 for quick shape checks).

use fe_cfg::{workloads, WorkloadSpec};
use fe_model::MachineConfig;
use fe_sim::RunLength;

/// Workload presentation order used by every figure (the paper's
/// left-to-right order).
pub const WORKLOAD_ORDER: [&str; 6] =
    ["nutch", "streaming", "apache", "zeus", "oracle", "db2"];

/// The evaluation seed: all experiments run the same retired streams.
pub const SEED: u64 = 0x5407;

/// Default per-cell run length for figure binaries.
pub fn default_len() -> RunLength {
    RunLength { warmup: 2_000_000, measure: 8_000_000 }.from_env()
}

/// The six Table 2 workloads, scaled by `SHOTGUN_SCALE` if set.
pub fn suite() -> Vec<WorkloadSpec> {
    let scale: f64 = std::env::var("SHOTGUN_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    workloads::all()
        .into_iter()
        .map(|w| if (scale - 1.0).abs() < 1e-9 { w } else { w.scaled(scale) })
        .collect()
}

/// The Table 3 machine.
pub fn machine() -> MachineConfig {
    MachineConfig::table3()
}

/// Prints the standard experiment header.
pub fn banner(experiment: &str, what: &str) {
    let len = default_len();
    println!("=== {experiment} — {what}");
    println!(
        "    machine: Table 3 | warmup {}M, measure {}M instructions per cell\n",
        len.warmup / 1_000_000,
        len.measure / 1_000_000,
    );
}
