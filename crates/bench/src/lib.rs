#![forbid(unsafe_code)]
//! # fe-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see the
//! experiment index in the repository README), plus std-only
//! throughput benchmarks of the core structures. Shared setup lives
//! here: every binary builds its sweep through [`experiment`], which
//! preconfigures the [`Experiment`] session API with the Table 3
//! machine, the Table 2 workload suite, and the evaluation seed.
//!
//! Every binary accepts the environment knobs:
//!
//! * `SHOTGUN_INSTRS` — measured instructions per (workload, scheme)
//!   cell (default per binary, typically 8M);
//! * `SHOTGUN_WARMUP` — warmup instructions (default 2-3M);
//! * `SHOTGUN_SCALE` — workload scale factor (default 1.0; use e.g.
//!   0.25 for quick shape checks);
//! * `SHOTGUN_THREADS` — sweep worker threads (default: all cores);
//! * `SHOTGUN_JSON_DIR` — when set, each binary also writes its
//!   `SweepReport` as `BENCH_<figure>.json` into this directory;
//! * `SHOTGUN_TRACE_DIR` — when set, sweeps persist each workload's
//!   recorded control-flow trace there and reuse compatible recordings,
//!   skipping the executor walk on repeated runs;
//! * `SHOTGUN_SAMPLING` / `SHOTGUN_SAMPLING_*` — shape of sampled
//!   simulation where a binary supports it (currently `sampling`; see
//!   `fe_sim::SamplingSpec::from_env`).

use std::io::IsTerminal;

use fe_cfg::{workloads, WorkloadSpec};
use fe_model::{MachineConfig, SimStats};
use fe_sim::json::Json;
use fe_sim::{render_table, Experiment, RunLength, SamplingSpec, SweepReport};

/// Workload presentation order used by every figure (the paper's
/// left-to-right order).
pub const WORKLOAD_ORDER: [&str; 6] = ["nutch", "streaming", "apache", "zeus", "oracle", "db2"];

/// The evaluation seed: all experiments run the same retired streams.
pub const SEED: u64 = 0x5407;

/// Default per-cell run length for figure binaries.
pub fn default_len() -> RunLength {
    RunLength {
        warmup: 2_000_000,
        measure: 8_000_000,
    }
    .from_env()
}

/// Integer environment knob with `_` separators allowed — the parsing
/// every binary otherwise reimplements.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(default)
}

/// Floating-point environment knob (`SHOTGUN_SCALE` and friends).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The six Table 2 workloads, scaled by `SHOTGUN_SCALE` if set.
pub fn suite() -> Vec<WorkloadSpec> {
    let scale = env_f64("SHOTGUN_SCALE", 1.0);
    workloads::all()
        .into_iter()
        .map(|w| {
            if (scale - 1.0).abs() < 1e-9 {
                w
            } else {
                w.scaled(scale)
            }
        })
        .collect()
}

/// The Table 3 machine.
pub fn machine() -> MachineConfig {
    MachineConfig::table3()
}

/// Sweep worker threads: `SHOTGUN_THREADS` or all available cores.
pub fn threads() -> usize {
    std::env::var("SHOTGUN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The standard figure-binary sweep over an explicit workload set:
/// Table 3 machine, evaluation seed, env-tuned run length and thread
/// count, and a stderr progress line per completed cell when attached
/// to a terminal. Callers add schemes (and may override anything).
pub fn experiment_on(workloads: impl IntoIterator<Item = WorkloadSpec>) -> Experiment {
    let mut exp = Experiment::new(machine())
        .workloads(workloads)
        .len(default_len())
        .seed(SEED)
        .threads(threads());
    if let Ok(dir) = std::env::var("SHOTGUN_TRACE_DIR") {
        exp = exp.trace_dir(dir);
    }
    if std::io::stderr().is_terminal() {
        exp.on_progress(|e| {
            eprintln!(
                "[{:>3}/{}] {} / {}",
                e.completed, e.total, e.workload, e.scheme
            );
        })
    } else {
        exp
    }
}

/// [`experiment_on`] preloaded with the Table 2 suite — what most
/// figure binaries sweep.
pub fn experiment() -> Experiment {
    experiment_on(suite())
}

/// Writes `report` as `BENCH_<figure>.json` under `SHOTGUN_JSON_DIR`,
/// when that variable is set — the machine-readable perf trajectory
/// companion to each binary's printed tables.
pub fn write_report(report: &SweepReport, figure: &str) {
    let Ok(dir) = std::env::var("SHOTGUN_JSON_DIR") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("BENCH_{figure}.json"));
    match report.write_json(&path) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// One cold + warm submission pair through the experiment service —
/// what the `serve` binary measures and `BENCH_serve.json` records.
pub struct ServeRun {
    /// Per-cell run length of the swept jobs.
    pub len: RunLength,
    /// Sampling shape, when the sweep ran in sampled mode.
    pub sampling: Option<SamplingSpec>,
    /// Workload scale factor.
    pub scale: f64,
    /// Cells per job (workloads × schemes).
    pub total_cells: usize,
    /// Wall time of the first (computing) submission.
    pub cold_wall_ms: f64,
    /// Cache-hit rate of the first submission (0.0 on a fresh root).
    pub cold_hit_rate: f64,
    /// Wall time of the resubmission (served from cache).
    pub warm_wall_ms: f64,
    /// Cache-hit rate of the resubmission (the gate demands 1.0).
    pub warm_hit_rate: f64,
    /// Size of the (byte-identical) report both runs returned.
    pub report_bytes: usize,
}

/// Emits `BENCH_serve.json` under `SHOTGUN_JSON_DIR`: service
/// throughput (jobs/s, cold and cached) and cache-hit rates. Like
/// `BENCH_perf.json`, all wall-clock fields live here and only here.
pub fn write_serve_json(run: &ServeRun) {
    let Ok(dir) = std::env::var("SHOTGUN_JSON_DIR") else {
        return;
    };
    let submission = |wall_ms: f64, hit_rate: f64| {
        Json::Obj(vec![
            ("wall_ms".into(), Json::F64(wall_ms)),
            ("jobs_per_s".into(), Json::F64(1e3 / wall_ms)),
            ("cache_hit_rate".into(), Json::F64(hit_rate)),
        ])
    };
    let sampling = run.sampling.map_or(Json::Null, |s| {
        Json::Obj(vec![
            ("interval".into(), Json::U64(s.interval)),
            ("detail".into(), Json::U64(s.detail)),
            ("warmup".into(), Json::U64(s.warmup)),
        ])
    });
    let doc = Json::Obj(vec![
        (
            "run".into(),
            Json::Obj(vec![
                ("warmup".into(), Json::U64(run.len.warmup)),
                ("measure".into(), Json::U64(run.len.measure)),
                ("seed".into(), Json::U64(SEED)),
                ("scale".into(), Json::F64(run.scale)),
                ("sampling".into(), sampling),
                ("cells_per_job".into(), Json::U64(run.total_cells as u64)),
                ("report_bytes".into(), Json::U64(run.report_bytes as u64)),
            ]),
        ),
        (
            "cold".into(),
            submission(run.cold_wall_ms, run.cold_hit_rate),
        ),
        (
            "warm".into(),
            submission(run.warm_wall_ms, run.warm_hit_rate),
        ),
        (
            "summary".into(),
            Json::Obj(vec![
                (
                    "cached_speedup".into(),
                    Json::F64(run.cold_wall_ms / run.warm_wall_ms),
                ),
                ("cache_hit_rate".into(), Json::F64(run.warm_hit_rate)),
            ]),
        ),
    ]);
    let path = std::path::Path::new(&dir).join("BENCH_serve.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Borrows owned labels as the `&[&str]` the series extractors take.
fn as_refs(labels: &[impl AsRef<str>]) -> Vec<&str> {
    labels.iter().map(|l| l.as_ref()).collect()
}

/// Prints the standard speedup-over-baseline table for `labels` in the
/// paper's workload order.
pub fn print_speedup_table(report: &SweepReport, labels: &[impl AsRef<str>]) {
    let series = report.speedup_series(&WORKLOAD_ORDER, &as_refs(labels));
    print!(
        "{}",
        render_table("Speedup over no-prefetch baseline", &series, "gmean", false)
    );
}

/// Prints the standard front-end stall-cycle coverage table for
/// `labels` in the paper's workload order.
pub fn print_coverage_table(report: &SweepReport, labels: &[impl AsRef<str>]) {
    let series = report.coverage_series(&WORKLOAD_ORDER, &as_refs(labels));
    print!(
        "{}",
        render_table("Front-end stall cycle coverage", &series, "avg", true)
    );
}

/// Prints a table of an arbitrary per-cell statistic for `labels` in
/// the paper's workload order.
pub fn print_metric_table(
    report: &SweepReport,
    title: &str,
    labels: &[impl AsRef<str>],
    metric: impl Fn(&SimStats) -> f64,
    percent: bool,
) {
    let series = report.metric_series(&WORKLOAD_ORDER, &as_refs(labels), metric, false);
    print!("{}", render_table(title, &series, "avg", percent));
}

/// Prints the closing "paper shape" note of a figure binary.
pub fn paper_shape(text: &str) {
    println!("\npaper shape: {text}");
}

/// Prints the standard experiment header.
pub fn banner(experiment: &str, what: &str) {
    let len = default_len();
    println!("=== {experiment} — {what}");
    println!(
        "    machine: Table 3 | warmup {}M, measure {}M instructions per cell | {} threads\n",
        len.warmup / 1_000_000,
        len.measure / 1_000_000,
        threads(),
    );
}
