//! End-to-end simulation throughput: wall-time per simulated run for
//! each control-flow-delivery scheme on a mid-sized workload. Guards
//! against regressions that would make the figure binaries impractical.
//!
//! Std-only harness (`harness = false`): each scheme is timed over a
//! fixed number of iterations after one warmup run; results print as
//! ms/run and simulated-MIPS.
//!
//! ```sh
//! cargo bench -p fe-bench --bench end_to_end
//! ```

use fe_cfg::workloads;
use fe_model::MachineConfig;
use fe_sim::{run_scheme, run_scheme_replayed, RunLength, SchemeSpec};
use fe_trace::Trace;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let program = workloads::zeus().scaled(0.15).build();
    let machine = MachineConfig::table3();
    let len = RunLength {
        warmup: 50_000,
        measure: 150_000,
    };
    let iters = 10u32;

    println!(
        "end_to_end: {} iterations of {}K+{}K instructions per scheme",
        iters,
        len.warmup / 1000,
        len.measure / 1000
    );
    println!("{:14} {:>10} {:>12}", "scheme", "ms/run", "sim MIPS");
    for spec in [
        SchemeSpec::NoPrefetch,
        SchemeSpec::boomerang(),
        SchemeSpec::Confluence,
        SchemeSpec::shotgun(),
        SchemeSpec::Ideal,
    ] {
        // One untimed warmup run to populate allocator/caches.
        black_box(run_scheme(&program, &spec, &machine, len, 3));
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(run_scheme(&program, &spec, &machine, len, 3));
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let per_run_ms = 1e3 * elapsed / iters as f64;
        let mips = (len.warmup + len.measure) as f64 * iters as f64 / elapsed / 1e6;
        println!("{:14} {:>10.2} {:>12.1}", spec.label(), per_run_ms, mips);
    }

    // Record-once/replay-many: the same runs fed from a recorded trace
    // instead of the live executor walk. Replay should be at least as
    // fast as live execution (decode beats re-deriving control flow) —
    // this is the throughput edge every multi-scheme sweep now gets.
    let trace = Trace::record(&program, 3, len.trace_instrs(&machine));
    println!(
        "\nreplayed from a {:.1} MB trace ({} blocks):",
        trace.payload_len() as f64 / 1e6,
        trace.header().block_count
    );
    println!("{:14} {:>10} {:>12}", "scheme", "ms/run", "sim MIPS");
    for spec in [SchemeSpec::NoPrefetch, SchemeSpec::shotgun()] {
        black_box(run_scheme_replayed(
            &program, &trace, &spec, &machine, len, 3,
        ));
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(run_scheme_replayed(
                &program, &trace, &spec, &machine, len, 3,
            ));
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let per_run_ms = 1e3 * elapsed / iters as f64;
        let mips = (len.warmup + len.measure) as f64 * iters as f64 / elapsed / 1e6;
        println!("{:14} {:>10.2} {:>12.1}", spec.label(), per_run_ms, mips);
    }
}
