//! End-to-end simulation throughput: wall-time per simulated run for
//! each control-flow-delivery scheme on a mid-sized workload. Guards
//! against regressions that would make the figure binaries impractical.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fe_cfg::workloads;
use fe_model::MachineConfig;
use fe_sim::{run_scheme, RunLength, SchemeSpec};

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let program = workloads::zeus().scaled(0.15).build();
    let machine = MachineConfig::table3();
    let len = RunLength { warmup: 50_000, measure: 150_000 };
    for spec in [
        SchemeSpec::NoPrefetch,
        SchemeSpec::boomerang(),
        SchemeSpec::Confluence,
        SchemeSpec::shotgun(),
        SchemeSpec::Ideal,
    ] {
        group.bench_function(spec.label(), |bench| {
            bench.iter(|| black_box(run_scheme(&program, &spec, &machine, len, 3)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
