//! Criterion microbenchmarks of the core hardware structures: the
//! per-access costs that dominate simulation throughput and the
//! operations the paper's design exercises on every prediction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fe_cfg::{workloads, Executor};
use fe_model::config::{CacheConfig, TageConfig};
use fe_model::{Addr, BasicBlock, BranchKind, LineAddr, MachineConfig};
use fe_uarch::{Btb, LineCache, MemClass, MemorySystem, Tage};
use shotgun::{FootprintLayout, FootprintRecorder, SpatialFootprint};

fn bench_btb(c: &mut Criterion) {
    let mut group = c.benchmark_group("btb");
    let mut btb = Btb::new(2048, 4);
    for i in 0..4096u64 {
        let b = BasicBlock::new(
            Addr::new(0x1_0000 + i * 20),
            5,
            BranchKind::Conditional,
            Addr::new(0x1_0000),
        );
        btb.insert(&b);
    }
    group.bench_function("lookup_hit", |bench| {
        let mut i = 2048u64;
        bench.iter(|| {
            i = (i + 1) % 4096;
            black_box(btb.lookup(Addr::new(0x1_0000 + i * 20)))
        });
    });
    group.bench_function("insert_evict", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            let b = BasicBlock::new(
                Addr::new(0x80_0000 + i * 20),
                5,
                BranchKind::Jump,
                Addr::new(0x1_0000),
            );
            black_box(btb.insert(&b))
        });
    });
    group.finish();
}

fn bench_tage(c: &mut Criterion) {
    let mut group = c.benchmark_group("tage");
    let mut tage = Tage::new(TageConfig::default());
    // Warm with a mixed stream.
    for i in 0..10_000u64 {
        tage.retire(Addr::new(0x1000 + (i % 512) * 8), i % 3 == 0);
    }
    group.bench_function("predict", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            black_box(tage.predict(Addr::new(0x1000 + (i % 512) * 8)))
        });
    });
    group.bench_function("retire", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            black_box(tage.retire(Addr::new(0x1000 + (i % 512) * 8), i % 3 == 0))
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1i");
    let mut cache = LineCache::new(CacheConfig::default());
    for i in 0..512u64 {
        cache.install(LineAddr::from_index(i), false);
    }
    group.bench_function("demand_hit", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.demand_access(LineAddr::from_index(i)))
        });
    });
    group.bench_function("install_evict", |bench| {
        let mut i = 512u64;
        bench.iter(|| {
            i += 1;
            black_box(cache.install(LineAddr::from_index(i), true))
        });
    });
    group.finish();
}

fn bench_memory_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_llc");
    let mut mem = MemorySystem::new(&MachineConfig::table3());
    group.bench_function("instr_request", |bench| {
        let mut now = 0u64;
        let mut i = 0u64;
        bench.iter(|| {
            now += 10;
            i += 1;
            black_box(mem.request_instr(
                now,
                LineAddr::from_index(i % 8192),
                MemClass::InstrPrefetch,
            ))
        });
    });
    group.finish();
}

fn bench_footprint(c: &mut Criterion) {
    let mut group = c.benchmark_group("footprint");
    group.bench_function("record", |bench| {
        let mut fp = SpatialFootprint::EMPTY;
        let mut d = 0i64;
        bench.iter(|| {
            d = (d + 1) % 7;
            black_box(fp.record(d, FootprintLayout::BITS8))
        });
    });
    let program = workloads::nutch().scaled(0.05).build();
    group.bench_function("recorder_observe", |bench| {
        let mut recorder = FootprintRecorder::new(FootprintLayout::BITS8, 32);
        let mut exec = Executor::new(&program, 1);
        bench.iter(|| {
            let rb = exec.next_block();
            black_box(recorder.observe(&rb))
        });
    });
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    let program = workloads::zeus().scaled(0.2).build();
    group.bench_function("next_block", |bench| {
        let mut exec = Executor::new(&program, 9);
        bench.iter(|| black_box(exec.next_block()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_btb,
    bench_tage,
    bench_cache,
    bench_memory_system,
    bench_footprint,
    bench_executor
);
criterion_main!(benches);
