//! Microbenchmarks of the core hardware structures: the per-access
//! costs that dominate simulation throughput and the operations the
//! paper's design exercises on every prediction.
//!
//! Std-only harness (`harness = false`): each operation is timed over a
//! fixed iteration count and printed as ns/op.
//!
//! ```sh
//! cargo bench -p fe-bench --bench structures
//! ```

use fe_cfg::{workloads, Executor};
use fe_model::config::{CacheConfig, TageConfig};
use fe_model::{Addr, BasicBlock, BlockSource, BranchKind, LineAddr, MachineConfig};
use fe_trace::Trace;
use fe_uarch::{Btb, LineCache, MemClass, MemorySystem, Tage};
use shotgun::{FootprintLayout, FootprintRecorder, SpatialFootprint};
use std::hint::black_box;
use std::time::Instant;

const ITERS: u64 = 2_000_000;

fn bench(name: &str, iters: u64, mut op: impl FnMut(u64)) {
    // One pass to warm, one timed pass.
    for i in 0..iters / 10 {
        op(i);
    }
    let t0 = Instant::now();
    for i in 0..iters {
        op(i);
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:28} {ns:>8.1} ns/op");
}

fn main() {
    let mut btb = Btb::new(2048, 4);
    for i in 0..4096u64 {
        let b = BasicBlock::new(
            Addr::new(0x1_0000 + i * 20),
            5,
            BranchKind::Conditional,
            Addr::new(0x1_0000),
        );
        btb.insert(&b);
    }
    bench("btb/lookup_hit", ITERS, |i| {
        black_box(btb.lookup(Addr::new(0x1_0000 + (2048 + i) % 4096 * 20)));
    });
    bench("btb/insert_evict", ITERS, |i| {
        let b = BasicBlock::new(
            Addr::new(0x80_0000 + i * 20),
            5,
            BranchKind::Jump,
            Addr::new(0x1_0000),
        );
        black_box(btb.insert(&b));
    });

    let mut tage = Tage::new(TageConfig::default());
    for i in 0..10_000u64 {
        tage.retire(Addr::new(0x1000 + (i % 512) * 8), i % 3 == 0);
    }
    bench("tage/predict", ITERS, |i| {
        black_box(tage.predict(Addr::new(0x1000 + (i % 512) * 8)));
    });
    bench("tage/retire", ITERS, |i| {
        black_box(tage.retire(Addr::new(0x1000 + (i % 512) * 8), i % 3 == 0));
    });

    let mut cache = LineCache::new(CacheConfig::default());
    for i in 0..512u64 {
        cache.install(LineAddr::from_index(i), false);
    }
    bench("l1i/demand_hit", ITERS, |i| {
        black_box(cache.demand_access(LineAddr::from_index(i % 512)));
    });
    bench("l1i/install_evict", ITERS, |i| {
        black_box(cache.install(LineAddr::from_index(512 + i), true));
    });

    let mut mem = MemorySystem::new(&MachineConfig::table3());
    bench("noc_llc/instr_request", ITERS, |i| {
        black_box(mem.request_instr(
            i * 10,
            LineAddr::from_index(i % 8192),
            MemClass::InstrPrefetch,
        ));
    });

    let mut fp = SpatialFootprint::EMPTY;
    bench("footprint/record", ITERS, |i| {
        black_box(fp.record((i % 7) as i64, FootprintLayout::BITS8));
    });

    let program = workloads::nutch().scaled(0.05).build();
    let mut recorder = FootprintRecorder::new(FootprintLayout::BITS8, 32);
    let mut exec = Executor::new(&program, 1);
    bench("footprint/recorder_observe", ITERS / 4, |_| {
        let rb = exec.next_block();
        black_box(recorder.observe(&rb));
    });

    let program = workloads::zeus().scaled(0.2).build();
    let mut exec = Executor::new(&program, 9);
    bench("executor/next_block", ITERS, |_| {
        black_box(exec.next_block());
    });

    // Record-once/replay-many hinges on trace replay beating the live
    // walk: decode (varint deltas) vs re-deriving control flow (RNG,
    // Zipf draws, loop bookkeeping). The bench loops over one recording
    // sized well past cache-warm effects.
    let trace = Trace::record(&program, 9, (ITERS / 8) * 4);
    let mut replayer = trace.replayer();
    let replay_blocks = trace.header().block_count;
    let mut left = replay_blocks;
    bench("trace/replay_block", ITERS, |_| {
        if left == 0 {
            replayer = trace.replayer();
            left = replay_blocks;
        }
        left -= 1;
        black_box(replayer.next_block());
    });
}
