//! Gate-level tests: the real workspace audits clean, and the
//! fe-audit binary is deterministic byte-for-byte across separate
//! processes (each process gets fresh SipHash keys — exactly the
//! nondeterminism the tool exists to police, so the tool itself must
//! not exhibit it).

use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("crates/audit always sits two levels under the workspace root")
}

/// The tree this test runs in must itself pass the gate — every
/// violation fixed or waivered. This is the test that keeps the CI
/// step green *and* strict: a new violation fails here first.
#[test]
fn workspace_audits_clean() {
    let files = fe_audit::walk_workspace(&workspace_root()).expect("workspace sources readable");
    let analysis = fe_audit::analyze(&files);
    let gating: Vec<_> = analysis.findings.iter().filter(|j| !j.waived).collect();
    assert!(
        gating.is_empty(),
        "unwaivered findings in the workspace:\n{:#?}",
        gating
    );
}

/// Two separate runs of the binary — separate processes, separate
/// hasher keys — must produce byte-identical stdout and JSON.
#[test]
fn binary_output_is_byte_identical_across_runs() {
    let bin = env!("CARGO_BIN_EXE_fe-audit");
    let root = workspace_root();
    let tmp = std::env::temp_dir().join(format!("fe-audit-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("temp dir creatable");

    let mut outputs = Vec::new();
    for run in 0..2 {
        let json_path = tmp.join(format!("run{run}.json"));
        let out = Command::new(bin)
            .arg("--root")
            .arg(&root)
            .arg("--json")
            .arg(&json_path)
            .output()
            .expect("fe-audit binary runs");
        assert!(
            out.status.success(),
            "fe-audit failed on the workspace:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let json = std::fs::read(&json_path).expect("JSON report written");
        assert!(!json.is_empty());
        outputs.push((out.stdout, json));
    }
    let _ = std::fs::remove_dir_all(&tmp);

    assert_eq!(
        outputs[0].0, outputs[1].0,
        "stdout differs between two runs"
    );
    assert_eq!(
        outputs[0].1, outputs[1].1,
        "JSON report differs between two runs"
    );
}

/// The committed baseline matches the tree: the waiver census fragment
/// in `BENCH_audit.json` is exactly what a fresh run renders. Growing
/// the waiver set without regenerating the baseline fails here (and in
/// the CI `--baseline` check) in the same commit.
#[test]
fn committed_baseline_is_current() {
    let root = workspace_root();
    let baseline_path = root.join("BENCH_audit.json");
    let baseline = std::fs::read_to_string(&baseline_path)
        .expect("BENCH_audit.json is committed at the workspace root");
    let files = fe_audit::walk_workspace(&root).expect("workspace sources readable");
    let analysis = fe_audit::analyze(&files);
    let census = fe_audit::render_waiver_census(&analysis);
    assert!(
        baseline.contains(&census),
        "BENCH_audit.json is stale — regenerate with `cargo run -p fe-audit -- --json BENCH_audit.json`"
    );
}
