//! Fixture-based rule tests: for every rule in the catalog, a
//! positive fixture (violation → finding), a negative fixture (clean
//! code → no finding), and a waivered fixture (violation + waiver →
//! finding counted but not gating). Fixtures live in `fixtures/`,
//! which the workspace walker deliberately skips — so fe-audit never
//! trips over its own test corpus.
//!
//! The fixture *text* is what matters; each test lexes it under a
//! chosen relative path, because crate attribution (engine or not,
//! crate root or not, test file or not) is part of every rule.

use fe_audit::{analyze, lex_rel_path, Analysis};

/// Lexes one fixture under `rel_path` and audits it alone.
fn audit(rel_path: &str, fixture: &str) -> Analysis {
    analyze(&[lex_rel_path(rel_path, fixture)])
}

/// Asserts every finding in `a` is `rule`, with `total` of them and
/// `unwaivered` still gating.
fn expect_rule(a: &Analysis, rule: &str, total: usize, unwaivered: usize) {
    assert_eq!(a.findings.len(), total, "findings: {:#?}", a.findings);
    for j in &a.findings {
        assert_eq!(j.finding.rule, rule, "unexpected rule: {:#?}", j.finding);
    }
    assert_eq!(a.unwaivered(), unwaivered, "findings: {:#?}", a.findings);
}

// ---------------------------------------------------------- no-siphash

#[test]
fn siphash_positive() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/siphash_bad.rs"),
    );
    assert!(a.unwaivered() >= 1);
    expect_rule(&a, "no-siphash", a.findings.len(), a.findings.len());
}

#[test]
fn siphash_negative() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/siphash_ok.rs"),
    );
    expect_rule(&a, "no-siphash", 0, 0);
}

#[test]
fn siphash_outside_engine_crates_is_fine() {
    // The same violating text is clean in a non-engine crate.
    let a = audit(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/siphash_bad.rs"),
    );
    expect_rule(&a, "no-siphash", 0, 0);
}

#[test]
fn siphash_waivered() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/siphash_waived.rs"),
    );
    expect_rule(&a, "no-siphash", 1, 0);
    assert!(a.findings[0].waived);
    assert!(a.unused_waivers.is_empty());
}

// -------------------------------------------------------- no-wallclock

#[test]
fn wallclock_positive() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/wallclock_bad.rs"),
    );
    expect_rule(&a, "no-wallclock", 1, 1);
}

#[test]
fn wallclock_negative() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/wallclock_ok.rs"),
    );
    expect_rule(&a, "no-wallclock", 0, 0);
}

#[test]
fn wallclock_allowed_in_bench() {
    let a = audit(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/wallclock_bad.rs"),
    );
    expect_rule(&a, "no-wallclock", 0, 0);
}

#[test]
fn wallclock_waivered() {
    let a = audit(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/wallclock_waived.rs"),
    );
    expect_rule(&a, "no-wallclock", 1, 0);
    assert!(a.findings[0].waived);
}

// -------------------------------------------------- no-unchecked-panic

#[test]
fn panic_positive() {
    let a = audit(
        "crates/trace/src/fixture.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    expect_rule(&a, "no-unchecked-panic", 1, 1);
}

#[test]
fn panic_negative_expect_is_sanctioned() {
    let a = audit(
        "crates/trace/src/fixture.rs",
        include_str!("fixtures/panic_ok.rs"),
    );
    expect_rule(&a, "no-unchecked-panic", 0, 0);
}

#[test]
fn panic_in_test_code_is_fine() {
    // Same violating text under tests/ — unwrap in tests is idiomatic.
    let a = audit(
        "crates/trace/tests/fixture.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    expect_rule(&a, "no-unchecked-panic", 0, 0);
}

#[test]
fn panic_waivered() {
    let a = audit(
        "crates/trace/src/fixture.rs",
        include_str!("fixtures/panic_waived.rs"),
    );
    expect_rule(&a, "no-unchecked-panic", 1, 0);
    assert!(a.findings[0].waived);
}

// ------------------------------------------------------- forbid-unsafe

#[test]
fn unsafe_positive() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/unsafe_bad.rs"),
    );
    expect_rule(&a, "forbid-unsafe", 1, 1);
}

#[test]
fn unsafe_negative_with_crate_attribute() {
    let a = audit(
        "crates/sim/src/lib.rs",
        include_str!("fixtures/unsafe_ok.rs"),
    );
    expect_rule(&a, "forbid-unsafe", 0, 0);
}

#[test]
fn crate_root_without_forbid_attribute_is_flagged() {
    // A clean file, but at a crate root and missing the attribute:
    // the file-anchored variant of the rule.
    let a = audit(
        "crates/sim/src/lib.rs",
        include_str!("fixtures/wallclock_ok.rs"),
    );
    expect_rule(&a, "forbid-unsafe", 1, 1);
    assert!(a.findings[0].finding.file_anchored);
}

#[test]
fn unsafe_waivered_with_safety_prose_between() {
    // The SAFETY comment sits between the waiver and the `unsafe`
    // block — comment-only lines must not break waiver coverage.
    let a = audit(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/unsafe_waived.rs"),
    );
    expect_rule(&a, "forbid-unsafe", 1, 0);
    assert!(a.findings[0].waived);
}

// ---------------------------------------------------- no-env-in-engine

#[test]
fn env_positive() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/env_bad.rs"),
    );
    expect_rule(&a, "no-env-in-engine", 1, 1);
}

#[test]
fn env_negative() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/env_ok.rs"),
    );
    expect_rule(&a, "no-env-in-engine", 0, 0);
}

#[test]
fn env_allowed_outside_engine() {
    let a = audit(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/env_bad.rs"),
    );
    expect_rule(&a, "no-env-in-engine", 0, 0);
}

#[test]
fn env_waivered() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/env_waived.rs"),
    );
    expect_rule(&a, "no-env-in-engine", 1, 0);
    assert!(a.findings[0].waived);
}

// --------------------------------------------------------- float-state

#[test]
fn float_positive() {
    let a = audit(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/float_bad.rs"),
    );
    expect_rule(&a, "float-state", 1, 1);
}

#[test]
fn float_negative_derived_structs_are_fine() {
    let a = audit(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/float_ok.rs"),
    );
    expect_rule(&a, "float-state", 0, 0);
}

#[test]
fn float_waivered() {
    let a = audit(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/float_waived.rs"),
    );
    expect_rule(&a, "float-state", 1, 0);
    assert!(a.findings[0].waived);
}

// ------------------------------------------------------- meta findings

#[test]
fn unused_waiver_is_itself_a_finding() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/unused_waiver.rs"),
    );
    expect_rule(&a, "unused-waiver", 1, 1);
    assert_eq!(a.unused_waivers.len(), 1);
}

#[test]
fn malformed_waiver_missing_reason_is_a_finding() {
    let a = audit(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/malformed_waiver.rs"),
    );
    // The reason-less waiver is malformed AND the HashMap lines it
    // failed to waive still gate.
    assert!(a
        .findings
        .iter()
        .any(|j| j.finding.rule == "malformed-waiver" && !j.waived));
    assert!(a
        .findings
        .iter()
        .any(|j| j.finding.rule == "no-siphash" && !j.waived));
    assert!(a.unwaivered() >= 2);
}
