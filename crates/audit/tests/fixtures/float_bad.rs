pub struct FetchStats {
    pub fetched: u64,
    pub ipc: f64,
}
