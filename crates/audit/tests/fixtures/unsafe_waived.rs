pub fn install() {
    // audit-allow(forbid-unsafe): raw signal(2) registration — the handler body is a single atomic store
    // SAFETY: the handler is an extern "C" fn with the exact signature
    // the libc entry point expects, and it performs no allocation.
    unsafe {
        libc_signal(2, handler as usize);
    }
}
