pub fn knob(explicit: Option<u64>) -> u64 {
    explicit.unwrap_or(42)
}
