pub fn decode(byte: u8) -> u8 {
    if byte > 0x7f {
        // audit-allow(no-unchecked-panic): corrupt input mid-stream is unrecoverable — continuing would silently produce a different stream
        panic!("corrupt stream");
    }
    byte
}
