pub fn knob() -> Option<String> {
    std::env::var("SHOTGUN_KNOB").ok()
}
