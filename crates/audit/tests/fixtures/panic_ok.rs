pub fn first(v: &[u64]) -> u64 {
    *v.first().expect("caller guarantees a non-empty slice")
}
