// audit-allow(no-siphash): iteration order is never observed — the map is drained through a sorted Vec before any output
use std::collections::HashMap;

pub fn build() -> Vec<u64> {
    Vec::new()
}
