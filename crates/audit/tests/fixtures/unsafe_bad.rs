pub fn read(p: *const u64) -> u64 {
    unsafe { *p }
}
