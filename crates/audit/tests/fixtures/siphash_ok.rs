use fe_uarch::FastMap;
use std::collections::BTreeMap;

pub fn build() -> FastMap<u64, u64> {
    let mut m = FastMap::default();
    m.insert(1, 2);
    m
}

pub fn ordered() -> BTreeMap<u64, u64> {
    BTreeMap::new()
}
