use std::collections::HashMap;

pub fn build() -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m
}
