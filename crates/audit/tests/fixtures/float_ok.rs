pub struct FetchStats {
    pub fetched: u64,
    pub cycles: u64,
}

pub struct Summary {
    pub ipc: f64,
}
