// audit-allow(no-siphash): nothing on the next line actually violates the rule
pub fn clean() -> u64 {
    7
}
