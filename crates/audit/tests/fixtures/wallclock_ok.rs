pub fn cycles(n: u64) -> u64 {
    n * 3
}
