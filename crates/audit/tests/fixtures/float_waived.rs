pub struct FetchStats {
    pub fetched: u64,
    // audit-allow(float-state): derived presentation-only field — recomputed from the integer counters at report time, never accumulated
    pub ipc: f64,
}
