pub fn knob() -> Option<String> {
    // audit-allow(no-env-in-engine): A/B triage escape hatch — absent in normal runs, bit-exact either way
    std::env::var("SHOTGUN_KNOB").ok()
}
