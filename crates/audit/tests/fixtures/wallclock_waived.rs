pub fn touch(f: &std::fs::File) {
    // audit-allow(no-wallclock): cache recency metadata only — never enters a simulated result
    let _ = f.set_modified(std::time::SystemTime::now());
}
