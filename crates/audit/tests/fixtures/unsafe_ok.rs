#![forbid(unsafe_code)]

pub fn read(v: &[u64]) -> u64 {
    v[0]
}
