//! Waiver parsing, finding/waiver matching, and report rendering.
//!
//! A waiver is a comment of the form
//!
//! ```text
//! // audit-allow(<rule>[, <rule>...]): <reason>
//! ```
//!
//! The reason is mandatory — a waiver is a named exception to a
//! determinism invariant, and the name is the point. A waiver on a
//! code line covers that line; a waiver on a comment-only line covers
//! the next line carrying code (so it can sit above the site, next to
//! a SAFETY comment). A missing-crate-attribute finding (which has no
//! single site) is covered by a matching waiver anywhere in its file.
//! Waivers that cover nothing, name an unknown rule, or omit the
//! reason are themselves findings (`unused-waiver`,
//! `malformed-waiver`) — the waiver census can only shrink by deleting
//! dead waivers, never by letting them rot.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{check_file, is_known_rule, Finding, RULES};
use crate::scan::SourceFile;

/// One parsed waiver site.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub file: String,
    pub line: usize,
    /// Rule ids this waiver names, lexically sorted.
    pub rules: Vec<String>,
    pub reason: String,
    /// Line whose findings this waiver covers (its own line, or the
    /// next code-carrying line when the waiver stands alone).
    pub covers_line: usize,
}

/// The marker that introduces a waiver inside a comment. A waiver
/// must *start* its comment (modulo whitespace) — mentions of the
/// syntax mid-prose, or doc-comment examples prefixed with a nested
/// `//`, are not waivers.
const MARKER: &str = "audit-allow(";

/// Parses the waivers (and malformed-waiver findings) of one file.
fn parse_waivers(f: &SourceFile) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for (idx, line) in f.lines.iter().enumerate() {
        let trimmed = line.comment.trim_start();
        if !trimmed.starts_with(MARKER) {
            continue;
        }
        let pos = line.comment.len() - trimmed.len();
        let mut bad = |why: &str| {
            malformed.push(Finding {
                rule: "malformed-waiver",
                file: f.ctx.rel_path.clone(),
                line: line.number,
                message: format!("{why}: {}", line.comment.trim()),
                file_anchored: false,
            });
        };
        let after = &line.comment[pos + MARKER.len()..];
        let Some(close) = after.find(')') else {
            bad("waiver missing closing parenthesis");
            continue;
        };
        let mut rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        rules.sort();
        rules.dedup();
        if rules.is_empty() {
            bad("waiver names no rule");
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !is_known_rule(r)) {
            bad(&format!("waiver names unknown rule `{unknown}`"));
            continue;
        }
        let rest = after[close + 1..].trim_start();
        let reason = match rest.strip_prefix(':') {
            Some(r) => r.trim(),
            None => {
                bad("waiver missing `: <reason>`");
                continue;
            }
        };
        if reason.is_empty() {
            bad("waiver reason is empty");
            continue;
        }
        // Standalone comment line: cover the next code-carrying line
        // (skipping further comment-only lines, e.g. SAFETY text).
        let covers_line = if line.code.trim().is_empty() {
            f.lines[idx + 1..]
                .iter()
                .find(|l| !l.code.trim().is_empty())
                .map(|l| l.number)
                .unwrap_or(line.number)
        } else {
            line.number
        };
        waivers.push(Waiver {
            file: f.ctx.rel_path.clone(),
            line: line.number,
            rules,
            reason: reason.to_string(),
            covers_line,
        });
    }
    (waivers, malformed)
}

/// A finding after waiver matching.
#[derive(Clone, Debug)]
pub struct Judged {
    pub finding: Finding,
    pub waived: bool,
}

/// Full result of auditing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    pub files_scanned: usize,
    /// All findings (rule violations + meta-findings), sorted by
    /// (file, line, rule), each marked waived or not.
    pub findings: Vec<Judged>,
    /// All well-formed waivers, sorted by (file, line).
    pub waivers: Vec<Waiver>,
    /// Indices into `waivers` of waivers that covered nothing.
    pub unused_waivers: Vec<usize>,
}

impl Analysis {
    /// Findings not covered by a waiver — the gate condition.
    pub fn unwaivered(&self) -> usize {
        self.findings.iter().filter(|j| !j.waived).count()
    }

    /// (findings, waived) per rule id, in catalog order with the two
    /// meta rules appended.
    pub fn per_rule(&self) -> Vec<(&'static str, usize, usize)> {
        let mut order: Vec<&'static str> = RULES.iter().map(|r| r.id).collect();
        order.push("malformed-waiver");
        order.push("unused-waiver");
        order
            .into_iter()
            .map(|id| {
                let total = self
                    .findings
                    .iter()
                    .filter(|j| j.finding.rule == id)
                    .count();
                let waived = self
                    .findings
                    .iter()
                    .filter(|j| j.finding.rule == id && j.waived)
                    .count();
                (id, total, waived)
            })
            .collect()
    }
}

/// Audits a set of lexed files: run rules, parse waivers, match them.
pub fn analyze(files: &[SourceFile]) -> Analysis {
    let mut findings: Vec<Finding> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut used: Vec<bool> = Vec::new();

    for f in files {
        let file_findings = check_file(f);
        let (file_waivers, malformed) = parse_waivers(f);
        let base = waivers.len();
        used.resize(base + file_waivers.len(), false);

        for finding in file_findings {
            findings.push(finding);
        }
        findings.extend(malformed);
        waivers.extend(file_waivers);
        let _ = base;
    }

    // Match findings to waivers (same file; same/covered line, or
    // anywhere-in-file for file-anchored findings).
    let mut judged: Vec<Judged> = findings
        .into_iter()
        .map(|finding| {
            let waivable = finding.rule != "unused-waiver" && finding.rule != "malformed-waiver";
            let mut waived = false;
            if waivable {
                for (i, w) in waivers.iter().enumerate() {
                    if w.file != finding.file || !w.rules.iter().any(|r| r == finding.rule) {
                        continue;
                    }
                    let hits = finding.file_anchored
                        || w.covers_line == finding.line
                        || w.line == finding.line;
                    if hits {
                        used[i] = true;
                        waived = true;
                    }
                }
            }
            Judged { finding, waived }
        })
        .collect();

    let unused: Vec<usize> = (0..waivers.len()).filter(|&i| !used[i]).collect();
    for &i in &unused {
        let w = &waivers[i];
        judged.push(Judged {
            finding: Finding {
                rule: "unused-waiver",
                file: w.file.clone(),
                line: w.line,
                message: format!(
                    "waiver for `{}` covers no finding — delete it",
                    w.rules.join(", ")
                ),
                file_anchored: false,
            },
            waived: false,
        });
    }

    judged.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, a.finding.rule).cmp(&(
            &b.finding.file,
            b.finding.line,
            b.finding.rule,
        ))
    });

    Analysis {
        files_scanned: files.len(),
        findings: judged,
        waivers,
        unused_waivers: unused,
    }
}

/// Renders the human-readable report (deterministic byte-for-byte).
pub fn render_table(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fe-audit: {} files, {} findings ({} unwaivered), {} waivers ({} unused)",
        a.files_scanned,
        a.findings.len(),
        a.unwaivered(),
        a.waivers.len(),
        a.unused_waivers.len(),
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>10}",
        "rule", "findings", "waived", "unwaivered"
    );
    for (id, total, waived) in a.per_rule() {
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>8} {:>10}",
            id,
            total,
            waived,
            total - waived
        );
    }
    let unwaivered: Vec<&Judged> = a.findings.iter().filter(|j| !j.waived).collect();
    if !unwaivered.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "unwaivered findings:");
        for j in unwaivered {
            let _ = writeln!(
                out,
                "  {}:{} [{}] {}",
                j.finding.file, j.finding.line, j.finding.rule, j.finding.message
            );
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the waiver census as a JSON fragment. This exact fragment
/// is embedded in [`render_json`], which is what lets the committed
/// `BENCH_audit.json` act as a baseline: the census either appears
/// verbatim in it, or the baseline is stale.
pub fn render_waiver_census(a: &Analysis) -> String {
    let mut sites: Vec<&Waiver> = a.waivers.iter().collect();
    sites.sort_by_key(|w| (w.file.clone(), w.line));
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "    \"total\": {},", a.waivers.len());
    let _ = writeln!(out, "    \"unused\": {},", a.unused_waivers.len());
    out.push_str("    \"sites\": [");
    for (i, w) in sites.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n      {{\"file\": \"{}\", \"line\": {}, \"rules\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&w.file),
            w.line,
            json_escape(&w.rules.join(",")),
            json_escape(&w.reason),
        );
    }
    if !sites.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }");
    out
}

/// Renders the machine-readable report (`BENCH_audit.json`).
pub fn render_json(a: &Analysis) -> String {
    let mut rules: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (id, total, waived) in a.per_rule() {
        rules.insert(id, (total, waived));
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"fe-audit/v1\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", a.files_scanned);
    let _ = writeln!(out, "  \"findings\": {},", a.findings.len());
    let _ = writeln!(out, "  \"unwaivered\": {},", a.unwaivered());
    out.push_str("  \"rules\": {\n");
    let n = rules.len();
    for (i, (id, (total, waived))) in rules.into_iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{id}\": {{\"findings\": {total}, \"waived\": {waived}}}{comma}"
        );
    }
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"waivers\": {}", render_waiver_census(a));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::lex_rel_path;

    fn analyze_one(path: &str, src: &str) -> Analysis {
        analyze(&[lex_rel_path(path, src)])
    }

    #[test]
    fn trailing_waiver_covers_its_line() {
        let a = analyze_one(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap; // audit-allow(no-siphash): test of trailing waivers\n",
        );
        assert_eq!(a.findings.len(), 1);
        assert!(a.findings[0].waived);
        assert_eq!(a.unwaivered(), 0);
        assert!(a.unused_waivers.is_empty());
    }

    #[test]
    fn standalone_waiver_covers_next_code_line_past_comments() {
        let a = analyze_one(
            "crates/sim/src/x.rs",
            "// audit-allow(no-unchecked-panic): invariant xyz holds by construction\n\
             // SAFETY-adjacent prose explaining xyz.\n\
             fn f() { x.unwrap(); }\n",
        );
        assert_eq!(a.unwaivered(), 0);
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let a = analyze_one(
            "crates/sim/src/x.rs",
            "// audit-allow(no-siphash): nothing here actually violates\nfn f() {}\n",
        );
        assert_eq!(a.unwaivered(), 1);
        assert_eq!(a.findings[0].finding.rule, "unused-waiver");
    }

    #[test]
    fn waiver_without_reason_is_malformed() {
        for bad in [
            "// audit-allow(no-siphash)\nuse std::collections::HashMap;\n",
            "// audit-allow(no-siphash):\nuse std::collections::HashMap;\n",
            "// audit-allow(): because\nuse std::collections::HashMap;\n",
            "// audit-allow(not-a-rule): because\nuse std::collections::HashMap;\n",
        ] {
            let a = analyze_one("crates/sim/src/x.rs", bad);
            assert!(
                a.findings
                    .iter()
                    .any(|j| j.finding.rule == "malformed-waiver" && !j.waived),
                "expected malformed-waiver for {bad:?}"
            );
            // The underlying violation stays unwaivered too.
            assert!(a.unwaivered() >= 2, "for {bad:?}");
        }
    }

    #[test]
    fn multi_rule_waiver() {
        let a = analyze_one(
            "crates/sim/src/x.rs",
            "// audit-allow(no-siphash, no-unchecked-panic): both on one line for a reason\n\
             fn f() { let m = std::collections::HashMap::new(); m.get(&1).unwrap(); }\n",
        );
        assert_eq!(a.unwaivered(), 0, "{:?}", a.findings);
    }

    #[test]
    fn file_anchored_waiver_matches_anywhere() {
        let a = analyze_one(
            "crates/serve/src/main.rs",
            "fn main() {\n\
             // audit-allow(forbid-unsafe): signal handler registration, see SAFETY\n\
             unsafe { sig(); }\n\
             }\n",
        );
        // Both the missing-attribute finding and the unsafe site are
        // covered by the one waiver.
        assert_eq!(a.unwaivered(), 0, "{:?}", a.findings);
        assert_eq!(a.findings.len(), 2);
    }

    #[test]
    fn census_fragment_is_embedded_in_full_json() {
        let a = analyze_one(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap; // audit-allow(no-siphash): census embedding check\n",
        );
        let json = render_json(&a);
        let census = render_waiver_census(&a);
        assert!(json.contains(&census));
    }
}
