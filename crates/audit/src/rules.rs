//! The rule catalog.
//!
//! Every rule encodes a determinism or bit-exactness invariant the
//! repo's headline claims rest on (byte-identical serial-vs-batch
//! stats, thread-count-invariant report JSON, content-addressed cache
//! safety). Each is documented with the invariant it protects; the
//! README's "Static guarantees" section is generated from the same
//! table.

use crate::scan::SourceFile;

/// Crates that are part of the simulation engine proper: anything in
/// them can leak into reported statistics, so the strictest rules
/// apply. `bench` (measurement harness), `serve` (daemon I/O), the
/// vendored `rand`/`proptest` stand-ins, and `audit` itself are not
/// engine crates.
pub const ENGINE_CRATES: &[&str] = &["baselines", "cfg", "core", "model", "sim", "trace", "uarch"];

/// One catalog entry.
pub struct RuleInfo {
    /// Rule id — the name a waiver must use.
    pub id: &'static str,
    /// One-line statement of the invariant the rule protects.
    pub summary: &'static str,
}

/// The checkable rules, in report order. `unused-waiver` and
/// `malformed-waiver` are meta-findings produced by waiver matching
/// itself and cannot be waived.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-siphash",
        summary: "engine crates must not use default-hasher HashMap/HashSet \
                  (SipHash is per-process random: iteration order and probe cost \
                  vary run to run); use fe_uarch::fasthash::{FastMap, FastSet} or \
                  BTreeMap/BTreeSet where iteration order is observable",
    },
    RuleInfo {
        id: "no-wallclock",
        summary: "Instant::now/SystemTime::now only in crates/bench — wall-clock \
                  lives ONLY in BENCH_*.json; deterministic report JSON must never \
                  depend on host timing",
    },
    RuleInfo {
        id: "no-unchecked-panic",
        summary: "no bare .unwrap() or panic! in engine-crate non-test code; \
                  use .expect(\"<the invariant>\") or waive with the invariant named",
    },
    RuleInfo {
        id: "forbid-unsafe",
        summary: "every compilation-unit root carries #![forbid(unsafe_code)], and \
                  no unsafe blocks exist, outside explicitly waived sites with a \
                  SAFETY argument",
    },
    RuleInfo {
        id: "no-env-in-engine",
        summary: "std::env reads (env::var/var_os) only in bench/serve — engine \
                  behavior is a pure function of the typed experiment spec; escape \
                  hatches need a waiver naming the knob",
    },
    RuleInfo {
        id: "float-state",
        summary: "no f32/f64 fields in *Stats structs — accumulated simulator \
                  state is exact integer counters; floats belong in derived \
                  metrics computed at report time",
    },
];

/// `true` when `id` names a catalog rule (the only ids waivers may
/// name).
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    /// 1-based; file-anchored findings report line 1.
    pub line: usize,
    pub message: String,
    /// File-anchored findings (a missing crate attribute) are waived
    /// by a matching waiver anywhere in the file, not just adjacent.
    pub file_anchored: bool,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whole-word occurrence check: `word` not embedded in an identifier.
fn contains_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + word.len()..].chars().next();
        let after_ok = !after.map(is_ident).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

fn excerpt(raw: &str) -> String {
    let t = raw.trim();
    if t.chars().count() > 90 {
        let cut: String = t.chars().take(87).collect();
        format!("{cut}...")
    } else {
        t.to_string()
    }
}

/// Runs every rule over one lexed file.
pub fn check_file(f: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let engine = ENGINE_CRATES.contains(&f.ctx.crate_name.as_str());
    let mut push = |rule: &'static str, line: usize, message: String, file_anchored: bool| {
        findings.push(Finding {
            rule,
            file: f.ctx.rel_path.clone(),
            line,
            message,
            file_anchored,
        });
    };

    // float-state needs a little cross-line state: are we inside the
    // body of a `struct …Stats {`?
    let mut stats_struct_depth: i32 = 0;

    for line in &f.lines {
        let code = line.code.as_str();

        if engine && (contains_word(code, "HashMap") || contains_word(code, "HashSet")) {
            push(
                "no-siphash",
                line.number,
                format!("default-hasher map in engine crate: {}", excerpt(&line.raw)),
                false,
            );
        }

        if f.ctx.crate_name != "bench"
            && (code.contains("Instant::now") || code.contains("SystemTime::now"))
        {
            push(
                "no-wallclock",
                line.number,
                format!(
                    "wall-clock read outside crates/bench: {}",
                    excerpt(&line.raw)
                ),
                false,
            );
        }

        if engine && !line.is_test && (code.contains(".unwrap()") || contains_word(code, "panic!"))
        {
            push(
                "no-unchecked-panic",
                line.number,
                format!(
                    "unchecked panic path in engine code: {}",
                    excerpt(&line.raw)
                ),
                false,
            );
        }

        if contains_word(code, "unsafe") {
            push(
                "forbid-unsafe",
                line.number,
                format!("unsafe code: {}", excerpt(&line.raw)),
                false,
            );
        }

        // `env!` / `option_env!` are compile-time and deterministic
        // per build; only runtime reads are findings.
        if engine && code.contains("env::var") {
            push(
                "no-env-in-engine",
                line.number,
                format!("environment read in engine crate: {}", excerpt(&line.raw)),
                false,
            );
        }

        // float-state: track `struct <Name>Stats` bodies by brace
        // depth (rustfmt-shaped code; fields are one per line).
        if stats_struct_depth > 0 {
            if code.contains(": f32") || code.contains(": f64") {
                push(
                    "float-state",
                    line.number,
                    format!("float field in a *Stats struct: {}", excerpt(&line.raw)),
                    false,
                );
            }
            stats_struct_depth += braces(code);
            if stats_struct_depth <= 0 {
                stats_struct_depth = 0;
            }
        } else if engine && declares_stats_struct(code) {
            let depth = braces(code);
            if depth > 0 {
                stats_struct_depth = depth;
            } else if code.contains(": f32") || code.contains(": f64") {
                // Single-line struct declaration.
                push(
                    "float-state",
                    line.number,
                    format!("float field in a *Stats struct: {}", excerpt(&line.raw)),
                    false,
                );
            }
        }
    }

    // File-anchored: compilation-unit roots must forbid unsafe code.
    if f.ctx.is_crate_root {
        let has_forbid = f
            .lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        if !has_forbid {
            push(
                "forbid-unsafe",
                1,
                "crate root missing #![forbid(unsafe_code)]".to_string(),
                true,
            );
        }
    }

    findings
}

/// Net brace balance of one code line.
fn braces(code: &str) -> i32 {
    code.chars()
        .map(|c| match c {
            '{' => 1,
            '}' => -1,
            _ => 0,
        })
        .sum()
}

/// Does this line open a struct whose name ends in `Stats`?
fn declares_stats_struct(code: &str) -> bool {
    let Some(pos) = code.find("struct ") else {
        return false;
    };
    // `struct` must be a word (not e.g. `my_struct `).
    if pos > 0 && is_ident(code[..pos].chars().next_back().unwrap_or(' ')) {
        return false;
    }
    let rest = code[pos + "struct ".len()..].trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    name.ends_with("Stats")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::lex_rel_path;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        check_file(&lex_rel_path(path, src))
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("type FastMapHashMapLike = ();", "HashMap"));
        assert!(!contains_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(contains_word("x = panic!(\"\")", "panic!"));
        assert!(!contains_word("should_panic", "panic!"));
    }

    #[test]
    fn engine_scoping() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_hit("crates/sim/src/x.rs", src), vec!["no-siphash"]);
        assert!(rules_hit("crates/serve/src/x.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_everywhere_but_bench() {
        let src = "let t = Instant::now();\n";
        assert_eq!(
            rules_hit("crates/serve/src/x.rs", src),
            vec!["no-wallclock"]
        );
        assert!(rules_hit("crates/bench/src/bin/perf.rs", src)
            .iter()
            .all(|r| *r != "no-wallclock"));
    }

    #[test]
    fn panic_rule_skips_tests_and_expect() {
        let live = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_hit("crates/sim/src/x.rs", live),
            vec!["no-unchecked-panic"]
        );
        assert!(rules_hit("crates/uarch/tests/t.rs", live).is_empty());
        let tested = "fn f() {}\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\n";
        assert!(rules_hit("crates/sim/src/x.rs", tested).is_empty());
        assert!(rules_hit("crates/sim/src/x.rs", "x.expect(\"inv\");\n").is_empty());
        assert!(rules_hit("crates/sim/src/x.rs", "x.unwrap_or(0);\n").is_empty());
    }

    #[test]
    fn float_state_tracks_stats_structs_only() {
        let bad = "pub struct FooStats {\n    pub a: u64,\n    pub b: f64,\n}\n";
        assert_eq!(rules_hit("crates/model/src/x.rs", bad), vec!["float-state"]);
        let derived = "pub struct Metrics {\n    pub b: f64,\n}\n";
        assert!(rules_hit("crates/model/src/x.rs", derived).is_empty());
        let method = "impl FooStats {\n    pub fn ipc(&self) -> f64 { 0.0 }\n}\n";
        assert!(rules_hit("crates/model/src/x.rs", method).is_empty());
    }

    #[test]
    fn crate_roots_need_forbid() {
        assert_eq!(
            rules_hit("crates/model/src/lib.rs", "pub fn x() {}\n"),
            vec!["forbid-unsafe"]
        );
        assert!(rules_hit(
            "crates/model/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn x() {}\n"
        )
        .is_empty());
        // Non-root files don't need the attribute.
        assert!(rules_hit("crates/model/src/other.rs", "pub fn x() {}\n").is_empty());
    }
}
