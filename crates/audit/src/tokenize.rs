//! Comment/string-literal-aware line splitting.
//!
//! The rule catalog matches *code*, and waivers live in *comments* —
//! so every source line is split into the two streams before any rule
//! runs. A full Rust lexer would be overkill (and a dependency); this
//! is a line-at-a-time state machine that understands exactly the
//! constructs that can smuggle rule patterns across the code/comment
//! boundary:
//!
//! * line comments (`//`, `///`, `//!`),
//! * block comments (`/* */`, nested, possibly spanning lines),
//! * string and byte-string literals (escapes, spanning lines),
//! * raw strings (`r"…"`, `r#"…"#`, any hash depth),
//! * char literals (`'x'`, `'\n'`, `'\u{…}'`) versus lifetimes (`'a`).
//!
//! String-literal *contents* are blanked from the code stream (the
//! delimiting quotes remain), so a doc string mentioning `HashMap` or
//! `panic!` never trips a rule — and a waiver marker inside a string
//! never counts as a waiver.

/// Cross-line lexer state: whether the next line starts inside a
/// block comment, a string, or plain code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LexState {
    /// Plain code.
    #[default]
    Code,
    /// Inside a block comment, `depth` levels deep (they nest).
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(u8),
}

/// One source line split into its code and comment text.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SplitLine {
    /// The line with comments removed and string contents blanked.
    pub code: String,
    /// The concatenated comment text on the line.
    pub comment: String,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Splits `raw` (one line, no terminator) into code and comment,
/// carrying `state` across lines.
pub fn split_line(state: &mut LexState, raw: &str) -> SplitLine {
    let mut out = SplitLine::default();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match *state {
            LexState::BlockComment(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    *state = match depth {
                        0 | 1 => LexState::Code,
                        d => LexState::BlockComment(d - 1),
                    };
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    *state = LexState::BlockComment(depth + 1);
                    out.comment.push_str("/*");
                    i += 2;
                } else {
                    out.comment.push(chars[i]);
                    i += 1;
                }
            }
            LexState::Str => {
                match chars[i] {
                    '\\' => i += 2, // escape: skip the escaped char too
                    '"' => {
                        *state = LexState::Code;
                        out.code.push('"');
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            LexState::RawStr(hashes) => {
                let closes = chars[i] == '"'
                    && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    *state = LexState::Code;
                    out.code.push('"');
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            LexState::Code => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line, minus the
                    // doc-comment sigils, is comment text.
                    let mut rest: &str = &chars[i + 2..].iter().collect::<String>();
                    rest = rest.strip_prefix(['/', '!']).unwrap_or(rest);
                    out.comment.push_str(rest);
                    break;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *state = LexState::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw (byte) string start: r"…", r#"…"#, br"…".
                let raw_at = if c == 'r' {
                    Some(i)
                } else if c == 'b' && chars.get(i + 1) == Some(&'r') {
                    Some(i + 1)
                } else {
                    None
                };
                if let Some(r) = raw_at {
                    let prev_ident = i > 0 && is_ident(chars[i - 1]);
                    let mut j = r + 1;
                    while chars.get(j) == Some(&'#') {
                        j += 1;
                    }
                    if !prev_ident && chars.get(j) == Some(&'"') {
                        *state = LexState::RawStr((j - r - 1) as u8);
                        out.code.push('"');
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    *state = LexState::Str;
                    out.code.push('"');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    let prev_ident = i > 0 && is_ident(chars[i - 1]);
                    // After an identifier (`x'` can't start a literal
                    // in Rust, but `'` in `&'a` never follows one
                    // either) still treat as potential literal start.
                    let _ = prev_ident;
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escape literal: scan to the closing quote.
                        out.code.push_str("''");
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        // Plain one-char literal.
                        out.code.push_str("''");
                        i += 3;
                        continue;
                    }
                    // Lifetime (or label): keep the tick as code.
                    out.code.push('\'');
                    i += 1;
                    continue;
                }
                out.code.push(c);
                i += 1;
            }
        }
    }
    // A string literal cannot actually continue past a line end unless
    // it is a multi-line string; both plain and raw strings may.
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(line: &str) -> String {
        split_line(&mut LexState::default(), line).code
    }

    fn comment(line: &str) -> String {
        split_line(&mut LexState::default(), line).comment
    }

    #[test]
    fn line_comments_are_stripped() {
        assert_eq!(code("let x = 1; // HashMap here"), "let x = 1; ");
        assert_eq!(comment("let x = 1; // HashMap here"), " HashMap here");
        assert_eq!(comment("/// doc with panic!()"), " doc with panic!()");
        assert_eq!(comment("//! inner doc"), " inner doc");
    }

    #[test]
    fn string_contents_are_blanked() {
        assert_eq!(code(r#"let s = "HashMap::new()";"#), r#"let s = "";"#);
        assert_eq!(code(r#"let s = "esc \" quote";"#), r#"let s = "";"#);
        assert_eq!(
            code(r##"let s = r#"raw "HashMap" here"#;"##),
            r#"let s = "";"#
        );
        assert_eq!(code(r#"let b = b"panic!";"#), r#"let b = b"";"#);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(
            code("let c = '\"'; let d = 'x';"),
            "let c = ''; let d = '';"
        );
        assert_eq!(code(r"let c = '\n';"), "let c = '';");
        assert_eq!(code("fn f<'a>(x: &'a str) {}"), "fn f<'a>(x: &'a str) {}");
        // A quote inside a char literal must not open a string.
        assert_eq!(
            code("if c == '\"' { x(\"HashMap\") }"),
            "if c == '' { x(\"\") }"
        );
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let mut st = LexState::default();
        let a = split_line(&mut st, "code(); /* start HashMap");
        assert_eq!(a.code, "code(); ");
        assert_eq!(st, LexState::BlockComment(1));
        let b = split_line(&mut st, "still /* nested */ comment");
        assert!(b.code.is_empty());
        assert_eq!(st, LexState::BlockComment(1));
        let c = split_line(&mut st, "done */ tail_code();");
        assert_eq!(c.code, " tail_code();");
        assert_eq!(st, LexState::Code);
        assert!(a.comment.contains("HashMap"));
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let mut st = LexState::default();
        let a = split_line(&mut st, r#"let s = "first"#);
        assert_eq!(a.code, r#"let s = ""#);
        assert_eq!(st, LexState::Str);
        let b = split_line(&mut st, r#"second HashMap"; after();"#);
        assert_eq!(b.code, r#""; after();"#);
        assert_eq!(st, LexState::Code);
    }

    #[test]
    fn raw_string_hash_depth_matters() {
        let mut st = LexState::default();
        let a = split_line(&mut st, r###"let s = r##"x "# y"###);
        assert_eq!(a.code, r#"let s = ""#);
        assert_eq!(st, LexState::RawStr(2));
        let b = split_line(&mut st, r###"end"## tail"###);
        assert_eq!(b.code, r#"" tail"#);
        assert_eq!(st, LexState::Code);
    }

    #[test]
    fn waiver_marker_in_string_is_not_a_comment() {
        let s = split_line(
            &mut LexState::default(),
            r#"let m = "audit-allow(no-siphash): not real";"#,
        );
        assert!(s.comment.is_empty());
    }
}
