#![forbid(unsafe_code)]
//! # fe-audit — workspace determinism/bit-exactness linter
//!
//! Every headline claim this repo makes — byte-identical
//! serial-vs-batch statistics, thread-count-invariant `SweepReport`
//! JSON, content-addressed cache hits that are provably safe to serve,
//! key-verified TAGE retire-share replay — rests on determinism
//! invariants. This crate turns those invariants from tribal knowledge
//! into a CI gate: a std-only static scanner (comment/string-aware
//! line tokenizer, no dependencies) that walks the workspace and
//! enforces the rule catalog in [`rules::RULES`].
//!
//! Violations are waived per site with a comment of the form
//!
//! ```text
//! // audit-allow(<rule>[, <rule>...]): <reason naming the invariant>
//! ```
//!
//! where the reason is mandatory and unused waivers are themselves
//! findings. The `fe-audit` binary prints a deterministic table,
//! writes machine-readable JSON (`BENCH_audit.json`), and exits
//! nonzero on any unwaivered finding — see the README's "Static
//! guarantees" section for the workflow.

pub mod report;
pub mod rules;
pub mod scan;
pub mod tokenize;

pub use report::{analyze, render_json, render_table, render_waiver_census, Analysis};
pub use rules::{check_file, Finding, RuleInfo, ENGINE_CRATES, RULES};
pub use scan::{find_workspace_root, lex_rel_path, lex_source, walk_workspace, SourceFile};
