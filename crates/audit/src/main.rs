#![forbid(unsafe_code)]
//! The `fe-audit` binary: audit the workspace, print the report,
//! optionally emit JSON and check the committed waiver-census
//! baseline.
//!
//! ```text
//! fe-audit [--root DIR] [--json PATH] [--baseline PATH] [--list-waivers]
//! ```
//!
//! * `--root DIR` — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` with a `[workspace]` table).
//! * `--json PATH` — write the machine-readable report there.
//! * `--baseline PATH` — require the current waiver census to appear
//!   verbatim in that file (the committed `BENCH_audit.json`): adding,
//!   removing, or editing a waiver without refreshing the baseline in
//!   the same commit fails the audit.
//! * `--list-waivers` — print the waiver census after the table.
//!
//! Exit code 0 when clean, 1 on unwaivered findings or a stale
//! baseline, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

use fe_audit::{analyze, render_json, render_table, render_waiver_census, walk_workspace};

/// stdout write that shrugs off a closed pipe (`fe-audit | head`)
/// instead of panicking like `print!` would.
fn say(text: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fe-audit: {msg}");
    eprintln!("usage: fe-audit [--root DIR] [--json PATH] [--baseline PATH] [--list-waivers]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut list_waivers = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a path"),
            },
            "--list-waivers" => list_waivers = true,
            "--help" | "-h" => {
                println!(
                    "usage: fe-audit [--root DIR] [--json PATH] [--baseline PATH] [--list-waivers]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| fe_audit::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no workspace root found (pass --root)"),
    };

    let files = match walk_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fe-audit: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let analysis = analyze(&files);
    say(&render_table(&analysis));

    if list_waivers {
        say("\nwaiver census:\n");
        for w in &analysis.waivers {
            say(&format!(
                "  {}:{} [{}] {}\n",
                w.file,
                w.line,
                w.rules.join(","),
                w.reason
            ));
        }
    }

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, render_json(&analysis)) {
            eprintln!("fe-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut failed = false;
    if analysis.unwaivered() > 0 {
        eprintln!(
            "\nfe-audit: FAIL — {} unwaivered finding(s); fix them or add \
             `audit-allow(<rule>): <reason>` waivers",
            analysis.unwaivered()
        );
        failed = true;
    }

    if let Some(path) = &baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let census = render_waiver_census(&analysis);
                if !text.contains(&census) {
                    eprintln!(
                        "\nfe-audit: FAIL — waiver census changed but the baseline {} was \
                         not updated in the same commit; refresh it with \
                         `cargo run -p fe-audit -- --json {}`",
                        path.display(),
                        path.display()
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("fe-audit: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        say("\nfe-audit: OK\n");
        ExitCode::SUCCESS
    }
}
