//! Workspace walking and per-file lexing.
//!
//! The audit covers every Rust source the workspace builds: the root
//! package's `src/`, `tests/`, and `examples/`, plus each member
//! crate's `src/`, `tests/`, and `benches/`. Directories named
//! `fixtures` are skipped — they hold test inputs (including this
//! crate's own deliberately-violating audit fixtures), not workspace
//! code — as is `target/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::tokenize::{split_line, LexState};

/// Where a file sits in the workspace — everything the rules need to
/// decide which checks apply.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated (stable across hosts).
    pub rel_path: String,
    /// Member crate short name (`sim`, `uarch`, …) or `root` for the
    /// umbrella package.
    pub crate_name: String,
    /// `true` for compilation-unit roots (`src/lib.rs`, `src/main.rs`,
    /// `src/bin/*.rs`) — the files that must carry crate attributes.
    pub is_crate_root: bool,
    /// `true` for files under `tests/`, `benches/`, or `examples/`.
    pub is_test_file: bool,
}

/// One lexed source line.
#[derive(Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Code text (comments removed, string contents blanked).
    pub code: String,
    /// Comment text.
    pub comment: String,
    /// Raw line, for finding excerpts.
    pub raw: String,
    /// `true` inside test code: a test file, or at/after the file's
    /// first `#[cfg(test)]`.
    pub is_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    pub ctx: FileCtx,
    pub lines: Vec<Line>,
}

/// Lexes `text` under `ctx` into per-line code/comment streams.
pub fn lex_source(ctx: FileCtx, text: &str) -> SourceFile {
    let mut state = LexState::default();
    let mut in_tests = ctx.is_test_file;
    let lines = text
        .lines()
        .enumerate()
        .map(|(idx, raw)| {
            let split = split_line(&mut state, raw);
            if split.code.contains("#[cfg(test)]") {
                in_tests = true;
            }
            Line {
                number: idx + 1,
                code: split.code,
                comment: split.comment,
                raw: raw.to_string(),
                is_test: in_tests,
            }
        })
        .collect();
    SourceFile { ctx, lines }
}

/// Classifies and lexes one workspace file given its relative path.
pub fn lex_rel_path(rel_path: &str, text: &str) -> SourceFile {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
        .to_string();
    let in_crate = rel_path
        .strip_prefix(&format!("crates/{crate_name}/"))
        .unwrap_or(rel_path);
    let is_crate_root = in_crate == "src/lib.rs"
        || in_crate == "src/main.rs"
        || (in_crate.starts_with("src/bin/")
            && in_crate.ends_with(".rs")
            && in_crate["src/bin/".len()..].matches('/').count() == 0);
    let is_test_file = in_crate.starts_with("tests/")
        || in_crate.starts_with("benches/")
        || in_crate.starts_with("examples/");
    lex_source(
        FileCtx {
            rel_path: rel_path.to_string(),
            crate_name,
            is_crate_root,
            is_test_file,
        },
        text,
    )
}

fn collect_rs(dir: &Path, acc: &mut Vec<PathBuf>) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&path, acc)?;
        } else if name.ends_with(".rs") {
            acc.push(path);
        }
    }
    Ok(())
}

/// Walks the workspace at `root` and lexes every audited source file,
/// sorted by relative path (deterministic output order).
pub fn walk_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for dir in ["src", "tests", "examples"] {
        collect_rs(&root.join(dir), &mut paths)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for dir in ["src", "tests", "benches"] {
                collect_rs(&member.join(dir), &mut paths)?;
            }
        }
    }
    let mut rels: Vec<String> = paths
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rels.sort();
    rels.dedup();
    rels.iter()
        .map(|rel| {
            let text =
                fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
            Ok(lex_rel_path(rel, &text))
        })
        .collect()
}

/// Finds the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_paths() {
        let f = lex_rel_path("crates/sim/src/engine.rs", "fn x() {}\n");
        assert_eq!(f.ctx.crate_name, "sim");
        assert!(!f.ctx.is_crate_root);
        assert!(!f.ctx.is_test_file);

        let f = lex_rel_path("crates/bench/src/bin/perf.rs", "fn main() {}\n");
        assert!(f.ctx.is_crate_root);

        let f = lex_rel_path("crates/uarch/tests/props.rs", "");
        assert!(f.ctx.is_test_file);

        let f = lex_rel_path("tests/integration.rs", "");
        assert_eq!(f.ctx.crate_name, "root");
        assert!(f.ctx.is_test_file);

        let f = lex_rel_path("src/lib.rs", "");
        assert!(f.ctx.is_crate_root);
    }

    #[test]
    fn cfg_test_marks_the_tail_of_a_file() {
        let f = lex_rel_path(
            "crates/sim/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\n",
        );
        assert!(!f.lines[0].is_test);
        assert!(f.lines[1].is_test);
        assert!(f.lines[3].is_test);
    }
}
