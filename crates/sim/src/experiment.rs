//! The `Experiment` session API: one builder for every (workload ×
//! scheme) sweep in the evaluation.
//!
//! The paper's figures are grids of independent cells, so the sweep is
//! embarrassingly parallel: [`Experiment::run`] builds each workload's
//! program once, fans the cells out across scoped worker threads, and
//! reassembles a [`SweepReport`] in deterministic (workload, scheme)
//! order regardless of completion order. Same seed ⇒ byte-identical
//! report JSON at any thread count.
//!
//! Sweeps are *trace-driven*, matching the paper's methodology (§5.1):
//! each workload's retired stream is recorded once (an `fe-trace`
//! recording of the executor walk, sized by
//! [`RunLength::trace_instrs`]) and replayed into every scheme cell,
//! so an N-scheme sweep performs one walk per workload instead of N —
//! with statistics bit-identical to live execution. Multi-context
//! mixes stay live (a context's stream length depends on its
//! neighbors' interference, so there is no fixed stream to record).
//! [`Experiment::trace_dir`] additionally persists the recordings,
//! letting repeated sweeps skip the walk entirely.
//!
//! ```no_run
//! use fe_cfg::workloads;
//! use fe_model::MachineConfig;
//! use fe_sim::{Experiment, RunLength, SchemeSpec};
//!
//! let report = Experiment::new(MachineConfig::table3())
//!     .workloads(workloads::all())
//!     .schemes([SchemeSpec::NoPrefetch, SchemeSpec::boomerang(), SchemeSpec::shotgun()])
//!     .len(RunLength::DEFAULT)
//!     .seed(0x5407)
//!     .threads(8)
//!     .run();
//! println!("{:.3}", report.cell("nutch", &SchemeSpec::shotgun()).metrics.speedup.unwrap());
//! report.write_json("BENCH_headline.json").unwrap();
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use fe_cfg::{MixSpec, Program, WorkloadSpec};
use fe_model::stats::{coverage, speedup};
use fe_model::{MachineConfig, SimStats};
use fe_trace::{ProgramFingerprint, Trace};
use shotgun::{RegionPolicy, ShotgunConfig};

use crate::cache::{CellKey, CellStore, CellValue};
use crate::json::{parse, Json};
use crate::multi::MultiSimulator;
use crate::runner::{
    run_scheme_replayed, run_scheme_sampled_replayed_snapshot, RunLength, SchemeSpec,
};
use crate::sampling::{CellSampling, MeanCi, SamplingSpec};
use crate::snapshot::SnapshotStore;

/// Process-wide count of sweep cells actually *simulated* (cache hits
/// do not count; a consolidation mix counts one per member cell).
/// Probe for tests asserting zero-recompute resume behavior;
/// meaningful only when the probing test runs in its own process.
static CELLS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Sweep cells simulated so far in this process (tests).
#[doc(hidden)]
pub fn cells_executed() -> u64 {
    CELLS_EXECUTED.load(Ordering::Relaxed)
}

/// A sweep stopped by its cancel flag before every cell completed (see
/// [`Experiment::cancel_flag`]). Cells finished before the stop were
/// still written to the configured [`CellStore`], so a re-run resumes
/// from them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interrupted {
    /// Jobs that completed before the sweep stopped.
    pub completed: usize,
    /// Total jobs in the sweep.
    pub total: usize,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep interrupted after {}/{} jobs",
            self.completed, self.total
        )
    }
}

impl std::error::Error for Interrupted {}

/// Identifies a workload inside a sweep (its spec name).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkloadId(pub String);

impl WorkloadId {
    /// The name as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for WorkloadId {
    fn from(name: &str) -> Self {
        WorkloadId(name.to_string())
    }
}

impl PartialEq<str> for WorkloadId {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

/// Passed to the progress callback after each completed cell.
#[derive(Clone, Debug)]
pub struct ProgressEvent {
    /// Cells finished so far (including this one).
    pub completed: usize,
    /// Total cells in the sweep.
    pub total: usize,
    /// Workload of the cell that just finished. A multi-context job
    /// reports its *mix* name here (the whole mix completes at once);
    /// its report cells are keyed by the member ids
    /// ([`MixSpec::member_id`](fe_cfg::MixSpec::member_id)).
    pub workload: WorkloadId,
    /// Scheme label of the cell that just finished.
    pub scheme: String,
    /// Whether the cell was served from the configured [`CellStore`]
    /// instead of being simulated.
    pub cached: bool,
    /// When the cell ran on the [batch engine](crate::batch), the id of
    /// its batch group (cells sharing one decode pass share the id);
    /// `None` for serial, cached, and mix cells. Additive: streaming
    /// clients that predate it see the field as simply absent.
    pub batch_id: Option<u64>,
}

type ProgressFn = Box<dyn Fn(&ProgressEvent) + Send + Sync>;

/// Builder for a (workload × scheme) sweep session. Cells may be
/// single-context (one workload, private memory) or multi-context
/// ([`MixSpec`] — every member ticking round-robin over one shared
/// LLC/NoC); a mix contributes one report cell per member, keyed by
/// [`MixSpec::member_id`].
pub struct Experiment {
    machine: MachineConfig,
    workloads: Vec<WorkloadSpec>,
    mixes: Vec<MixSpec>,
    schemes: Vec<SchemeSpec>,
    len: RunLength,
    seed: u64,
    threads: usize,
    baseline: Option<SchemeSpec>,
    progress: Option<ProgressFn>,
    trace_dir: Option<PathBuf>,
    sampling: Option<SamplingSpec>,
    cell_store: Option<Arc<dyn CellStore>>,
    snapshots: Option<Arc<SnapshotStore>>,
    cancel: Option<Arc<AtomicBool>>,
    batch: bool,
}

impl Experiment {
    /// Starts a sweep on `machine` with defaults: no workloads or
    /// schemes yet, [`RunLength::DEFAULT`], seed 0, one worker per
    /// available core, and `NoPrefetch` as the baseline when present.
    pub fn new(machine: MachineConfig) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Experiment {
            machine,
            workloads: Vec::new(),
            mixes: Vec::new(),
            schemes: Vec::new(),
            len: RunLength::DEFAULT,
            seed: 0,
            threads,
            baseline: None,
            progress: None,
            trace_dir: None,
            sampling: None,
            cell_store: None,
            snapshots: None,
            cancel: None,
            batch: true,
        }
    }

    /// Appends workloads to the sweep.
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(specs);
        self
    }

    /// Appends one workload.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workloads.push(spec);
        self
    }

    /// Appends a multi-context consolidation mix: each scheme gets one
    /// [`MultiSimulator`] run of the whole mix over a shared memory
    /// system, producing one cell per member (context `i` is seeded
    /// with [`derive_ctx_seed`](crate::derive_ctx_seed)`(seed, i)`).
    pub fn mix(mut self, mix: MixSpec) -> Self {
        self.mixes.push(mix);
        self
    }

    /// Appends several consolidation mixes.
    pub fn mixes(mut self, mixes: impl IntoIterator<Item = MixSpec>) -> Self {
        self.mixes.extend(mixes);
        self
    }

    /// Appends schemes to the sweep.
    pub fn schemes(mut self, specs: impl IntoIterator<Item = SchemeSpec>) -> Self {
        self.schemes.extend(specs);
        self
    }

    /// Appends one scheme.
    pub fn scheme(mut self, spec: SchemeSpec) -> Self {
        self.schemes.push(spec);
        self
    }

    /// Sets warmup/measure instruction counts for every cell.
    pub fn len(mut self, len: RunLength) -> Self {
        self.len = len;
        self
    }

    /// Sets the executor seed shared by every cell (every scheme sees
    /// the same retired instruction stream).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count. `1` runs cells inline; results
    /// are identical at any value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the baseline scheme used for derived speedup/coverage
    /// metrics (default: `NoPrefetch`, when it is in the scheme list).
    pub fn baseline(mut self, spec: SchemeSpec) -> Self {
        self.baseline = Some(spec);
        self
    }

    /// Installs a callback invoked after every completed cell — the
    /// long-sweep progress hook. Called from worker threads.
    pub fn on_progress(mut self, f: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Persists each workload's recorded trace under `dir` (created if
    /// missing) and reuses any compatible recording found there —
    /// matching seed and program fingerprint, and at least as long as
    /// this sweep needs. The figure binaries plumb `SHOTGUN_TRACE_DIR`
    /// here, so repeated sweeps skip the executor walk entirely.
    pub fn trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Runs every cell in sampled mode (interval sampling with
    /// functional warming — see the [`sampling`](crate::sampling)
    /// module docs): `len.warmup` is functionally warmed and
    /// `len.measure` covered by alternating fast-forward and timed
    /// measurement, making paper-scale instruction counts practical.
    /// Cells carry a [`CellSampling`] summary (interval count, per-
    /// interval mean ± 95% CI) next to their aggregate statistics, and
    /// the report JSON grows matching `sampling` fields. Reports stay
    /// byte-identical at any thread count.
    ///
    /// Consolidation mixes are not supported in sampled mode (their
    /// streams are interference-coupled and cannot fast-forward
    /// independently); `run` panics on the combination.
    pub fn sampling(mut self, spec: SamplingSpec) -> Self {
        self.sampling = Some(spec);
        self
    }

    /// Installs a content-addressed result cache (see the
    /// [`cache`](crate::cache) module): before simulating each
    /// single-workload cell the sweep consults the store by
    /// [`CellKey`], and every freshly simulated cell is written back.
    /// A fully cached workload skips its executor walk and trace
    /// recording entirely. Consolidation mixes always simulate.
    pub fn cell_store(mut self, store: Arc<dyn CellStore>) -> Self {
        self.cell_store = Some(store);
        self
    }

    /// Installs a warmed-state snapshot store (see the
    /// [`snapshot`](crate::snapshot) module): sampled cells capture
    /// their post-warmup microarchitectural state on first run and
    /// restore it on repeats, skipping functional warming. Statistics
    /// are bit-identical either way. Ignored for full-detail sweeps
    /// (their warmup runs through the timed pipeline).
    pub fn snapshots(mut self, store: Arc<SnapshotStore>) -> Self {
        self.snapshots = Some(store);
        self
    }

    /// Installs a cooperative cancel flag: once set, workers finish the
    /// cells already in flight (persisting them to the cell store) and
    /// stop claiming new ones, making [`Self::try_run`] return
    /// [`Interrupted`]. The graceful-shutdown hook for long sweeps.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Enables or disables the [batch engine](crate::batch) (default:
    /// enabled). When enabled, a workload's uncached scheme cells run
    /// as one shared-decode batch — statistics stay byte-identical
    /// either way, so this knob exists for the perf harness's
    /// batch-vs-serial comparison and as an escape hatch.
    pub fn batch(mut self, enabled: bool) -> Self {
        self.batch = enabled;
        self
    }

    /// Runs the sweep and derives per-cell metrics.
    ///
    /// Programs are built once per workload (and per mix member) and
    /// shared by reference; each single-context workload's retired
    /// stream is then recorded once and replayed into every scheme
    /// cell (see the module docs); cells fan out over scoped worker
    /// threads — a mix runs as one job whose contexts interleave
    /// deterministically, so reports are byte-identical at any thread
    /// count. Panics if the sweep is empty, if a configured baseline is
    /// not among the schemes, if two schemes share a display label, or
    /// if workload/mix names collide (which would make cells ambiguous
    /// in reports and JSON).
    pub fn run(self) -> SweepReport {
        self.try_run()
            // audit-allow(no-unchecked-panic): run() documents this panic — it only fires when a cancel flag tripped, and try_run is the typed alternative
            .unwrap_or_else(|i| panic!("Experiment::run: {i} (use try_run with a cancel flag)"))
    }

    /// Like [`Self::run`], but returns [`Interrupted`] instead of a
    /// report when the [cancel flag](Self::cancel_flag) stopped the
    /// sweep early. Completed cells were already persisted to the
    /// configured [`CellStore`], so re-running the same sweep resumes
    /// where it stopped.
    pub fn try_run(self) -> Result<SweepReport, Interrupted> {
        let Experiment {
            machine,
            workloads,
            mixes,
            schemes,
            len,
            seed,
            threads,
            baseline,
            progress,
            trace_dir,
            sampling,
            cell_store,
            snapshots,
            cancel,
            batch,
        } = self;
        assert!(
            !(workloads.is_empty() && mixes.is_empty()),
            "Experiment::run: no workloads configured"
        );
        assert!(
            !schemes.is_empty(),
            "Experiment::run: no schemes configured"
        );
        if let Some(spec) = &sampling {
            assert!(
                mixes.is_empty(),
                "Experiment::run: sampled mode does not support consolidation mixes \
                 (their streams are interference-coupled and cannot fast-forward independently)"
            );
            if let Err(e) = spec.validate() {
                // audit-allow(no-unchecked-panic): sweep-configuration contract — an invalid sampling spec is a caller bug caught before any cell runs
                panic!("Experiment::run: invalid sampling spec: {e}");
            }
        }

        let labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
        for (i, label) in labels.iter().enumerate() {
            assert!(
                !labels[..i].contains(label),
                "Experiment::run: duplicate scheme label `{label}`",
            );
        }
        for (i, wl) in workloads.iter().enumerate() {
            assert!(
                !workloads[..i].iter().any(|w| w.name == wl.name),
                "Experiment::run: duplicate workload name `{}` (rename one spec — \
                 cells are keyed by name)",
                wl.name,
            );
        }
        for (i, mix) in mixes.iter().enumerate() {
            assert!(
                !mixes[..i].iter().any(|m| m.name == mix.name),
                "Experiment::run: duplicate mix name `{}`",
                mix.name,
            );
            for id in mix.member_ids() {
                assert!(
                    !workloads.iter().any(|w| w.name == id),
                    "Experiment::run: workload name `{id}` collides with a mix member id",
                );
            }
        }
        let baseline = baseline.or_else(|| {
            schemes
                .contains(&SchemeSpec::NoPrefetch)
                .then_some(SchemeSpec::NoPrefetch)
        });
        let baseline_idx = baseline.as_ref().map(|b| {
            schemes
                .iter()
                .position(|s| s == b)
                .expect("Experiment::run: baseline scheme is not in the scheme list")
        });

        let programs = parallel_indexed(workloads.len(), threads, |i| workloads[i].build());
        // Mix member programs: build each *distinct* member spec once —
        // a homogeneous mix shares one build across all its copies, and
        // a member equal to a single workload reuses its build. Slot
        // indices below `workloads.len()` point into `programs`, the
        // rest into `unique_programs`.
        let mix_member_specs: Vec<&WorkloadSpec> =
            mixes.iter().flat_map(|m| m.members.iter()).collect();
        let mut unique_specs: Vec<&WorkloadSpec> = Vec::new();
        let member_slot: Vec<usize> = mix_member_specs
            .iter()
            .map(|spec| {
                workloads
                    .iter()
                    .position(|w| w == *spec)
                    .or_else(|| {
                        unique_specs
                            .iter()
                            .position(|u| u == spec)
                            .map(|ui| workloads.len() + ui)
                    })
                    .unwrap_or_else(|| {
                        unique_specs.push(spec);
                        workloads.len() + unique_specs.len() - 1
                    })
            })
            .collect();
        let unique_programs =
            parallel_indexed(unique_specs.len(), threads, |i| unique_specs[i].build());
        let program_at = |slot: usize| -> &Program {
            if slot < workloads.len() {
                &programs[slot]
            } else {
                &unique_programs[slot - workloads.len()]
            }
        };
        let mut mix_programs: Vec<Vec<&Program>> = Vec::with_capacity(mixes.len());
        let mut offset = 0;
        for mix in &mixes {
            mix_programs.push(
                (0..mix.members.len())
                    .map(|k| program_at(member_slot[offset + k]))
                    .collect(),
            );
            offset += mix.members.len();
        }

        let n_schemes = schemes.len();
        // Mixes run N contexts serially, making them the slowest jobs:
        // claim them first so they never tail the sweep. Results are
        // slotted by index, so ordering is invisible in the report.
        let mix_jobs = mixes.len() * n_schemes;
        // Total *cells* — what progress events and `Interrupted` count.
        let total = mix_jobs + workloads.len() * n_schemes;
        // A single-context workload is ONE job covering all its scheme
        // cells: its uncached cells run as a shared-decode batch (see
        // the `batch` module) instead of decoding the trace once per
        // scheme. A mix keeps one job per (mix, scheme).
        let jobs = mix_jobs + workloads.len();

        // Cache consult: resolve every single-workload cell's content
        // address and load whatever the store already holds. Mix cells
        // are interference-coupled and never cached.
        let fingerprints: Vec<ProgramFingerprint> =
            programs.iter().map(ProgramFingerprint::of).collect();
        let keys: Vec<Option<CellKey>> = (0..total)
            .map(|cell| {
                if cell_store.is_none() || cell < mix_jobs {
                    return None;
                }
                let (wi, si) = ((cell - mix_jobs) / n_schemes, (cell - mix_jobs) % n_schemes);
                Some(CellKey::for_cell(
                    fingerprints[wi],
                    &machine,
                    &schemes[si],
                    len,
                    seed,
                    sampling,
                ))
            })
            .collect();
        let cached: Vec<Option<CellValue>> = keys
            .iter()
            .map(|key| {
                let key = key.as_ref()?;
                cell_store.as_ref()?.get(key)
            })
            .collect();

        // Record once, replay many: one executor walk per workload
        // feeds every scheme cell. Recorded length covers the run plus
        // the pipeline's bounded lookahead, so no scheme can outrun it.
        // A workload whose every cell came out of the cache skips the
        // walk and the recording entirely.
        let needed_instrs = len.trace_instrs(&machine);
        let traces: Vec<Option<Trace>> = parallel_indexed(workloads.len(), threads, |wi| {
            let all_cached =
                (0..n_schemes).all(|si| cached[mix_jobs + wi * n_schemes + si].is_some());
            if all_cached {
                None
            } else {
                Some(obtain_trace(
                    &programs[wi],
                    seed,
                    needed_instrs,
                    trace_dir.as_deref(),
                ))
            }
        });

        let completed = AtomicUsize::new(0);
        // Each job yields the stats of its cells (one per scheme for a
        // single workload, one per member for a mix), plus the sampling
        // summary when the sweep runs sampled. `None` slots are jobs a
        // set cancel flag kept workers from claiming.
        type CellResult = (SimStats, Option<CellSampling>);
        let emit = |name: &str, si: usize, was_cached: bool, batch_id: Option<u64>| {
            if let Some(cb) = &progress {
                cb(&ProgressEvent {
                    completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
                    total,
                    workload: WorkloadId(name.to_string()),
                    scheme: labels[si].clone(),
                    cached: was_cached,
                    batch_id,
                });
            }
        };
        let store_cell = |cell_idx: usize, cell: &CellResult| {
            CELLS_EXECUTED.fetch_add(1, Ordering::Relaxed);
            if let (Some(store), Some(key)) = (&cell_store, &keys[cell_idx]) {
                store.put(
                    key,
                    &CellValue {
                        stats: cell.0.clone(),
                        sampling: cell.1.clone(),
                    },
                );
            }
        };
        let results: Vec<Option<Vec<CellResult>>> =
            parallel_indexed_cancellable(jobs, threads, cancel.as_deref(), |job| {
                if job < mix_jobs {
                    let (mi, si) = (job / n_schemes, job % n_schemes);
                    let members = mix_programs[mi]
                        .iter()
                        .map(|p| (*p, schemes[si].build(&machine)))
                        .collect();
                    let multi =
                        MultiSimulator::new(&machine, members, seed).run(len.warmup, len.measure);
                    let stats: Vec<CellResult> = multi
                        .contexts
                        .into_iter()
                        .map(|c| (c.stats, None))
                        .collect();
                    CELLS_EXECUTED.fetch_add(stats.len() as u64, Ordering::Relaxed);
                    emit(&mixes[mi].name, si, false, None);
                    return stats;
                }

                let wi = job - mix_jobs;
                let name = workloads[wi].name.as_str();
                let mut cells: Vec<Option<CellResult>> = vec![None; n_schemes];
                let mut uncached: Vec<usize> = Vec::new();
                for si in 0..n_schemes {
                    match &cached[mix_jobs + wi * n_schemes + si] {
                        Some(value) => {
                            cells[si] = Some((value.stats.clone(), value.sampling.clone()));
                            emit(name, si, true, None);
                        }
                        None => uncached.push(si),
                    }
                }
                // Batch the uncached cells when sharing a decode pays
                // (two or more) and nothing forces the serial path: a
                // snapshot store under sampling restores per-cell warm
                // state the shared cursor cannot represent.
                let use_batch =
                    batch && uncached.len() >= 2 && !(sampling.is_some() && snapshots.is_some());
                let trace = |uncached: &[usize]| {
                    if uncached.is_empty() {
                        None
                    } else {
                        Some(
                            traces[wi]
                                .as_ref()
                                .expect("trace recorded for every workload with uncached cells"),
                        )
                    }
                };
                if use_batch {
                    let trace = trace(&uncached).expect("uncached cells imply a trace");
                    let specs: Vec<SchemeSpec> =
                        uncached.iter().map(|&si| schemes[si].clone()).collect();
                    let batch_results: Vec<CellResult> = match sampling {
                        Some(spec) => crate::batch::run_schemes_batch_sampled_replayed(
                            &programs[wi],
                            trace,
                            &specs,
                            &machine,
                            len,
                            spec,
                            seed,
                        )
                        .into_iter()
                        .map(|sampled| (sampled.aggregate(), Some(CellSampling::of(&sampled))))
                        .collect(),
                        None => crate::batch::run_schemes_batch_replayed(
                            &programs[wi],
                            trace,
                            &specs,
                            &machine,
                            len,
                            seed,
                        )
                        .into_iter()
                        .map(|stats| (stats, None))
                        .collect(),
                    };
                    for (&si, cell) in uncached.iter().zip(batch_results) {
                        store_cell(mix_jobs + wi * n_schemes + si, &cell);
                        cells[si] = Some(cell);
                        emit(name, si, false, Some(job as u64));
                    }
                } else {
                    for &si in &uncached {
                        let trace = trace(&uncached).expect("uncached cells imply a trace");
                        let cell = match sampling {
                            Some(spec) => {
                                let sampled = run_scheme_sampled_replayed_snapshot(
                                    &programs[wi],
                                    trace,
                                    &schemes[si],
                                    &machine,
                                    len,
                                    spec,
                                    seed,
                                    snapshots.as_deref(),
                                );
                                (sampled.aggregate(), Some(CellSampling::of(&sampled)))
                            }
                            None => {
                                let stats = run_scheme_replayed(
                                    &programs[wi],
                                    trace,
                                    &schemes[si],
                                    &machine,
                                    len,
                                    seed,
                                );
                                (stats, None)
                            }
                        };
                        store_cell(mix_jobs + wi * n_schemes + si, &cell);
                        cells[si] = Some(cell);
                        emit(name, si, false, None);
                    }
                }
                cells
                    .into_iter()
                    .map(|c| c.expect("every scheme cell resolved"))
                    .collect()
            });
        let done: usize = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(j, _)| if j < mix_jobs { 1 } else { n_schemes })
            .sum();
        if done < total {
            return Err(Interrupted {
                completed: done,
                total,
            });
        }
        let results: Vec<Vec<CellResult>> = results
            .into_iter()
            .map(|r| r.expect("all jobs completed"))
            .collect();

        let mut cells = Vec::new();
        for (wi, wl) in workloads.iter().enumerate() {
            let base = baseline_idx.map(|bi| &results[mix_jobs + wi][bi].0);
            for (si, scheme) in schemes.iter().enumerate() {
                let (cell_stats, cell_sampling) = &results[mix_jobs + wi][si];
                cells.push(SweepCell {
                    workload: WorkloadId(wl.name.clone()),
                    scheme: scheme.clone(),
                    label: labels[si].clone(),
                    metrics: CellMetrics::derive(cell_stats, base),
                    stats: cell_stats.clone(),
                    sampling: cell_sampling.clone(),
                });
            }
        }
        for (mi, mix) in mixes.iter().enumerate() {
            for (ctx, member_id) in mix.member_ids().into_iter().enumerate() {
                // A member's baseline is the *same context of the same
                // mix* under the baseline scheme — interference-aware.
                let base = baseline_idx.map(|bi| &results[mi * n_schemes + bi][ctx].0);
                for (si, scheme) in schemes.iter().enumerate() {
                    let (cell_stats, cell_sampling) = &results[mi * n_schemes + si][ctx];
                    cells.push(SweepCell {
                        workload: WorkloadId(member_id.clone()),
                        scheme: scheme.clone(),
                        label: labels[si].clone(),
                        metrics: CellMetrics::derive(cell_stats, base),
                        stats: cell_stats.clone(),
                        sampling: cell_sampling.clone(),
                    });
                }
            }
        }

        let workload_ids = workloads
            .iter()
            .map(|w| WorkloadId(w.name.clone()))
            .chain(
                mixes
                    .iter()
                    .flat_map(|m| m.member_ids().into_iter().map(WorkloadId)),
            )
            .collect();
        Ok(SweepReport {
            len,
            seed,
            baseline: baseline_idx.map(|bi| labels[bi].clone()),
            sampling,
            workloads: workload_ids,
            schemes,
            cells,
        })
    }
}

/// Produces the replay trace for one workload: reuses a compatible
/// recording from `dir` when present — an ingested v2 store
/// (`.fets`, checked first) or a flat v1 trace (`.fetr`) — otherwise
/// records a fresh walk (and persists it when `dir` is set). A cached
/// trace is compatible when its seed and program fingerprint match and
/// it is at least as long as this sweep needs — longer recordings
/// replay as a prefix, so shortening a sweep never invalidates the
/// cache. Stores are reconstructed to flat traces here (lossless, see
/// [`fe_trace::TraceStore::to_trace`]) so every downstream path —
/// batch, sampled, snapshot, content-addressed cache — works over an
/// ingested workload unchanged.
fn obtain_trace(
    program: &Program,
    seed: u64,
    needed_instrs: u64,
    dir: Option<&std::path::Path>,
) -> Trace {
    let store_path = dir.map(|d| d.join(format!("{}-{seed:016x}.fets", program.name())));
    if let Some(path) = &store_path {
        if let Ok(store) = fe_trace::TraceStore::read_from(path) {
            let trace = store.to_trace();
            if trace.header().seed == seed
                && trace.header().instr_count >= needed_instrs
                && trace.matches(program)
                && cached_trace_matches_live(&trace, program, seed)
            {
                return trace;
            }
        }
    }
    let path = dir.map(|d| d.join(format!("{}-{seed:016x}.fetr", program.name())));
    if let Some(path) = &path {
        if let Ok(trace) = Trace::read_from(path) {
            if trace.header().seed == seed
                && trace.header().instr_count >= needed_instrs
                && trace.matches(program)
                && cached_trace_matches_live(&trace, program, seed)
            {
                return trace;
            }
        }
    }
    let trace = Trace::record(program, seed, needed_instrs);
    if let Some(path) = &path {
        let write = || -> Result<(), fe_trace::TraceError> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            trace.write_to(path)
        };
        if let Err(e) = write() {
            eprintln!("warning: could not persist trace {}: {e}", path.display());
        }
    }
    trace
}

/// Guards the disk cache against executor drift: the trace header
/// fingerprints the *program layout*, not the walk generator, so a
/// change to the executor algorithm or its RNG stream would otherwise
/// replay stale control flow forever. Cross-checking the recording's
/// opening blocks against a fresh walk catches divergence where it
/// first appears (seeding, RNG draws, dispatch selection); on mismatch
/// the caller silently re-records.
fn cached_trace_matches_live(trace: &Trace, program: &Program, seed: u64) -> bool {
    use fe_model::BlockSource;
    const PROBE_BLOCKS: u64 = 1024;
    let mut live = fe_cfg::Executor::new(program, seed);
    let mut replay = trace.replayer();
    (0..PROBE_BLOCKS.min(trace.header().block_count))
        .all(|_| replay.next_block() == Some(live.next_block()))
}

/// Runs `task(0..count)` across up to `threads` scoped workers and
/// returns the results in index order, whatever the completion order.
fn parallel_indexed<T: Send>(
    count: usize,
    threads: usize,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    parallel_indexed_cancellable(count, threads, None, task)
        .into_iter()
        .map(|slot| slot.expect("no cancel flag: every cell completes"))
        .collect()
}

/// [`parallel_indexed`] with cooperative cancellation: workers check
/// `cancel` before *claiming* each index and stop claiming once it is
/// set — already-claimed work always runs to completion, so a set flag
/// never leaves a task half-done. Unclaimed slots come back `None`.
fn parallel_indexed_cancellable<T: Send>(
    count: usize,
    threads: usize,
    cancel: Option<&AtomicBool>,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<Option<T>> {
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = threads.min(count).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                let value = task(i);
                slots
                    .lock()
                    .expect("result-slot mutex poisoned: a sibling worker panicked")[i] =
                    Some(value);
            });
        }
    });
    slots
        .into_inner()
        .expect("result-slot mutex poisoned: a worker panicked")
}

/// Metrics derived once per cell when the sweep completes — what the
/// figure binaries previously recomputed ad hoc.
#[derive(Clone, Debug, PartialEq)]
pub struct CellMetrics {
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1-I demand misses per kilo-instruction.
    pub l1i_mpki: f64,
    /// BTB misses per kilo-instruction (Table 1).
    pub btb_mpki: f64,
    /// Fig. 10 prefetch accuracy.
    pub prefetch_accuracy: f64,
    /// Fig. 11 average L1-D miss fill latency, in cycles.
    pub l1d_fill_latency: f64,
    /// Speedup over the sweep baseline (`None` without a baseline).
    pub speedup: Option<f64>,
    /// Front-end stall-cycle coverage over the baseline.
    pub coverage: Option<f64>,
}

impl CellMetrics {
    fn derive(stats: &SimStats, baseline: Option<&SimStats>) -> Self {
        CellMetrics {
            ipc: stats.ipc(),
            l1i_mpki: stats.l1i_mpki(),
            btb_mpki: stats.btb_mpki(),
            prefetch_accuracy: stats.prefetch_accuracy(),
            l1d_fill_latency: stats.avg_l1d_fill_latency(),
            speedup: baseline.map(|b| speedup(b, stats)),
            coverage: baseline.map(|b| coverage(b, stats)),
        }
    }
}

/// One (workload, scheme) cell of a completed sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// The workload this cell ran.
    pub workload: WorkloadId,
    /// The scheme this cell ran — the typed key.
    pub scheme: SchemeSpec,
    /// The scheme's display label (unique within the sweep).
    pub label: String,
    /// Raw measured statistics (the aggregate over intervals when the
    /// sweep ran sampled).
    pub stats: SimStats,
    /// Metrics derived against the sweep baseline.
    pub metrics: CellMetrics,
    /// Sampled-mode summary (interval count, per-interval mean ± 95%
    /// CI); `None` for full-detail sweeps.
    pub sampling: Option<CellSampling>,
}

/// A completed sweep: every cell, keyed by `(WorkloadId, SchemeSpec)`,
/// plus the run parameters that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// Warmup/measure lengths every cell used.
    pub len: RunLength,
    /// The shared executor seed.
    pub seed: u64,
    /// Label of the baseline scheme metrics are derived against.
    pub baseline: Option<String>,
    /// Sampled-mode shape the sweep ran with (`None` = full detail).
    pub sampling: Option<SamplingSpec>,
    /// Workloads in sweep order.
    pub workloads: Vec<WorkloadId>,
    /// Schemes in sweep order.
    pub schemes: Vec<SchemeSpec>,
    /// Cells in (workload-major, scheme-minor) order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Looks up a cell by its typed key. Panics (with the key) when
    /// the sweep has no such cell.
    pub fn cell(&self, workload: &str, scheme: &SchemeSpec) -> &SweepCell {
        self.cells
            .iter()
            .find(|c| c.workload == *workload && c.scheme == *scheme)
            // audit-allow(no-unchecked-panic): documented accessor contract — asking for a cell the sweep never ran is a figure-binary bug, and the panic names the key
            .unwrap_or_else(|| panic!("no cell ({workload}, {scheme:?}) in sweep"))
    }

    /// Looks up a cell by workload name and scheme label.
    pub fn cell_labeled(&self, workload: &str, label: &str) -> &SweepCell {
        self.cells
            .iter()
            .find(|c| c.workload == *workload && c.label == label)
            // audit-allow(no-unchecked-panic): documented accessor contract — asking for a cell the sweep never ran is a figure-binary bug, and the panic names the key
            .unwrap_or_else(|| panic!("no cell ({workload}, {label}) in sweep"))
    }

    /// Workload names in sweep order.
    pub fn workload_names(&self) -> Vec<&str> {
        self.workloads.iter().map(|w| w.as_str()).collect()
    }

    /// Scheme labels in sweep order.
    pub fn scheme_labels(&self) -> Vec<String> {
        self.schemes.iter().map(|s| s.label()).collect()
    }

    /// Scheme labels excluding the baseline — the series most figures
    /// plot.
    pub fn comparison_labels(&self) -> Vec<String> {
        self.scheme_labels()
            .into_iter()
            .filter(|l| Some(l) != self.baseline.as_ref())
            .collect()
    }

    /// Serializes the report (deterministic: same report ⇒ same bytes).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Writes [`Self::to_json`] to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parses a report previously emitted by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<SweepReport, String> {
        Self::from_json_value(&parse(text)?)
    }

    fn to_json_value(&self) -> Json {
        let mut run_members = vec![
            ("warmup".into(), Json::U64(self.len.warmup)),
            ("measure".into(), Json::U64(self.len.measure)),
            ("seed".into(), Json::U64(self.seed)),
            (
                "baseline".into(),
                self.baseline
                    .as_ref()
                    .map_or(Json::Null, |b| Json::Str(b.clone())),
            ),
        ];
        // Emitted only for sampled sweeps: full-detail reports keep
        // their historical byte shape (the pinned fixture is a byte
        // diff).
        if let Some(spec) = &self.sampling {
            run_members.push((
                "sampling".into(),
                Json::Obj(vec![
                    ("interval".into(), Json::U64(spec.interval)),
                    ("detail".into(), Json::U64(spec.detail)),
                    ("warmup".into(), Json::U64(spec.warmup)),
                ]),
            ));
        }
        let run = Json::Obj(run_members);
        let workloads = Json::Arr(
            self.workloads
                .iter()
                .map(|w| Json::Str(w.0.clone()))
                .collect(),
        );
        let schemes = Json::Arr(self.schemes.iter().map(scheme_to_json).collect());
        let cells = Json::Arr(self.cells.iter().map(cell_to_json).collect());
        Json::Obj(vec![
            ("run".into(), run),
            ("workloads".into(), workloads),
            ("schemes".into(), schemes),
            ("cells".into(), cells),
        ])
    }

    fn from_json_value(doc: &Json) -> Result<SweepReport, String> {
        let run = doc.req("run")?;
        let len = RunLength {
            warmup: run.req("warmup")?.as_u64()?,
            measure: run.req("measure")?.as_u64()?,
        };
        let seed = run.req("seed")?.as_u64()?;
        let baseline = match run.req("baseline")? {
            Json::Null => None,
            other => Some(other.as_str()?.to_string()),
        };
        // Absent in pre-sampling reports (and every full-detail one).
        let sampling = match run.get("sampling") {
            None => None,
            Some(doc) => Some(SamplingSpec {
                interval: doc.req("interval")?.as_u64()?,
                detail: doc.req("detail")?.as_u64()?,
                warmup: doc.req("warmup")?.as_u64()?,
            }),
        };
        let workloads = doc
            .req("workloads")?
            .as_arr()?
            .iter()
            .map(|w| Ok(WorkloadId(w.as_str()?.to_string())))
            .collect::<Result<Vec<_>, String>>()?;
        let schemes = doc
            .req("schemes")?
            .as_arr()?
            .iter()
            .map(scheme_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        let cells = doc
            .req("cells")?
            .as_arr()?
            .iter()
            .map(cell_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SweepReport {
            len,
            seed,
            baseline,
            sampling,
            workloads,
            schemes,
            cells,
        })
    }
}

fn policy_token(policy: RegionPolicy) -> &'static str {
    match policy {
        RegionPolicy::NoBitVector => "no-bit-vector",
        RegionPolicy::Bit8 => "bit8",
        RegionPolicy::Bit32 => "bit32",
        RegionPolicy::EntireRegion => "entire-region",
        RegionPolicy::FiveBlocks => "five-blocks",
    }
}

fn policy_from_token(token: &str) -> Result<RegionPolicy, String> {
    RegionPolicy::ALL
        .into_iter()
        .find(|p| policy_token(*p) == token)
        .ok_or_else(|| format!("unknown region policy `{token}`"))
}

/// Encodes a scheme spec as the canonical JSON object used in report
/// cells, cache keys, and the experiment-service wire protocol.
pub fn scheme_to_json(spec: &SchemeSpec) -> Json {
    let mut members = Vec::new();
    match spec {
        SchemeSpec::NoPrefetch => members.push(("kind".into(), Json::Str("no-prefetch".into()))),
        SchemeSpec::Fdip => members.push(("kind".into(), Json::Str("fdip".into()))),
        SchemeSpec::Boomerang { btb_entries } => {
            members.push(("kind".into(), Json::Str("boomerang".into())));
            members.push(("btb_entries".into(), Json::U64(*btb_entries as u64)));
        }
        SchemeSpec::Confluence => members.push(("kind".into(), Json::Str("confluence".into()))),
        SchemeSpec::Ideal => members.push(("kind".into(), Json::Str("ideal".into()))),
        SchemeSpec::Shotgun(cfg) => {
            members.push(("kind".into(), Json::Str("shotgun".into())));
            members.push(("ubtb".into(), Json::U64(cfg.sizing.ubtb as u64)));
            members.push(("cbtb".into(), Json::U64(cfg.sizing.cbtb as u64)));
            members.push(("rib".into(), Json::U64(cfg.sizing.rib as u64)));
            members.push(("policy".into(), Json::Str(policy_token(cfg.policy).into())));
            members.push(("ways".into(), Json::U64(cfg.ways as u64)));
            members.push((
                "prefetch_buffer".into(),
                Json::U64(cfg.prefetch_buffer as u64),
            ));
        }
    }
    Json::Obj(members)
}

/// Decodes a scheme spec from its [`scheme_to_json`] encoding.
pub fn scheme_from_json(doc: &Json) -> Result<SchemeSpec, String> {
    let as_u32 = |key: &str| -> Result<u32, String> {
        let v = doc.req(key)?.as_u64()?;
        u32::try_from(v).map_err(|_| format!("`{key}` out of range: {v}"))
    };
    match doc.req("kind")?.as_str()? {
        "no-prefetch" => Ok(SchemeSpec::NoPrefetch),
        "fdip" => Ok(SchemeSpec::Fdip),
        "boomerang" => Ok(SchemeSpec::Boomerang {
            btb_entries: as_u32("btb_entries")?,
        }),
        "confluence" => Ok(SchemeSpec::Confluence),
        "ideal" => Ok(SchemeSpec::Ideal),
        "shotgun" => Ok(SchemeSpec::Shotgun(ShotgunConfig {
            sizing: fe_model::storage::ShotgunSizing {
                ubtb: as_u32("ubtb")?,
                cbtb: as_u32("cbtb")?,
                rib: as_u32("rib")?,
            },
            policy: policy_from_token(doc.req("policy")?.as_str()?)?,
            ways: as_u32("ways")?,
            prefetch_buffer: as_u32("prefetch_buffer")?,
        })),
        other => Err(format!("unknown scheme kind `{other}`")),
    }
}

fn f64_to_json(v: f64) -> Json {
    Json::F64(v)
}

fn opt_f64_to_json(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::F64)
}

/// Encodes measured statistics exactly as report cells do — shared
/// with the cell cache so that served results are byte-identical to
/// computed ones.
pub(crate) fn stats_to_json(s: &SimStats) -> Json {
    Json::Obj(vec![
        ("cycles".into(), Json::U64(s.cycles)),
        ("instructions".into(), Json::U64(s.instructions)),
        ("branches".into(), Json::U64(s.branches)),
        (
            "unconditional_branches".into(),
            Json::U64(s.unconditional_branches),
        ),
        ("stall_icache_miss".into(), Json::U64(s.stalls.icache_miss)),
        ("stall_btb_resolve".into(), Json::U64(s.stalls.btb_resolve)),
        ("stall_ftq_empty".into(), Json::U64(s.stalls.ftq_empty)),
        ("stall_redirect".into(), Json::U64(s.stalls.redirect)),
        (
            "backend_stall_cycles".into(),
            Json::U64(s.backend_stall_cycles),
        ),
        ("l1i_accesses".into(), Json::U64(s.l1i_accesses)),
        ("l1i_misses".into(), Json::U64(s.l1i_misses)),
        ("btb_lookups".into(), Json::U64(s.btb_lookups)),
        ("btb_misses".into(), Json::U64(s.btb_misses)),
        (
            "direction_mispredicts".into(),
            Json::U64(s.direction_mispredicts),
        ),
        ("misfetches".into(), Json::U64(s.misfetches)),
        ("misfetch_cond".into(), Json::U64(s.misfetch_cond)),
        ("misfetch_return".into(), Json::U64(s.misfetch_return)),
        ("misfetch_uncond".into(), Json::U64(s.misfetch_uncond)),
        ("prefetch_issued".into(), Json::U64(s.prefetch.issued)),
        ("prefetch_useful".into(), Json::U64(s.prefetch.useful)),
        ("prefetch_late".into(), Json::U64(s.prefetch.late)),
        ("prefetch_wasted".into(), Json::U64(s.prefetch.wasted)),
        ("loads".into(), Json::U64(s.loads)),
        ("l1d_misses".into(), Json::U64(s.l1d_misses)),
        ("l1d_fill_cycles".into(), Json::U64(s.l1d_fill_cycles)),
        ("noc_messages".into(), Json::U64(s.noc_messages)),
    ])
}

/// Encodes a sampled-cell summary exactly as report cells do (see
/// [`stats_to_json`]).
pub(crate) fn sampling_to_json(sampling: &CellSampling) -> Json {
    Json::Obj(vec![
        ("intervals".into(), Json::U64(sampling.intervals)),
        ("ipc_mean".into(), f64_to_json(sampling.ipc.mean)),
        ("ipc_ci95".into(), f64_to_json(sampling.ipc.ci95)),
        ("l1i_mpki_mean".into(), f64_to_json(sampling.l1i_mpki.mean)),
        ("l1i_mpki_ci95".into(), f64_to_json(sampling.l1i_mpki.ci95)),
        (
            "fe_stall_pki_mean".into(),
            f64_to_json(sampling.fe_stall_pki.mean),
        ),
        (
            "fe_stall_pki_ci95".into(),
            f64_to_json(sampling.fe_stall_pki.ci95),
        ),
    ])
}

fn cell_to_json(cell: &SweepCell) -> Json {
    let stats = stats_to_json(&cell.stats);
    let m = &cell.metrics;
    let metrics = Json::Obj(vec![
        ("ipc".into(), f64_to_json(m.ipc)),
        ("l1i_mpki".into(), f64_to_json(m.l1i_mpki)),
        ("btb_mpki".into(), f64_to_json(m.btb_mpki)),
        ("prefetch_accuracy".into(), f64_to_json(m.prefetch_accuracy)),
        ("l1d_fill_latency".into(), f64_to_json(m.l1d_fill_latency)),
        ("speedup".into(), opt_f64_to_json(m.speedup)),
        ("coverage".into(), opt_f64_to_json(m.coverage)),
    ]);
    let mut members = vec![
        ("workload".into(), Json::Str(cell.workload.0.clone())),
        ("scheme".into(), scheme_to_json(&cell.scheme)),
        ("label".into(), Json::Str(cell.label.clone())),
        ("stats".into(), stats),
        ("metrics".into(), metrics),
    ];
    // Sampled sweeps only — full-detail cell JSON keeps its historical
    // byte shape.
    if let Some(sampling) = &cell.sampling {
        members.push(("sampling".into(), sampling_to_json(sampling)));
    }
    Json::Obj(members)
}

/// Decodes [`stats_to_json`] output.
pub(crate) fn stats_from_json(stats_doc: &Json) -> Result<SimStats, String> {
    let u = |key: &str| stats_doc.req(key)?.as_u64();
    Ok(SimStats {
        cycles: u("cycles")?,
        instructions: u("instructions")?,
        branches: u("branches")?,
        unconditional_branches: u("unconditional_branches")?,
        stalls: fe_model::stats::StallBreakdown {
            icache_miss: u("stall_icache_miss")?,
            btb_resolve: u("stall_btb_resolve")?,
            ftq_empty: u("stall_ftq_empty")?,
            redirect: u("stall_redirect")?,
        },
        backend_stall_cycles: u("backend_stall_cycles")?,
        l1i_accesses: u("l1i_accesses")?,
        l1i_misses: u("l1i_misses")?,
        btb_lookups: u("btb_lookups")?,
        btb_misses: u("btb_misses")?,
        direction_mispredicts: u("direction_mispredicts")?,
        misfetches: u("misfetches")?,
        misfetch_cond: u("misfetch_cond")?,
        misfetch_return: u("misfetch_return")?,
        misfetch_uncond: u("misfetch_uncond")?,
        prefetch: fe_model::stats::PrefetchStats {
            issued: u("prefetch_issued")?,
            useful: u("prefetch_useful")?,
            late: u("prefetch_late")?,
            wasted: u("prefetch_wasted")?,
        },
        loads: u("loads")?,
        l1d_misses: u("l1d_misses")?,
        l1d_fill_cycles: u("l1d_fill_cycles")?,
        noc_messages: u("noc_messages")?,
    })
}

/// Decodes [`sampling_to_json`] output.
pub(crate) fn sampling_from_json(s: &Json) -> Result<CellSampling, String> {
    let sf = |key: &str| s.req(key)?.as_f64();
    Ok(CellSampling {
        intervals: s.req("intervals")?.as_u64()?,
        ipc: MeanCi {
            mean: sf("ipc_mean")?,
            ci95: sf("ipc_ci95")?,
        },
        l1i_mpki: MeanCi {
            mean: sf("l1i_mpki_mean")?,
            ci95: sf("l1i_mpki_ci95")?,
        },
        fe_stall_pki: MeanCi {
            mean: sf("fe_stall_pki_mean")?,
            ci95: sf("fe_stall_pki_ci95")?,
        },
    })
}

fn cell_from_json(doc: &Json) -> Result<SweepCell, String> {
    let stats = stats_from_json(doc.req("stats")?)?;
    let metrics_doc = doc.req("metrics")?;
    let f = |key: &str| metrics_doc.req(key)?.as_f64();
    let opt_f = |key: &str| -> Result<Option<f64>, String> {
        match metrics_doc.req(key)? {
            Json::Null => Ok(None),
            other => Ok(Some(other.as_f64()?)),
        }
    };
    let metrics = CellMetrics {
        ipc: f("ipc")?,
        l1i_mpki: f("l1i_mpki")?,
        btb_mpki: f("btb_mpki")?,
        prefetch_accuracy: f("prefetch_accuracy")?,
        l1d_fill_latency: f("l1d_fill_latency")?,
        speedup: opt_f("speedup")?,
        coverage: opt_f("coverage")?,
    };
    let sampling = match doc.get("sampling") {
        None => None,
        Some(s) => Some(sampling_from_json(s)?),
    };
    Ok(SweepCell {
        workload: WorkloadId(doc.req("workload")?.as_str()?.to_string()),
        scheme: scheme_from_json(doc.req("scheme")?)?,
        label: doc.req("label")?.as_str()?.to_string(),
        stats,
        metrics,
        sampling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_stats(cycles: u64) -> SimStats {
        SimStats {
            cycles,
            instructions: 1000,
            branches: 100,
            ..Default::default()
        }
    }

    fn fake_report() -> SweepReport {
        let schemes = vec![SchemeSpec::NoPrefetch, SchemeSpec::shotgun()];
        let base = fake_stats(2000);
        let fast = fake_stats(1000);
        let cells = vec![
            SweepCell {
                workload: WorkloadId("wl".into()),
                scheme: schemes[0].clone(),
                label: "no-prefetch".into(),
                metrics: CellMetrics::derive(&base, Some(&base)),
                stats: base.clone(),
                sampling: None,
            },
            SweepCell {
                workload: WorkloadId("wl".into()),
                scheme: schemes[1].clone(),
                label: "shotgun".into(),
                metrics: CellMetrics::derive(&fast, Some(&base)),
                stats: fast,
                sampling: None,
            },
        ];
        SweepReport {
            len: RunLength::SMOKE,
            seed: 7,
            baseline: Some("no-prefetch".into()),
            sampling: None,
            workloads: vec![WorkloadId("wl".into())],
            schemes,
            cells,
        }
    }

    fn fake_sampled_report() -> SweepReport {
        let mut report = fake_report();
        report.sampling = Some(SamplingSpec::DEFAULT);
        for (i, cell) in report.cells.iter_mut().enumerate() {
            cell.sampling = Some(CellSampling {
                intervals: 12,
                ipc: MeanCi {
                    mean: 1.5 + i as f64,
                    ci95: 0.125,
                },
                l1i_mpki: MeanCi {
                    mean: 20.0,
                    ci95: 1.75,
                },
                fe_stall_pki: MeanCi {
                    mean: 300.5,
                    ci95: 12.25,
                },
            });
        }
        report
    }

    #[test]
    fn typed_and_labeled_lookup_agree() {
        let report = fake_report();
        let by_type = report.cell("wl", &SchemeSpec::shotgun());
        let by_label = report.cell_labeled("wl", "shotgun");
        assert_eq!(by_type, by_label);
        assert_eq!(by_type.metrics.speedup, Some(2.0));
    }

    #[test]
    #[should_panic(expected = "no cell")]
    fn missing_cell_panics_with_key() {
        fake_report().cell("wl", &SchemeSpec::Ideal);
    }

    #[test]
    fn report_json_round_trips() {
        let report = fake_report();
        let text = report.to_json();
        let back = SweepReport::from_json(&text).expect("parses");
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text, "re-serialization is stable");
    }

    #[test]
    fn sampled_report_json_round_trips_and_full_detail_shape_is_unchanged() {
        let sampled = fake_sampled_report();
        let text = sampled.to_json();
        assert!(text.contains("\"sampling\""));
        assert!(text.contains("\"fe_stall_pki_ci95\""));
        let back = SweepReport::from_json(&text).expect("parses");
        assert_eq!(back, sampled);
        assert_eq!(back.to_json(), text, "re-serialization is stable");

        // Full-detail reports must not grow any sampling keys — the
        // pinned engine-regression fixture is a byte diff.
        let full = fake_report();
        assert!(!full.to_json().contains("sampling"));
    }

    #[test]
    fn every_scheme_spec_round_trips() {
        let specs = [
            SchemeSpec::NoPrefetch,
            SchemeSpec::Fdip,
            SchemeSpec::Boomerang { btb_entries: 4096 },
            SchemeSpec::Confluence,
            SchemeSpec::Ideal,
            SchemeSpec::shotgun(),
            SchemeSpec::Shotgun(ShotgunConfig::for_budget(512)),
            SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(RegionPolicy::FiveBlocks)),
            SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(RegionPolicy::NoBitVector)),
            SchemeSpec::Shotgun(ShotgunConfig::default().with_cbtb_entries(1024)),
        ];
        for spec in specs {
            let doc = scheme_to_json(&spec);
            let text = doc.render();
            let back = scheme_from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn comparison_labels_exclude_baseline() {
        let report = fake_report();
        assert_eq!(report.comparison_labels(), vec!["shotgun".to_string()]);
    }
}
