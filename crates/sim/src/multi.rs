//! Consolidated multi-context simulation: N independent pipelines —
//! each its own program, scheme, and deterministically derived seed —
//! contending on one shared LLC/NoC.
//!
//! The paper's server workloads (Apache, Zeus, Oracle, DB2) run
//! consolidated on shared cache hierarchies in production; this module
//! makes that class of interference experiment simulable. Contexts are
//! interleaved round-robin one cycle at a time in context order, so a
//! run is fully deterministic: the same (members, base seed, lengths)
//! produce the same [`MultiStats`] regardless of host parallelism.
//!
//! ```no_run
//! use fe_cfg::workloads;
//! use fe_model::MachineConfig;
//! use fe_sim::{MultiSimulator, SchemeSpec};
//!
//! let machine = MachineConfig::table3();
//! let apache = workloads::apache().build();
//! let db2 = workloads::db2().build();
//! let mut sim = MultiSimulator::new(
//!     &machine,
//!     vec![
//!         (&apache, SchemeSpec::shotgun().build(&machine)),
//!         (&db2, SchemeSpec::shotgun().build(&machine)),
//!     ],
//!     0x5407,
//! );
//! let stats = sim.run(2_000_000, 8_000_000);
//! println!("ctx0 IPC {:.2}", stats.contexts[0].stats.ipc());
//! ```

use fe_cfg::Program;
use fe_model::{MachineConfig, SimStats};
use fe_uarch::{MemStats, MemorySystem};

use crate::engine::{EngineScheme, Simulator};

/// Derives context `ctx`'s seed from the experiment's base seed —
/// the shared SplitMix64 finalizer over the pair, so distinct contexts
/// get decorrelated executor and load-RNG streams even for adjacent
/// base seeds (and never collide with the base seed's own stream).
pub fn derive_ctx_seed(base_seed: u64, ctx: u32) -> u64 {
    fe_model::rng::splitmix64(
        base_seed.wrapping_add(fe_model::rng::SPLITMIX64_GOLDEN.wrapping_mul(ctx as u64 + 1))
            ^ 0x6A09E667F3BCC909,
    )
}

/// One context's measured results.
#[derive(Clone, Debug, PartialEq)]
pub struct ContextStats {
    /// Pipeline statistics for the measured phase.
    pub stats: SimStats,
    /// This context's memory-path traffic and interference counters at
    /// measurement end (misses, queue wait, cross-context evictions).
    pub mem: MemStats,
}

/// Results of a consolidated run: one entry per context, in context
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiStats {
    /// Per-context results.
    pub contexts: Vec<ContextStats>,
}

impl MultiStats {
    /// Element-wise sum over contexts. Only *additive* counters
    /// (instructions, misses, stall cycles, traffic) are meaningful on
    /// the sum: contexts run simultaneously, so summed `cycles` is
    /// total context-cycles, not wall-clock, and `aggregate().ipc()`
    /// is the per-context average — use [`Self::chip_ipc`] for chip
    /// throughput.
    pub fn aggregate(&self) -> SimStats {
        let mut total = SimStats::default();
        for ctx in &self.contexts {
            total.merge(&ctx.stats);
        }
        total
    }

    /// Chip-level throughput: total instructions retired per
    /// wall-clock cycle (the longest context's measured window).
    pub fn chip_ipc(&self) -> f64 {
        let instructions: u64 = self.contexts.iter().map(|c| c.stats.instructions).sum();
        let wall = self.contexts.iter().map(|c| c.stats.cycles).max();
        match wall {
            Some(cycles) if cycles > 0 => instructions as f64 / cycles as f64,
            _ => 0.0,
        }
    }
}

/// N pipelines over one shared memory system, interleaved round-robin.
pub struct MultiSimulator<'p> {
    sims: Vec<Simulator<'p>>,
}

impl<'p> MultiSimulator<'p> {
    /// Builds one pipeline per `(program, scheme)` member. Context `i`
    /// gets memory handle `i` of a [`MemorySystem::shared_group`] and
    /// the seed [`derive_ctx_seed`]`(base_seed, i)`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty (or exceeds the 255-context group
    /// limit) or `machine` fails validation.
    pub fn new(
        machine: &MachineConfig,
        members: Vec<(&'p Program, EngineScheme)>,
        base_seed: u64,
    ) -> Self {
        let mems = MemorySystem::shared_group(machine, members.len());
        let sims = members
            .into_iter()
            .zip(mems)
            .enumerate()
            .map(|(i, ((program, scheme), mem))| {
                Simulator::with_memory(
                    program,
                    machine.clone(),
                    scheme,
                    derive_ctx_seed(base_seed, i as u32),
                    mem,
                )
            })
            .collect();
        MultiSimulator { sims }
    }

    /// Number of contexts.
    pub fn contexts(&self) -> usize {
        self.sims.len()
    }

    /// Runs every context for `warmup` instructions (untimed), then
    /// measures `measure` instructions per context.
    ///
    /// All contexts tick every cycle for the whole run: measurement
    /// starts only once the *slowest* context finishes warming, and a
    /// context that reaches its measurement target keeps executing (so
    /// its interference pressure persists) with its statistics frozen
    /// at the target.
    pub fn run(&mut self, warmup: u64, measure: u64) -> MultiStats {
        while self.sims.iter().any(|sim| sim.retired() < warmup) {
            for sim in &mut self.sims {
                sim.tick_once();
            }
        }
        for sim in &mut self.sims {
            sim.begin_measurement();
        }
        let targets: Vec<u64> = self
            .sims
            .iter()
            .map(|sim| sim.retired() + measure)
            .collect();
        let mut done: Vec<Option<ContextStats>> = vec![None; self.sims.len()];
        while done.iter().any(Option::is_none) {
            for (i, sim) in self.sims.iter_mut().enumerate() {
                sim.tick_once();
                if done[i].is_none() && sim.retired() >= targets[i] {
                    done[i] = Some(ContextStats {
                        stats: sim.finalize(),
                        mem: sim.mem_stats(),
                    });
                }
            }
        }
        MultiStats {
            contexts: done
                .into_iter()
                .map(|ctx| ctx.expect("loop exits only when every context finished"))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SchemeSpec;
    use fe_cfg::workloads;

    #[test]
    fn derived_seeds_never_share_a_stream() {
        // The executor streams are keyed by the seed and the backend's
        // load RNG by `seed | 1`: contexts share a stream only if the
        // derived seeds collide (mod the low bit). Prove they don't,
        // across contexts and against the base seed itself.
        for base in [0u64, 1, 9, 0x5407, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            let mut seen = fe_uarch::FastSet::default();
            seen.insert(base | 1);
            for ctx in 0..64u32 {
                let derived = derive_ctx_seed(base, ctx);
                assert_ne!(derived, base, "ctx {ctx} reused the base seed");
                assert!(
                    seen.insert(derived | 1),
                    "ctx {ctx} of base {base:#x} shares an RNG stream"
                );
            }
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_ctx_seed(0x5407, 3), derive_ctx_seed(0x5407, 3));
        assert_ne!(derive_ctx_seed(0x5407, 3), derive_ctx_seed(0x5408, 3));
    }

    #[test]
    fn consolidated_run_is_deterministic() {
        let machine = MachineConfig::table3();
        let apache = workloads::apache().scaled(0.08).build();
        let db2 = workloads::db2().scaled(0.08).build();
        let run = |seed| {
            let members = vec![
                (&apache, SchemeSpec::shotgun().build(&machine)),
                (&db2, SchemeSpec::shotgun().build(&machine)),
            ];
            MultiSimulator::new(&machine, members, seed).run(30_000, 80_000)
        };
        let a = run(0x5407);
        let b = run(0x5407);
        assert_eq!(a, b, "same members + seed must reproduce exactly");
        let c = run(0x9999);
        assert_ne!(a, c, "different base seed must change the run");
    }

    #[test]
    fn contexts_interfere_in_the_shared_llc() {
        // Shrink the LLC so two scaled workloads genuinely contend,
        // then compare total consolidated LLC miss traffic with solo
        // runs of the same (program, scheme, seed) on private memory.
        let mut machine = MachineConfig::table3();
        machine.llc.kib_per_core = 1; // 16 KiB shared LLC: force capacity contention
        let apache = workloads::apache().scaled(0.1).build();
        let db2 = workloads::db2().scaled(0.1).build();

        let members = vec![
            (&apache, SchemeSpec::shotgun().build(&machine)),
            (&db2, SchemeSpec::shotgun().build(&machine)),
        ];
        let consolidated = MultiSimulator::new(&machine, members, 0x5407).run(40_000, 120_000);

        let mut solo_llc_misses = 0;
        for (i, program) in [&apache, &db2].into_iter().enumerate() {
            let mut solo = Simulator::new(
                program,
                machine.clone(),
                SchemeSpec::shotgun().build(&machine),
                derive_ctx_seed(0x5407, i as u32),
            );
            let _ = solo.run(40_000, 120_000);
            solo_llc_misses += solo.mem_stats().instr_llc_misses;
            assert!(
                consolidated.contexts[i].mem.cross_evictions > 0,
                "ctx {i} must lose LLC lines to its neighbor"
            );
        }
        let shared_llc_misses: u64 = consolidated
            .contexts
            .iter()
            .map(|ctx| ctx.mem.instr_llc_misses)
            .sum();
        assert!(
            shared_llc_misses > solo_llc_misses,
            "shared-LLC contention must add misses ({shared_llc_misses} vs {solo_llc_misses} solo)"
        );
    }

    #[test]
    fn aggregate_sums_contexts_and_chip_ipc_uses_wall_clock() {
        let stats = MultiStats {
            contexts: (1..=2)
                .map(|i| ContextStats {
                    stats: SimStats {
                        cycles: 100 * i,
                        instructions: 50 * i,
                        ..Default::default()
                    },
                    mem: MemStats::default(),
                })
                .collect(),
        };
        let total = stats.aggregate();
        assert_eq!(total.cycles, 300);
        assert_eq!(total.instructions, 150);
        // Chip throughput divides by the longest window (200 cycles),
        // not the context-cycle sum.
        assert!((stats.chip_ipc() - 150.0 / 200.0).abs() < 1e-12);
    }
}
