//! The branch prediction unit stage: walks the *predicted* path one
//! basic block at a time, querying the scheme under test, and enqueues
//! fetch ranges into the FTQ (issuing FDIP-style prefetch probes as
//! ranges enter, §2.2).

use fe_model::addr::lines_covering;
use fe_uarch::scheme::{BpuOutcome, ControlFlowDelivery};

use super::{EngineScheme, FetchRange, PipelineState, BPU_BLOCKS_PER_CYCLE};

/// The prediction stage. Its throughput ([`BPU_BLOCKS_PER_CYCLE`]) lets
/// it run ahead of the backend and absorb short reactive-fill stalls;
/// all of its working state (speculative PC, FTQ, stall flag) is
/// cross-stage and lives in [`PipelineState`].
pub(crate) struct Bpu;

impl Bpu {
    /// One cycle of prediction: up to [`BPU_BLOCKS_PER_CYCLE`] blocks,
    /// stopping early when the scheme stalls.
    pub(crate) fn tick(&mut self, s: &mut PipelineState) {
        for _ in 0..BPU_BLOCKS_PER_CYCLE {
            self.step(s);
            if s.bpu_stalled {
                break;
            }
        }
    }

    fn step(&mut self, s: &mut PipelineState) {
        if s.now < s.redirect_until || s.ftq.is_full() {
            return;
        }
        if s.is_ideal() {
            self.step_ideal(s);
            return;
        }

        let pc = s.spec_pc;
        let mut outcome = BpuOutcome::Stall;
        s.with_scheme(|scheme, ctx| {
            if let EngineScheme::Real(sch) = scheme {
                outcome = sch.predict(pc, ctx);
            }
        });
        match outcome {
            BpuOutcome::Predicted(p) => {
                let range = FetchRange {
                    start: p.block.start,
                    end: p.block.end(),
                };
                self.push_ftq(s, range);
                s.spec_pc = p.next_pc;
            }
            BpuOutcome::StraightLine { pc, end } => {
                self.push_ftq(s, FetchRange { start: pc, end });
                s.spec_pc = end;
            }
            BpuOutcome::Stall => {
                s.bpu_stalled = true;
            }
        }
    }

    /// Ideal front end: the BPU emits the *actual* upcoming blocks.
    fn step_ideal(&mut self, s: &mut PipelineState) {
        if !s.fill_oracle_to(s.oracle_pos) {
            // Truncated source: nothing left to read ahead.
            s.bpu_stalled = true;
            return;
        }
        let block = s.oracle[s.oracle_pos].block;
        s.oracle_pos += 1;
        self.push_ftq(
            s,
            FetchRange {
                start: block.start,
                end: block.end(),
            },
        );
    }

    fn push_ftq(&mut self, s: &mut PipelineState, range: FetchRange) {
        let pushed = s.ftq.push(range);
        debug_assert!(pushed, "BPU must check FTQ fullness before predicting");
        // FDIP-style prefetch probes for the new fetch range (§2.2).
        let mut ftq_prefetch = false;
        if let EngineScheme::Real(sch) = &s.scheme {
            ftq_prefetch = sch.ftq_prefetch();
        }
        if ftq_prefetch {
            // `range` is Copy, so the line iterator borrows nothing
            // from the pipeline state: probe straight off it — this
            // runs for every predicted block, and used to allocate a
            // `Vec` of line addresses each time.
            s.with_ctx(|ctx| {
                for line in lines_covering(range.start, range.end) {
                    ctx.prefetch_line(line);
                }
            });
        }
    }
}
