//! The staged front-end pipeline.
//!
//! Pipeline shape (see "Simulator pipeline" in the repository README):
//!
//! ```text
//!   BPU(scheme) → FTQ → fetch unit (L1-I) → supply buffer → backend
//!        ▲                                                     │
//!        └──────────────── redirect on divergence ─────────────┘
//!
//!   sampled mode (crate::sampling): BlockSource ══▶ functional warm
//!   (L1-I/LLC residency, TAGE, RAS, scheme.warm_block) — bypasses
//!   every timed stage above, then re-arms them for the next timed
//!   detail window
//! ```
//!
//! Each stage is its own module and struct, ticked once per cycle by
//! the [`Simulator`](crate::Simulator) orchestrator against the shared
//! [`PipelineState`]:
//!
//! * [`bpu::Bpu`] advances one basic block per step along the
//!   *predicted* path, querying the scheme. Wrong paths are genuinely
//!   followed (prefetching and polluting as real hardware would) until
//!   the backend discovers the divergence.
//! * [`fetch::FetchUnit`] consumes FTQ fetch ranges one cache line per
//!   step; L1-I misses block it and are the stalls prefetching exists
//!   to remove. It also drains matured fills into the L1-I.
//! * [`supply::SupplyBuffer`] holds fetched instruction byte ranges
//!   between the fetch unit and the backend (decode/queue stages).
//! * [`backend::Backend`] retires up to `width` instructions per cycle
//!   by matching supplied address ranges against the block source's
//!   actual retired stream (a live executor walk or a replayed
//!   `fe-trace` recording); the first mismatched address is a
//!   misfetch/mispredict, discovered exactly when the offending branch
//!   retires: the pipeline flushes, the BPU redirects, and a refill
//!   bubble is charged. Retired blocks train TAGE, the RAS, and the
//!   scheme (BTB demand fills, footprint recording, history). Data
//!   misses delay retirement once they are older than the ROB can
//!   hide, coupling front-end traffic to Fig. 11's L1-D fill latency
//!   through the shared NoC queue.
//! * [`stall::StallKind`] classifies every cycle in which zero
//!   instructions retire on the correct path — the paper's front-end
//!   stall taxonomy (§6.1), in priority order.
//!
//! The module is crate-private by design: the public simulation surface
//! is the [`Simulator`](crate::Simulator) orchestrator (and
//! [`MultiSimulator`](crate::MultiSimulator) for consolidated
//! multi-context runs).

use std::collections::VecDeque;

use fe_baselines::{Boomerang, Confluence, Fdip, NoPrefetch};
use fe_cfg::Program;
use fe_model::{Addr, LineAddr, MachineConfig, RetiredBlock, SimStats};
use fe_uarch::scheme::{BpuOutcome, ControlFlowDelivery, FrontEndCtx, PredRecord};
use fe_uarch::{BoundedQueue, InflightFills, LineCache, MemorySystem, ReturnAddressStack, Tage};
use shotgun::ShotgunPrefetcher;

use crate::source::SourceKind;

pub(crate) mod backend;
pub(crate) mod bpu;
pub(crate) mod fetch;
pub(crate) mod stall;
pub(crate) mod supply;

use supply::SupplyBuffer;

/// Byte range queued for fetch.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FetchRange {
    pub(crate) start: Addr,
    pub(crate) end: Addr,
}

/// Which front end drives the BPU.
pub enum EngineScheme {
    /// A real control-flow-delivery scheme, statically dispatched over
    /// the known kinds (see [`SchemeKind`]).
    Real(SchemeKind),
    /// The ideal front end of Fig. 1: perfect BTB, perfect L1-I,
    /// direction mispredictions retained.
    Ideal,
}

impl EngineScheme {
    /// Wraps any scheme the engine knows statically — or a boxed
    /// [`ControlFlowDelivery`] for everything else — into the `Real`
    /// variant.
    pub fn real(scheme: impl Into<SchemeKind>) -> EngineScheme {
        EngineScheme::Real(scheme.into())
    }
}

/// Enum dispatch over the control-flow-delivery schemes the evaluation
/// runs. The BPU queries the scheme several times per simulated cycle
/// (`predict`, `on_demand_access`, `on_retire`, ...), so the known
/// kinds are dispatched by `match` — monomorphized and inlinable —
/// instead of through a vtable. [`ControlFlowDelivery`] remains the
/// extension seam: anything not in this list rides in
/// [`SchemeKind::Other`] with exactly the old dynamic dispatch.
pub enum SchemeKind {
    /// Conventional front end, no prefetching (the baseline).
    NoPrefetch(Box<NoPrefetch>),
    /// Fetch-directed instruction prefetching.
    Fdip(Box<Fdip>),
    /// Boomerang (FDIP + reactive BTB fill).
    Boomerang(Box<Boomerang>),
    /// Confluence (SHIFT temporal streaming).
    Confluence(Box<Confluence>),
    /// Shotgun (the paper's design).
    Shotgun(Box<ShotgunPrefetcher>),
    /// Any other [`ControlFlowDelivery`], dynamically dispatched.
    Other(Box<dyn ControlFlowDelivery>),
}

macro_rules! dispatch {
    ($kind:expr, $scheme:ident => $body:expr) => {
        match $kind {
            SchemeKind::NoPrefetch($scheme) => $body,
            SchemeKind::Fdip($scheme) => $body,
            SchemeKind::Boomerang($scheme) => $body,
            SchemeKind::Confluence($scheme) => $body,
            SchemeKind::Shotgun($scheme) => $body,
            SchemeKind::Other($scheme) => $body,
        }
    };
}

impl ControlFlowDelivery for SchemeKind {
    #[inline]
    fn name(&self) -> &'static str {
        dispatch!(self, s => s.name())
    }

    #[inline]
    fn predict(&mut self, pc: Addr, ctx: &mut FrontEndCtx) -> BpuOutcome {
        dispatch!(self, s => s.predict(pc, ctx))
    }

    #[inline]
    fn on_fill(&mut self, line: LineAddr, was_prefetch: bool, ctx: &mut FrontEndCtx) {
        dispatch!(self, s => s.on_fill(line, was_prefetch, ctx))
    }

    #[inline]
    fn on_demand_miss(&mut self, line: LineAddr, ctx: &mut FrontEndCtx) {
        dispatch!(self, s => s.on_demand_miss(line, ctx))
    }

    #[inline]
    fn on_demand_access(&mut self, line: LineAddr, ctx: &mut FrontEndCtx) {
        dispatch!(self, s => s.on_demand_access(line, ctx))
    }

    #[inline]
    fn on_retire(&mut self, rb: &RetiredBlock, ctx: &mut FrontEndCtx) {
        dispatch!(self, s => s.on_retire(rb, ctx))
    }

    #[inline]
    fn warm_block(&mut self, rb: &RetiredBlock, ctx: &mut FrontEndCtx) {
        dispatch!(self, s => s.warm_block(rb, ctx))
    }

    #[inline]
    fn on_redirect(&mut self, pc: Addr, ctx: &mut FrontEndCtx) {
        dispatch!(self, s => s.on_redirect(pc, ctx))
    }

    #[inline]
    fn ftq_prefetch(&self) -> bool {
        dispatch!(self, s => s.ftq_prefetch())
    }

    #[inline]
    fn btb_misses(&self) -> u64 {
        dispatch!(self, s => s.btb_misses())
    }

    #[inline]
    fn btb_lookups(&self) -> u64 {
        dispatch!(self, s => s.btb_lookups())
    }

    fn debug_counters(&self) -> Vec<(&'static str, u64)> {
        dispatch!(self, s => s.debug_counters())
    }
}

impl From<NoPrefetch> for SchemeKind {
    fn from(s: NoPrefetch) -> Self {
        SchemeKind::NoPrefetch(Box::new(s))
    }
}

impl From<Fdip> for SchemeKind {
    fn from(s: Fdip) -> Self {
        SchemeKind::Fdip(Box::new(s))
    }
}

impl From<Boomerang> for SchemeKind {
    fn from(s: Boomerang) -> Self {
        SchemeKind::Boomerang(Box::new(s))
    }
}

impl From<Confluence> for SchemeKind {
    fn from(s: Confluence) -> Self {
        SchemeKind::Confluence(Box::new(s))
    }
}

impl From<ShotgunPrefetcher> for SchemeKind {
    fn from(s: ShotgunPrefetcher) -> Self {
        SchemeKind::Shotgun(Box::new(s))
    }
}

impl From<Box<dyn ControlFlowDelivery>> for SchemeKind {
    fn from(s: Box<dyn ControlFlowDelivery>) -> Self {
        SchemeKind::Other(s)
    }
}

/// Cap on instructions buffered between fetch and retire (decode/queue
/// stages).
pub(crate) const SUPPLY_CAP: u64 = 48;
/// Cap on outstanding data misses (LSQ-limited MLP).
pub(crate) const DATA_MISS_CAP: usize = 16;
/// Basic blocks the BPU can predict per cycle (two-taken-branch
/// prediction throughput, letting the BPU run ahead of the 3-wide
/// backend and absorb short reactive-fill stalls).
pub(crate) const BPU_BLOCKS_PER_CYCLE: u32 = 2;
/// Cache lines the fetch unit can read per cycle.
pub(crate) const FETCH_LINES_PER_CYCLE: u32 = 2;

/// State shared by every pipeline stage of one simulated context: the
/// hardware structures, the inter-stage buffers, the cross-stage
/// signals, and the accounting.
///
/// Stage-local state (the backend's outstanding data misses, its load
/// RNG) lives in the stage structs; everything at least two stages
/// touch lives here.
pub(crate) struct PipelineState<'p> {
    pub(crate) cfg: MachineConfig,
    pub(crate) program: &'p Program,
    /// Where retired control flow comes from: a live executor walk or
    /// a trace replayer — the record/replay seam (§5.1), dispatched by
    /// enum (`next_block` runs once per retired basic block).
    pub(crate) source: SourceKind<'p>,
    pub(crate) scheme: EngineScheme,

    // Shared hardware.
    pub(crate) l1i: LineCache,
    pub(crate) mem: MemorySystem,
    pub(crate) tage: Tage,
    /// When this cell belongs to a batch retire-share group, the
    /// group's delta-log cursor; TAGE retirements then go through
    /// [`fe_uarch::Tage::retire_shared`] (see [`PipelineState::tage_retire`]).
    pub(crate) tage_share: Option<fe_uarch::TageShareCursor>,
    pub(crate) spec_ras: ReturnAddressStack,
    pub(crate) retire_ras: ReturnAddressStack,
    pub(crate) inflight: InflightFills,

    // Inter-stage buffers.
    pub(crate) ftq: BoundedQueue<FetchRange>,
    pub(crate) supply: SupplyBuffer,
    /// In-flight direction predictions (snapshot history for training).
    pub(crate) pred_trace: VecDeque<PredRecord>,
    /// The block source's actual upcoming blocks: consumed by the
    /// backend, read ahead by the ideal BPU.
    pub(crate) oracle: VecDeque<RetiredBlock>,

    // Cross-stage signals.
    pub(crate) spec_pc: Addr,
    pub(crate) waiting_line: Option<LineAddr>,
    pub(crate) redirect_until: u64,
    pub(crate) bpu_stalled: bool,
    /// For the ideal scheme: index of the next oracle block the BPU
    /// will emit.
    pub(crate) oracle_pos: usize,
    /// Instructions of the current oracle block already retired.
    pub(crate) consumed: u64,
    /// The block source returned `None`: a finite source (a trace) ran
    /// out of records. The run degrades into a reported stall and ends
    /// once the already-pulled blocks retire.
    pub(crate) source_dry: bool,

    // Time & accounting.
    pub(crate) now: u64,
    pub(crate) stats: SimStats,
    pub(crate) prefetches_issued: u64,
    pub(crate) retired_total: u64,

    // Reusable scratch (hot-loop allocation avoidance). Every buffer
    // here must be drained back to empty before its tick returns —
    // the stages assert that on entry.
    /// Matured L1-I fills staged by [`fetch::FetchUnit::process_fills`]
    /// between draining the MSHRs and installing into the cache.
    pub(crate) fill_scratch: Vec<(LineAddr, bool, bool)>,
}

impl<'p> PipelineState<'p> {
    pub(crate) fn new(
        program: &'p Program,
        cfg: MachineConfig,
        scheme: EngineScheme,
        mem: MemorySystem,
        source: SourceKind<'p>,
    ) -> Self {
        cfg.validate().expect("invalid machine configuration");
        PipelineState {
            l1i: LineCache::new(cfg.l1i),
            mem,
            tage: Tage::new(cfg.tage),
            tage_share: None,
            spec_ras: ReturnAddressStack::new(cfg.front_end.ras_entries as usize),
            retire_ras: ReturnAddressStack::new(cfg.front_end.ras_entries as usize),
            inflight: InflightFills::new(cfg.front_end.l1i_mshrs as usize),
            ftq: BoundedQueue::new(cfg.front_end.ftq_entries as usize),
            supply: SupplyBuffer::new(),
            pred_trace: VecDeque::with_capacity(64),
            oracle: VecDeque::with_capacity(64),
            spec_pc: program.entry(),
            waiting_line: None,
            redirect_until: 0,
            bpu_stalled: false,
            oracle_pos: 0,
            consumed: 0,
            source_dry: false,
            now: 0,
            stats: SimStats::default(),
            prefetches_issued: 0,
            retired_total: 0,
            fill_scratch: Vec::with_capacity(8),
            scheme,
            program,
            source,
            cfg,
        }
    }

    /// `true` when the ideal front end drives the BPU.
    /// Retires one conditional branch against TAGE, through the batch
    /// retire-share log when this cell is in a group. `hist` is the
    /// prediction-time history snapshot; `None` trains at retired
    /// history (the never-predicted case — same value `Tage::retire`
    /// uses).
    #[inline]
    pub(crate) fn tage_retire(
        &mut self,
        pc: fe_model::Addr,
        taken: bool,
        hist: Option<u128>,
    ) -> bool {
        let hist = hist.unwrap_or_else(|| self.tage.retired_snapshot());
        match self.tage_share.as_mut() {
            Some(cur) => self.tage.retire_shared(pc, taken, hist, cur),
            None => self.tage.retire_with(pc, taken, hist),
        }
    }

    pub(crate) fn is_ideal(&self) -> bool {
        matches!(self.scheme, EngineScheme::Ideal)
    }

    /// Extends the oracle so index `pos` exists. Returns `false` (and
    /// marks the source dry) when the source is exhausted before the
    /// index can be reached — the typed replacement for the old
    /// panic-on-exhaustion path.
    ///
    /// Whenever a refill is needed, a few blocks beyond `pos` are
    /// pulled in the same pass: the backend asks for the oracle head
    /// once per retired block, and read-ahead amortizes the per-call
    /// source dispatch (for the batch engine, a shared-window borrow)
    /// across `ORACLE_READAHEAD` blocks. Pure buffering — consumption
    /// order, stats, and the retired position at which dryness is
    /// observable are unchanged (an early `source_dry` flag only makes
    /// the span-skip paths decline a few end-of-stream cycles they
    /// would otherwise have skipped; every skip is result-transparent).
    pub(crate) fn fill_oracle_to(&mut self, pos: usize) -> bool {
        const ORACLE_READAHEAD: usize = 8;
        if pos < self.oracle.len() {
            return true;
        }
        let want = pos + ORACLE_READAHEAD + 1 - self.oracle.len();
        if self.source.next_blocks_into(want, &mut self.oracle) < want {
            self.source_dry = true;
        }
        pos < self.oracle.len()
    }

    /// `true` once the source has run dry and every already-pulled
    /// block has retired — nothing more can ever retire.
    pub(crate) fn stream_ended(&self) -> bool {
        self.source_dry && self.oracle.is_empty()
    }

    /// Runs `f` with the scheme and a freshly assembled context. The
    /// scheme and the context borrow disjoint fields, so this is a
    /// plain split borrow — no `Option` take/put, no moves of the
    /// scheme state on the per-cycle path.
    #[inline]
    pub(crate) fn with_scheme(&mut self, f: impl FnOnce(&mut EngineScheme, &mut FrontEndCtx)) {
        let mut ctx = FrontEndCtx {
            now: self.now,
            l1i: &mut self.l1i,
            mem: &mut self.mem,
            tage: &mut self.tage,
            spec_ras: &mut self.spec_ras,
            inflight: &mut self.inflight,
            program: self.program,
            prefetches_issued: &mut self.prefetches_issued,
            pred_trace: &mut self.pred_trace,
        };
        f(&mut self.scheme, &mut ctx);
    }

    #[inline]
    pub(crate) fn with_ctx(&mut self, f: impl FnOnce(&mut FrontEndCtx)) {
        let mut ctx = FrontEndCtx {
            now: self.now,
            l1i: &mut self.l1i,
            mem: &mut self.mem,
            tage: &mut self.tage,
            spec_ras: &mut self.spec_ras,
            inflight: &mut self.inflight,
            program: self.program,
            prefetches_issued: &mut self.prefetches_issued,
            pred_trace: &mut self.pred_trace,
        };
        f(&mut ctx);
    }
}
