//! The supply buffer: fetched instruction byte ranges parked between
//! the fetch unit and the backend (the decode/queue stages of a real
//! machine). Capacity is enforced by the fetch stage against
//! [`SUPPLY_CAP`](super::SUPPLY_CAP) in *instructions*, not ranges.

use std::collections::VecDeque;

use fe_model::{Addr, INSTR_BYTES};

/// Supplied (fetched) instruction byte range awaiting the backend.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SupplyRange {
    pub(crate) start: Addr,
    pub(crate) end: Addr,
}

/// FIFO of supplied byte ranges with an instruction-count occupancy.
#[derive(Clone, Debug, Default)]
pub(crate) struct SupplyBuffer {
    ranges: VecDeque<SupplyRange>,
    instrs: u64,
}

impl SupplyBuffer {
    pub(crate) fn new() -> Self {
        SupplyBuffer {
            ranges: VecDeque::with_capacity(16),
            instrs: 0,
        }
    }

    /// Appends the fetched bytes `[start, end)`, coalescing with the
    /// previous range when contiguous.
    pub(crate) fn deliver(&mut self, start: Addr, end: Addr) {
        self.instrs += ((end - start) as u64) / INSTR_BYTES;
        match self.ranges.back_mut() {
            Some(back) if back.end == start => back.end = end,
            _ => self.ranges.push_back(SupplyRange { start, end }),
        }
    }

    /// Oldest supplied range.
    pub(crate) fn front(&self) -> Option<&SupplyRange> {
        self.ranges.front()
    }

    /// Consumes `step` instructions from the head range, dropping it
    /// when emptied. Returns `false` — consuming nothing — when the
    /// buffer is empty or the head holds fewer than `step`
    /// instructions, so a drained supply surfaces as a typed stall at
    /// the caller instead of a panic.
    #[must_use]
    pub(crate) fn consume(&mut self, step: u64) -> bool {
        let Some(front) = self.ranges.front_mut() else {
            return false;
        };
        if ((front.end - front.start) as u64) / INSTR_BYTES < step {
            return false;
        }
        front.start += step * INSTR_BYTES;
        if front.start == front.end {
            self.ranges.pop_front();
        }
        self.instrs -= step;
        true
    }

    /// Buffered instruction count.
    pub(crate) fn instrs(&self) -> u64 {
        self.instrs
    }

    /// `true` when nothing is buffered.
    pub(crate) fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Buffered range count (diagnostics).
    pub(crate) fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Discards everything (pipeline squash).
    pub(crate) fn clear(&mut self) {
        self.ranges.clear();
        self.instrs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u64) -> Addr {
        Addr::new(x)
    }

    #[test]
    fn contiguous_ranges_coalesce() {
        let mut s = SupplyBuffer::new();
        s.deliver(a(0), a(16));
        s.deliver(a(16), a(32));
        assert_eq!(s.len(), 1, "contiguous deliveries merge");
        assert_eq!(s.instrs(), 32 / INSTR_BYTES);
        s.deliver(a(64), a(80));
        assert_eq!(s.len(), 2, "gap starts a new range");
    }

    #[test]
    fn consume_advances_and_pops() {
        let mut s = SupplyBuffer::new();
        s.deliver(a(0), a(4 * INSTR_BYTES));
        assert!(s.consume(3));
        assert_eq!(s.front().unwrap().start, a(3 * INSTR_BYTES));
        assert_eq!(s.instrs(), 1);
        assert!(s.consume(1));
        assert!(s.is_empty());
        assert_eq!(s.instrs(), 0);
    }

    #[test]
    fn consume_from_empty_supply_is_a_typed_refusal() {
        let mut s = SupplyBuffer::new();
        assert!(!s.consume(1), "empty supply refuses instead of panicking");
        assert_eq!(s.instrs(), 0);
    }

    #[test]
    fn clear_squashes() {
        let mut s = SupplyBuffer::new();
        s.deliver(a(0), a(64));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.instrs(), 0);
    }
}
