//! The backend stage: retirement against the executor's actual stream,
//! divergence discovery (misfetch/mispredict → flush + redirect),
//! predictor/scheme training, and the abstracted data side whose
//! misses couple retirement to the shared NoC (Fig. 11).

use std::collections::VecDeque;

use fe_model::{Addr, BranchKind, RetiredBlock, INSTR_BYTES};
use fe_uarch::scheme::ControlFlowDelivery;
use fe_uarch::RasEntry;

use super::{EngineScheme, PipelineState, DATA_MISS_CAP};

/// An outstanding data miss delaying retirement once it exceeds the
/// ROB shadow.
#[derive(Clone, Copy, Debug)]
struct DataMiss {
    fill_at: u64,
    instrs_at_issue: u64,
}

/// What one backend tick accomplished — consumed by the stall taxonomy.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RetireOutcome {
    /// Instructions retired this cycle.
    pub(crate) retired: u64,
    /// `true` when retirement was blocked by a data miss older than the
    /// ROB shadow (already charged as a backend stall).
    pub(crate) data_blocked: bool,
    /// `true` when retirement stopped because the block source ran dry
    /// (a truncated trace): the typed replacement for the old
    /// panic-on-exhaustion path.
    pub(crate) source_dry: bool,
}

/// The retirement stage. Owns the genuinely backend-local state: the
/// outstanding data-miss window, the load-issue accumulator and RNG,
/// and the kind of the last retired block (misfetch attribution).
pub(crate) struct Backend {
    data_misses: VecDeque<DataMiss>,
    load_acc: f64,
    lcg: u64,
    /// Kind of the most recently retired block (misfetch attribution).
    last_retired_kind: Option<BranchKind>,
}

impl Backend {
    pub(crate) fn new(seed: u64) -> Self {
        Backend {
            data_misses: VecDeque::with_capacity(DATA_MISS_CAP),
            load_acc: 0.0,
            lcg: seed | 1,
            last_retired_kind: None,
        }
    }

    /// One cycle of retirement: up to `width` instructions, matching
    /// supplied ranges against the oracle stream.
    pub(crate) fn tick(&mut self, s: &mut PipelineState) -> RetireOutcome {
        // Complete matured data misses.
        while let Some(front) = self.data_misses.front() {
            if front.fill_at <= s.now {
                self.data_misses.pop_front();
            } else {
                break;
            }
        }
        // Blocking data miss: older than the ROB shadow and unfilled.
        if let Some(front) = self.data_misses.front() {
            if s.retired_total - front.instrs_at_issue >= s.cfg.backend.miss_shadow_instrs as u64 {
                s.stats.backend_stall_cycles += 1;
                return RetireOutcome {
                    retired: 0,
                    data_blocked: true,
                    source_dry: false,
                };
            }
        }

        let mut credits = s.cfg.core.width as u64;
        let mut retired = 0u64;
        let mut source_dry = false;
        while credits > 0 {
            if !s.fill_oracle_to(0) {
                // The source ran dry: nothing left to retire against.
                // Degrade into a reported stall; the run loop ends once
                // it sees the stream is over.
                source_dry = true;
                break;
            }
            let cur = s.oracle[0];
            let expected = cur.block.start + s.consumed * INSTR_BYTES;

            // Pull supplied bytes at the expected address.
            let Some(front) = s.supply.front() else {
                break;
            };
            if front.start != expected {
                // Divergence: the front end fetched the wrong path.
                // Discovered here, at the retirement boundary of the
                // mispredicted/misfetched branch.
                self.redirect(s, expected);
                break;
            }
            let avail = ((front.end - front.start) as u64) / INSTR_BYTES;
            let remaining = cur.block.instr_count as u64 - s.consumed;
            let step = credits.min(avail).min(remaining);
            debug_assert!(step > 0, "empty supply range in buffer");

            if !s.supply.consume(step) {
                // A drained or short supply head no longer panics: the
                // cycle simply retires what it could.
                break;
            }
            s.consumed += step;
            credits -= step;
            retired += step;
            s.retired_total += step;
            s.stats.instructions += step;
            self.issue_loads(s, step);

            if s.consumed == cur.block.instr_count as u64 {
                self.retire_block(s, &cur);
                s.oracle.pop_front();
                s.oracle_pos = s.oracle_pos.saturating_sub(1);
                s.consumed = 0;
                // A redirect inside retire_block ends the cycle's work.
                if s.now < s.redirect_until {
                    break;
                }
            }
        }
        RetireOutcome {
            retired,
            data_blocked: false,
            source_dry,
        }
    }

    /// Architectural retirement of one basic block: train predictors,
    /// the retire RAS, the scheme; check the predicted next fetch
    /// address; detect ideal-mode direction mispredictions.
    fn retire_block(&mut self, s: &mut PipelineState, rb: &RetiredBlock) {
        use BranchKind::*;

        s.stats.branches += 1;
        if rb.block.kind.is_unconditional() {
            s.stats.unconditional_branches += 1;
        }

        // Direction predictor training (conditionals only). When the
        // BPU actually predicted this block, train at the history
        // snapshot the prediction used and judge that prediction;
        // blocks covered by straight-line speculation were never
        // predicted and train at retired history.
        if rb.block.kind == Conditional {
            // Pop the matching in-flight prediction, if any; a stale or
            // empty trace (flushed, or a truncated source) degrades to
            // retired-history training instead of an `expect` panic.
            let mispredicted = match s.pred_trace.front().copied() {
                Some(p) if p.block_start == rb.block.start => {
                    s.pred_trace.pop_front();
                    s.tage_retire(rb.block.branch_pc(), rb.taken, Some(p.hist));
                    p.taken != rb.taken
                }
                _ => s.tage_retire(rb.block.branch_pc(), rb.taken, None) != rb.taken,
            };
            if mispredicted {
                s.stats.direction_mispredicts += 1;
                if s.is_ideal() {
                    // Ideal front end still pays the mispredict bubble,
                    // but its supply is oracle-correct: no flush.
                    s.redirect_until = s.now + s.cfg.core.redirect_penalty as u64;
                }
            }
        }

        // Retire-side RAS.
        match rb.block.kind {
            Call | Trap => s.retire_ras.push(RasEntry {
                ret: rb.block.fall_through(),
                call_block: rb.block.start,
            }),
            Return | TrapReturn => {
                let _ = s.retire_ras.pop();
            }
            _ => {}
        }

        // Scheme training.
        s.with_scheme(|scheme, ctx| {
            if let EngineScheme::Real(sch) = scheme {
                sch.on_retire(rb, ctx);
            }
        });
        self.last_retired_kind = Some(rb.block.kind);
    }

    /// Pipeline flush + front-end redirect to `target`.
    fn redirect(&mut self, s: &mut PipelineState, target: Addr) {
        s.stats.misfetches += 1;
        match self.last_retired_kind {
            Some(BranchKind::Conditional) => s.stats.misfetch_cond += 1,
            Some(k) if k.is_return() => s.stats.misfetch_return += 1,
            Some(_) => s.stats.misfetch_uncond += 1,
            None => {}
        }
        s.supply.clear();
        s.ftq.clear();
        s.pred_trace.clear();
        s.waiting_line = None;
        s.spec_pc = target;
        s.redirect_until = s.now + s.cfg.core.redirect_penalty as u64;
        s.tage.redirect();
        s.spec_ras.restore_from(&s.retire_ras);
        s.with_scheme(|scheme, ctx| {
            if let EngineScheme::Real(sch) = scheme {
                sch.on_redirect(target, ctx);
            }
        });
    }

    /// Data-side activity for `instrs` retired instructions.
    fn issue_loads(&mut self, s: &mut PipelineState, instrs: u64) {
        self.load_acc += instrs as f64 * s.cfg.backend.load_fraction;
        while self.load_acc >= 1.0 {
            self.load_acc -= 1.0;
            s.stats.loads += 1;
            if self.draw() < s.cfg.backend.l1d_miss_rate && self.data_misses.len() < DATA_MISS_CAP {
                let fill_at = s.mem.request_data(s.now);
                s.stats.l1d_misses += 1;
                s.stats.l1d_fill_cycles += fill_at - s.now;
                self.data_misses.push_back(DataMiss {
                    fill_at,
                    instrs_at_issue: s.retired_total,
                });
            }
        }
    }

    fn draw(&mut self) -> f64 {
        fe_model::rng::splitmix64_unit(&mut self.lcg)
    }

    /// Outstanding data-miss count (diagnostics).
    pub(crate) fn data_miss_count(&self) -> usize {
        self.data_misses.len()
    }

    /// When the front data miss blocks retirement *past* `now` — it is
    /// older than the ROB shadow and its fill lies in the future —
    /// returns the fill cycle. This is the span-skip precondition: with
    /// retirement frozen the miss's age is frozen too, so [`Self::
    /// tick`] reproduces the same blocked early-return every cycle
    /// until the fill, charging one backend-stall cycle each.
    pub(crate) fn blocking_fill_at(
        &self,
        now: u64,
        retired_total: u64,
        shadow: u64,
    ) -> Option<u64> {
        let front = self.data_misses.front()?;
        (front.fill_at > now && retired_total - front.instrs_at_issue >= shadow)
            .then_some(front.fill_at)
    }

    /// Drops interval-local state when sampled simulation re-enters a
    /// timed window: outstanding data misses cannot survive the epochs
    /// of functional fast-forward between measurement intervals. The
    /// load RNG keeps its stream (per-cell determinism).
    pub(crate) fn reset_transients(&mut self) {
        self.data_misses.clear();
        self.load_acc = 0.0;
        self.last_retired_kind = None;
    }

    /// Bulk accounting for a quiescent span `[s.now, until)` the batch
    /// engine fast-forwards over (see `Simulator::try_skip_quiet_span`):
    /// zero-retire cycles whose only per-cycle state change is the stall
    /// charge itself. Reproduces the serial per-cycle classification
    /// exactly: with `retired_total` frozen, a data miss's ROB-shadow
    /// age is frozen too, so the front miss blocks either until its
    /// fill (`Backend` cycles, charged to `backend_stall_cycles` as the
    /// tick would) or not at all — and `instrs_at_issue` is
    /// nondecreasing along the queue, so once the front is
    /// non-blocking every remaining cycle of the span classifies as
    /// `Redirect`/`IcacheMiss`. Matured misses are popped exactly when
    /// the per-cycle tick would pop them.
    pub(crate) fn charge_quiet_span(
        &mut self,
        s: &mut PipelineState,
        until: u64,
        in_redirect: bool,
    ) {
        let shadow = s.cfg.backend.miss_shadow_instrs as u64;
        let mut cur = s.now;
        while cur < until {
            while let Some(front) = self.data_misses.front() {
                if front.fill_at <= cur {
                    self.data_misses.pop_front();
                } else {
                    break;
                }
            }
            match self.data_misses.front() {
                Some(front) if s.retired_total - front.instrs_at_issue >= shadow => {
                    let end = until.min(front.fill_at);
                    s.stats.backend_stall_cycles += end - cur;
                    cur = end;
                }
                _ => {
                    let n = until - cur;
                    if in_redirect {
                        s.stats.stalls.redirect += n;
                    } else {
                        s.stats.stalls.icache_miss += n;
                    }
                    cur = until;
                }
            }
        }
    }
}
