//! The §6.1 stall taxonomy as its own accounted type.
//!
//! A cycle in which zero instructions retire on the correct path is
//! classified by its *dominant* blocker, in fixed priority order:
//! backend data stall, redirect bubble, icache-miss stall,
//! BTB-resolution stall, FTQ-empty. The priority matters — a refill
//! bubble cycle often also has a miss outstanding, and must count as a
//! redirect (the paper's coverage metric depends on this partition).

use fe_model::SimStats;

use super::backend::RetireOutcome;
use super::PipelineState;

/// Why a zero-retire cycle retired nothing — one variant per §6.1
/// class, ordered by classification priority.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StallKind {
    /// The block source ran dry (truncated trace): the run is over.
    /// Terminal, so it outranks every ordinary cause.
    SourceDrained,
    /// Retirement blocked on a data miss older than the ROB shadow.
    Backend,
    /// Pipeline-refill bubble after a mispredict/misfetch redirect.
    Redirect,
    /// Fetch blocked on an L1-I miss.
    IcacheMiss,
    /// BPU stalled resolving a BTB miss with the supply dry.
    BtbResolve,
    /// FTQ ran dry for any other reason.
    FtqEmpty,
}

/// Observable blockers of one zero-retire cycle, in no particular
/// order; [`StallKind::classify`] applies the priority.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StallCauses {
    /// The block source ran out of records mid-run.
    pub(crate) source_dry: bool,
    /// A data miss older than the ROB shadow blocked retirement.
    pub(crate) data_blocked: bool,
    /// The cycle fell inside a redirect refill bubble.
    pub(crate) in_redirect: bool,
    /// The fetch unit was blocked on an L1-I miss.
    pub(crate) icache_waiting: bool,
    /// The BPU was stalled with nothing buffered downstream.
    pub(crate) bpu_starved: bool,
}

impl StallKind {
    /// Classifies a zero-retire cycle by its dominant cause.
    pub(crate) fn classify(c: StallCauses) -> StallKind {
        if c.source_dry {
            StallKind::SourceDrained
        } else if c.data_blocked {
            StallKind::Backend
        } else if c.in_redirect {
            StallKind::Redirect
        } else if c.icache_waiting {
            StallKind::IcacheMiss
        } else if c.bpu_starved {
            StallKind::BtbResolve
        } else {
            StallKind::FtqEmpty
        }
    }

    /// Charges this stall to the statistics. `Backend` charges nothing
    /// here: the backend stage already counted the cycle in
    /// `backend_stall_cycles` when it blocked. `SourceDrained` also
    /// charges nothing — the run is ending, and attributing its final
    /// cycles to a front-end class would pollute the §6.1 partition.
    pub(crate) fn charge(self, stats: &mut SimStats) {
        match self {
            StallKind::SourceDrained => {}
            StallKind::Backend => {}
            StallKind::Redirect => stats.stalls.redirect += 1,
            StallKind::IcacheMiss => stats.stalls.icache_miss += 1,
            StallKind::BtbResolve => stats.stalls.btb_resolve += 1,
            StallKind::FtqEmpty => stats.stalls.ftq_empty += 1,
        }
    }
}

/// End-of-cycle accounting for a cycle whose backend tick retired
/// nothing: observe the causes, classify, charge.
pub(crate) fn account(s: &mut PipelineState, outcome: RetireOutcome) {
    debug_assert_eq!(outcome.retired, 0, "only zero-retire cycles classify");
    let kind = StallKind::classify(StallCauses {
        source_dry: outcome.source_dry,
        data_blocked: outcome.data_blocked,
        in_redirect: s.now < s.redirect_until,
        icache_waiting: s.waiting_line.is_some(),
        bpu_starved: s.bpu_stalled && s.supply.is_empty(),
    });
    kind.charge(&mut s.stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn causes(
        data_blocked: bool,
        in_redirect: bool,
        icache_waiting: bool,
        bpu_starved: bool,
    ) -> StallCauses {
        StallCauses {
            source_dry: false,
            data_blocked,
            in_redirect,
            icache_waiting,
            bpu_starved,
        }
    }

    #[test]
    fn drained_source_is_terminal_and_uncharged() {
        let c = StallCauses {
            source_dry: true,
            data_blocked: true,
            in_redirect: true,
            icache_waiting: true,
            bpu_starved: true,
        };
        assert_eq!(StallKind::classify(c), StallKind::SourceDrained);
        let mut stats = SimStats::default();
        StallKind::SourceDrained.charge(&mut stats);
        assert_eq!(stats.stalls.front_end_total(), 0);
        assert_eq!(stats.backend_stall_cycles, 0);
    }

    #[test]
    fn redirect_dominates_icache_miss() {
        // §6.1: a cycle that is simultaneously a redirect bubble and an
        // icache-miss stall is a redirect — the flush caused the miss
        // wait to be irrelevant.
        assert_eq!(
            StallKind::classify(causes(false, true, true, false)),
            StallKind::Redirect
        );
        assert_eq!(
            StallKind::classify(causes(false, true, true, true)),
            StallKind::Redirect
        );
    }

    #[test]
    fn backend_data_stall_dominates_everything() {
        assert_eq!(
            StallKind::classify(causes(true, true, true, true)),
            StallKind::Backend
        );
    }

    #[test]
    fn icache_dominates_btb_resolve() {
        assert_eq!(
            StallKind::classify(causes(false, false, true, true)),
            StallKind::IcacheMiss
        );
    }

    #[test]
    fn btb_resolve_beats_only_ftq_empty() {
        assert_eq!(
            StallKind::classify(causes(false, false, false, true)),
            StallKind::BtbResolve
        );
    }

    #[test]
    fn nothing_observable_is_ftq_empty() {
        assert_eq!(
            StallKind::classify(StallCauses::default()),
            StallKind::FtqEmpty
        );
    }

    #[test]
    fn charge_partitions_by_kind() {
        let mut stats = SimStats::default();
        StallKind::Redirect.charge(&mut stats);
        StallKind::IcacheMiss.charge(&mut stats);
        StallKind::BtbResolve.charge(&mut stats);
        StallKind::FtqEmpty.charge(&mut stats);
        StallKind::Backend.charge(&mut stats); // counted by the backend stage
        assert_eq!(stats.stalls.redirect, 1);
        assert_eq!(stats.stalls.icache_miss, 1);
        assert_eq!(stats.stalls.btb_resolve, 1);
        assert_eq!(stats.stalls.ftq_empty, 1);
        assert_eq!(stats.stalls.front_end_total(), 4);
        assert_eq!(stats.backend_stall_cycles, 0);
    }
}
