//! The fetch stage: FTQ head consumption against the L1-I, demand-miss
//! tracking through the MSHR file, and fill completion (the point where
//! prefetched lines land in the cache and schemes predecode them).

use fe_model::{Addr, LineAddr, LINE_BYTES};
use fe_uarch::scheme::ControlFlowDelivery;

use super::{EngineScheme, FetchRange, PipelineState, FETCH_LINES_PER_CYCLE, SUPPLY_CAP};

/// The fetch unit. Its blocking state (`waiting_line`) is a cross-stage
/// signal — the stall taxonomy reads it and a redirect clears it — so
/// it lives in [`PipelineState`].
pub(crate) struct FetchUnit;

impl FetchUnit {
    /// Drains matured fills into the L1-I and runs the scheme's
    /// predecode hook. Runs at the top of every cycle, before the BPU.
    pub(crate) fn process_fills(&mut self, s: &mut PipelineState) {
        if s.inflight.is_empty() {
            // Nothing in flight — the common cycle. (Stale ready-heap
            // entries, if any, produce no fills either way; they drain
            // on a later non-empty pass.)
            return;
        }
        debug_assert!(
            s.fill_scratch.is_empty(),
            "fill scratch must be drained between ticks"
        );
        // The scratch buffer is hoisted into `PipelineState` so the
        // per-cycle loop never allocates; `take` keeps its capacity.
        let mut filled = std::mem::take(&mut s.fill_scratch);
        for (line, info) in s.inflight.pop_ready(s.now) {
            filled.push((line, info.prefetch, info.demand_merged));
        }
        for (line, prefetch, merged) in filled.drain(..) {
            if prefetch && merged {
                s.stats.prefetch.late += 1;
            }
            if let Some(evicted) = s.l1i.install(line, prefetch) {
                if evicted.wasted_prefetch {
                    s.stats.prefetch.wasted += 1;
                }
            }
            s.with_scheme(|scheme, ctx| {
                if let EngineScheme::Real(sch) = scheme {
                    sch.on_fill(line, prefetch, ctx);
                }
            });
        }
        // Hand the (drained) buffer back for the next cycle.
        s.fill_scratch = filled;
    }

    /// One cycle of fetch: up to [`FETCH_LINES_PER_CYCLE`] lines,
    /// stopping when blocked on an L1-I miss.
    pub(crate) fn tick(&mut self, s: &mut PipelineState) {
        for _ in 0..FETCH_LINES_PER_CYCLE {
            self.step(s);
            if s.waiting_line.is_some() {
                break;
            }
        }
    }

    fn step(&mut self, s: &mut PipelineState) {
        if s.now < s.redirect_until || s.supply.instrs() >= SUPPLY_CAP {
            return;
        }
        let Some(&range) = s.ftq.front() else {
            return;
        };
        let line = range.start.line();
        let is_ideal = s.is_ideal();

        let resuming = match s.waiting_line {
            Some(w) => {
                if s.l1i.probe(w) || is_ideal {
                    s.waiting_line = None;
                    true
                } else {
                    // Still blocked: keep (re)requesting in case the
                    // MSHR file was full when the miss was discovered.
                    self.ensure_demand_requested(s, w);
                    return;
                }
            }
            None => false,
        };

        if is_ideal {
            // Perfect prefetcher: every access hits.
            s.stats.l1i_accesses += 1;
            self.deliver(s, range, line);
            return;
        }

        if !resuming {
            s.stats.l1i_accesses += 1;
            s.with_scheme(|scheme, ctx| {
                if let EngineScheme::Real(sch) = scheme {
                    sch.on_demand_access(line, ctx);
                }
            });
        }

        match s.l1i.demand_access(line) {
            fe_uarch::AccessOutcome::Hit {
                first_use_of_prefetch,
            } => {
                if first_use_of_prefetch {
                    s.stats.prefetch.useful += 1;
                }
                self.deliver(s, range, line);
            }
            fe_uarch::AccessOutcome::Miss => {
                if !resuming {
                    s.stats.l1i_misses += 1;
                    s.with_scheme(|scheme, ctx| {
                        if let EngineScheme::Real(sch) = scheme {
                            sch.on_demand_miss(line, ctx);
                        }
                    });
                }
                self.ensure_demand_requested(s, line);
                s.waiting_line = Some(line);
            }
        }
    }

    /// Makes sure a fill for `line` is outstanding; retried every cycle
    /// while the fetch unit waits so a transiently full MSHR file
    /// cannot strand the demand.
    fn ensure_demand_requested(&mut self, s: &mut PipelineState, line: LineAddr) {
        if s.inflight.contains(line) {
            s.inflight.merge_demand(line);
            return;
        }
        if !s.inflight.is_full() {
            let ready = s
                .mem
                .request_instr(s.now, line, fe_uarch::MemClass::InstrDemand);
            let accepted = s.inflight.request(line, ready, false);
            debug_assert!(accepted);
        }
        // else: MSHRs full — the waiting loop retries next cycle.
    }

    /// Moves the fetched bytes of `range` that lie in `line` into the
    /// supply buffer and advances the FTQ head.
    fn deliver(&mut self, s: &mut PipelineState, range: FetchRange, line: LineAddr) {
        let line_end = Addr::new((line.get() + 1) * LINE_BYTES);
        let end = range.end.min(line_end);
        s.supply.deliver(range.start, end);
        // Advance the FTQ head range.
        let head = s.ftq.front_mut().expect("range came from the head");
        if end >= head.end {
            s.ftq.pop();
        } else {
            head.start = end;
        }
    }
}
