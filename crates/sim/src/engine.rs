//! The cycle-level decoupled front-end timing simulator — a thin
//! per-cycle orchestrator over the staged pipeline in
//! `crate::pipeline` (see that private module's docs for the
//! stage-by-stage model and the README's "Simulator pipeline"
//! diagram).

use fe_cfg::{Executor, Program};
use fe_model::{MachineConfig, SimStats};
use fe_uarch::scheme::ControlFlowDelivery;
use fe_uarch::{MemStats, MemorySystem};

use crate::pipeline::{
    backend::Backend, bpu::Bpu, fetch::FetchUnit, stall, PipelineState, SUPPLY_CAP,
};
use crate::source::SourceKind;

pub use crate::pipeline::{EngineScheme, SchemeKind};

/// The simulator for one core running one workload under one scheme:
/// the orchestrator that ticks the pipeline stages in order each cycle.
/// For consolidated multi-context runs over a shared memory system,
/// see [`MultiSimulator`](crate::MultiSimulator).
pub struct Simulator<'p> {
    pub(crate) state: PipelineState<'p>,
    bpu: Bpu,
    fetch: FetchUnit,
    pub(crate) backend: Backend,
    // Measurement bases (captured when measurement starts).
    base_cycle: u64,
    base_scheme_misses: u64,
    base_scheme_lookups: u64,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program` with the given scheme and a
    /// private memory system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(program: &'p Program, cfg: MachineConfig, scheme: EngineScheme, seed: u64) -> Self {
        let mem = MemorySystem::new(&cfg);
        Self::with_memory(program, cfg, scheme, seed, mem)
    }

    /// Builds a simulator whose memory path is supplied by the caller —
    /// the hook multi-context simulation uses to hand several pipelines
    /// handles onto one shared LLC/NoC
    /// ([`MemorySystem::shared_group`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_memory(
        program: &'p Program,
        cfg: MachineConfig,
        scheme: EngineScheme,
        seed: u64,
        mem: MemorySystem,
    ) -> Self {
        Self::with_source(
            program,
            cfg,
            scheme,
            seed,
            mem,
            Executor::new(program, seed),
        )
    }

    /// Builds a simulator whose retired stream comes from any
    /// [`SourceKind`] — the record/replay seam. A live run passes the
    /// `fe-cfg` executor (what [`Self::with_memory`] does for you); a
    /// trace-driven run passes an `fe-trace` replayer over a stream
    /// previously recorded with the same `program` and `seed`, and
    /// produces bit-identical statistics to the live run. Anything
    /// else implements [`BlockSource`](fe_model::BlockSource) and rides
    /// in boxed as [`SourceKind::Other`].
    ///
    /// `seed` still seeds the backend's load RNG (the data side is not
    /// part of the control-flow trace), so replay must pass the seed
    /// the trace was recorded with.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn with_source(
        program: &'p Program,
        cfg: MachineConfig,
        scheme: EngineScheme,
        seed: u64,
        mem: MemorySystem,
        source: impl Into<SourceKind<'p>>,
    ) -> Self {
        Simulator {
            state: PipelineState::new(program, cfg, scheme, mem, source.into()),
            bpu: Bpu,
            fetch: FetchUnit,
            backend: Backend::new(seed),
            base_cycle: 0,
            base_scheme_misses: 0,
            base_scheme_lookups: 0,
        }
    }

    /// Runs `warmup` instructions untimed-for-stats, then measures
    /// `measure` instructions and returns their statistics.
    ///
    /// A finite source (a trace) that runs out of records before the
    /// run completes ends the run early with the statistics measured so
    /// far — check [`Self::source_exhausted`] — rather than panicking.
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimStats {
        while self.state.retired_total < warmup && !self.state.stream_ended() {
            self.cycle();
        }
        self.begin_measurement();
        // Measure relative to the actual measurement start (warmup may
        // overshoot by a partial retire-width).
        let end = self.state.retired_total + measure;
        while self.state.retired_total < end && !self.state.stream_ended() {
            self.cycle();
        }
        self.finalize()
    }

    /// One simulated cycle: tick the stages front to back, then account
    /// a zero-retire cycle to the stall taxonomy.
    pub(crate) fn cycle(&mut self) {
        let s = &mut self.state;
        s.bpu_stalled = false;
        self.fetch.process_fills(s);
        self.bpu.tick(s);
        self.fetch.tick(s);
        let outcome = self.backend.tick(s);
        if outcome.retired == 0 {
            stall::account(s, outcome);
        }
        s.now += 1;
    }

    /// Arms the batch-path accelerations on this cell: the TAGE fold
    /// scratch (incrementally-maintained folded histories — bit-
    /// identical predictions, O(1) per history push). The serial path
    /// never calls this, staying the byte-for-byte reference the batch
    /// engine is checked against.
    pub(crate) fn enable_batch_accel(&mut self) {
        self.state.tage.enable_fold_scratch();
    }

    /// Joins this cell to a batch retire-share group (see
    /// [`fe_uarch::TageShare`]).
    pub(crate) fn attach_tage_share(&mut self, cursor: fe_uarch::TageShareCursor) {
        self.state.tage_share = Some(cursor);
    }

    /// This cell's retire-share sequence number, if it is in a group.
    pub(crate) fn tage_share_seq(&self) -> Option<u64> {
        self.state.tage_share.as_ref().map(|c| c.seq())
    }

    /// Repositions this cell's retire-share cursor after a shared warm
    /// installed the leader's predictor state.
    pub(crate) fn sync_tage_share(&mut self, seq: u64) {
        if let Some(cur) = self.state.tage_share.as_mut() {
            cur.sync_to(seq);
        }
    }

    /// Detaches this cell from its retire-share group so the log no
    /// longer retains deltas for it.
    pub(crate) fn release_tage_share(&mut self) {
        if let Some(cur) = self.state.tage_share.as_mut() {
            cur.release();
        }
    }

    /// Batch-path fast-forward over a *quiescent span*: a stretch of
    /// cycles in which every stage is provably inert and the only
    /// per-cycle effects are stall charges, reproduced in bulk.
    /// Dispatches on what the backend is starved of: an empty supply
    /// means the front end is the bottleneck (starved span); a
    /// non-empty supply with the backend blocked behind an aged data
    /// miss is a data-stall span. Advances `now` to the first cycle at
    /// which anything can change and returns the cycles skipped;
    /// returns 0 when the current cycle is not provably quiescent, in
    /// which case the caller runs a normal [`Self::cycle`].
    /// Bit-identical to ticking the span cycle by cycle.
    pub(crate) fn try_skip_quiet_span(&mut self) -> u64 {
        if self.state.source_dry {
            return 0;
        }
        if self.state.supply.is_empty() {
            self.try_skip_starved_span()
        } else {
            self.try_skip_data_stall_span()
        }
    }

    /// Starved-span skip: the supply is empty so the backend cannot
    /// retire, the BPU is boxed out (redirect bubble, or FTQ full) and
    /// fetch is parked (redirect, or waiting on an L1-I miss whose fill
    /// is already outstanding). The span's stall charges are reproduced
    /// by [`Backend::charge_quiet_span`].
    fn try_skip_starved_span(&mut self) -> u64 {
        let s = &mut self.state;
        let in_redirect = s.now < s.redirect_until;
        let limit = if in_redirect {
            // BPU and fetch are both gated on `now < redirect_until`;
            // fills may still mature mid-bubble and must be processed
            // at their exact cycle.
            match s.inflight.next_ready_at() {
                Some(next) => s.redirect_until.min(next),
                None => s.redirect_until,
            }
        } else {
            // Quiet only when the BPU is boxed out by a full FTQ and
            // fetch is parked on a miss it has already requested (the
            // ideal front end never parks: probe-or-ideal resumes it).
            if s.is_ideal() || !s.ftq.is_full() {
                return 0;
            }
            let Some(w) = s.waiting_line else {
                return 0;
            };
            if s.l1i.probe(w) {
                return 0;
            }
            if s.inflight.contains(w) {
                // The serial fetch unit re-merges the demand every
                // waiting cycle; merging is idempotent, so once covers
                // the whole span.
                s.inflight.merge_demand(w);
            } else if !s.inflight.is_full() {
                // The fetch unit would issue the demand request this
                // cycle — a memory-system interaction at this exact
                // timestamp, so the cycle must run for real.
                return 0;
            }
            let Some(next) = s.inflight.next_ready_at() else {
                return 0;
            };
            next
        };
        if limit <= s.now {
            return 0;
        }
        // The backend consults the oracle head every cycle of the span;
        // if the source is about to run dry, the serial path discovers
        // that mid-span — so only skip with the head already in hand.
        if !s.fill_oracle_to(0) {
            return 0;
        }
        let skipped = limit - s.now;
        self.backend.charge_quiet_span(s, limit, in_redirect);
        s.now = limit;
        skipped
    }

    /// Data-stall-span skip: the backend is blocked behind a data miss
    /// older than the ROB shadow whose fill is still in the future.
    /// Retirement — and with it `retired_total`, the clock that ages
    /// data misses — is frozen, so the block holds until the fill.
    /// When the front end is simultaneously inert (FTQ full boxes out
    /// the BPU; fetch at the supply cap or parked on an
    /// already-requested L1-I miss), the span's only per-cycle effect
    /// is the backend-stall charge. Batching that accounting into one
    /// addition is what makes skipping pay: the serial path's per-cycle
    /// early returns are individually cheap, but ~12% of all cycles
    /// sit in these windows.
    fn try_skip_data_stall_span(&mut self) -> u64 {
        let s = &mut self.state;
        // This dispatcher runs before every cycle and rejects on the
        // vast majority of them, so the pure-read preconditions are
        // ordered cheapest-reject-first.
        //
        // A redirect bubble with buffered supply (ideal-mode mispredict)
        // is rare and short: not worth proving inert here.
        if s.now < s.redirect_until {
            return 0;
        }
        // BPU inert: outside a bubble only a full FTQ boxes it out.
        if !s.ftq.is_full() {
            return 0;
        }
        let shadow = s.cfg.backend.miss_shadow_instrs as u64;
        let Some(fill_at) = self
            .backend
            .blocking_fill_at(s.now, s.retired_total, shadow)
        else {
            return 0;
        };
        // Fetch inert: at the supply cap it early-outs before touching
        // the FTQ or the miss machinery; otherwise it must be parked on
        // a miss that is already outstanding (the serial unit re-merges
        // the demand every waiting cycle — idempotent, so once covers
        // the whole span). Anything else could mutate state mid-span.
        if s.supply.instrs() < SUPPLY_CAP {
            if s.is_ideal() {
                return 0;
            }
            let Some(w) = s.waiting_line else {
                return 0;
            };
            if s.l1i.probe(w) {
                return 0;
            }
            if s.inflight.contains(w) {
                s.inflight.merge_demand(w);
            } else if !s.inflight.is_full() {
                // The fetch unit would issue the demand request this
                // cycle — a memory-system interaction at this exact
                // timestamp, so the cycle must run for real.
                return 0;
            }
        }
        // In-flight I-fills may mature mid-span and must be installed
        // at their exact cycle; stop at the earliest.
        let mut limit = fill_at;
        if let Some(next) = s.inflight.next_ready_at() {
            limit = limit.min(next);
        }
        if limit <= s.now {
            return 0;
        }
        // Every span cycle the backend tick would charge exactly one
        // backend-stall cycle and return before consulting the oracle;
        // the whole span nets to a single addition.
        let skipped = limit - s.now;
        s.stats.backend_stall_cycles += skipped;
        s.now = limit;
        skipped
    }

    pub(crate) fn begin_measurement(&mut self) {
        let s = &mut self.state;
        s.stats = SimStats::default();
        self.base_cycle = s.now;
        s.mem.reset_stats();
        if let EngineScheme::Real(sch) = &s.scheme {
            self.base_scheme_misses = sch.btb_misses();
            self.base_scheme_lookups = sch.btb_lookups();
        }
        s.prefetches_issued = 0;
    }

    pub(crate) fn finalize(&mut self) -> SimStats {
        let s = &mut self.state;
        s.stats.cycles = s.now - self.base_cycle;
        s.stats.prefetch.issued = s.prefetches_issued;
        let mem_stats = s.mem.stats();
        s.stats.noc_messages = mem_stats.messages;
        if let EngineScheme::Real(sch) = &s.scheme {
            s.stats.btb_misses = sch.btb_misses() - self.base_scheme_misses;
            s.stats.btb_lookups = sch.btb_lookups() - self.base_scheme_lookups;
        }
        s.stats.clone()
    }

    /// This context's memory-path counters (per-context traffic and
    /// interference; see [`MemStats`]).
    pub fn mem_stats(&self) -> MemStats {
        self.state.mem.stats()
    }

    /// `true` when the block source ran out of records mid-run (a
    /// truncated trace). The run degraded into a reported stall and an
    /// early end instead of panicking; callers that require a complete
    /// stream (the sweep API) check this and fail loudly themselves.
    pub fn source_exhausted(&self) -> bool {
        self.state.source_dry
    }

    // ---- testing & diagnostics surface -------------------------------
    //
    // Everything below is `#[doc(hidden)]`: a stable-enough probe
    // surface for this workspace's tests and debugging sessions, not
    // part of the simulator's public API (which is `new`/`with_memory`/
    // `run`/`mem_stats`).

    /// Current FTQ occupancy (tests).
    #[doc(hidden)]
    pub fn ftq_len(&self) -> usize {
        self.state.ftq.len()
    }

    /// Instructions buffered between fetch and retire (tests).
    #[doc(hidden)]
    pub fn supply_instrs(&self) -> u64 {
        self.state.supply.instrs()
    }

    /// Current simulated cycle (tests).
    #[doc(hidden)]
    pub fn now(&self) -> u64 {
        self.state.now
    }

    /// Instructions retired since construction (tests).
    #[doc(hidden)]
    pub fn retired(&self) -> u64 {
        self.state.retired_total
    }

    /// Advances exactly one cycle (diagnostics and tests).
    #[doc(hidden)]
    pub fn tick_once(&mut self) {
        self.cycle();
    }

    /// The scheme's self-reported diagnostic counters.
    #[doc(hidden)]
    pub fn scheme_counters(&self) -> Vec<(&'static str, u64)> {
        match &self.state.scheme {
            EngineScheme::Real(sch) => sch.debug_counters(),
            _ => Vec::new(),
        }
    }

    /// Prints internal pipeline state (diagnostics).
    #[doc(hidden)]
    pub fn dump_state(&self) {
        let s = &self.state;
        eprintln!(
            "cycle={} spec_pc={} ftq={} supply_ranges={} supply_instrs={} waiting={:?} \
             redirect_until={} bpu_stalled={} inflight={} oracle_len={} consumed={} \
             expected={:?} supply_front={:?} data_misses={}",
            s.now,
            s.spec_pc,
            s.ftq.len(),
            s.supply.len(),
            s.supply.instrs(),
            s.waiting_line,
            s.redirect_until,
            s.bpu_stalled,
            s.inflight.len(),
            s.oracle.len(),
            s.consumed,
            s.oracle
                .front()
                .map(|b| b.block.start + s.consumed * fe_model::INSTR_BYTES),
            s.supply.front().map(|r| (r.start, r.end)),
            self.backend.data_miss_count(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SUPPLY_CAP;
    use fe_cfg::{LayerSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec {
            name: "engine-test".into(),
            seed: 123,
            layers: vec![
                LayerSpec::grouped(4, 4.0),
                LayerSpec::grouped(40, 2.0),
                LayerSpec::shared(400, 0.8),
                LayerSpec::shared(300, 0.3),
            ],
            kernel_entries: 8,
            kernel_helpers: 24,
            ..WorkloadSpec::default()
        }
        .build()
    }

    fn sim(program: &Program, scheme: EngineScheme) -> Simulator<'_> {
        Simulator::new(program, MachineConfig::table3(), scheme, 9)
    }

    fn boomerang(machine: &MachineConfig) -> EngineScheme {
        EngineScheme::real(fe_baselines::Boomerang::new(
            machine.front_end.btb_entries as usize,
            machine.front_end.btb_ways as usize,
            machine.front_end.btb_prefetch_buffer as usize,
        ))
    }

    #[test]
    fn ideal_never_misses_or_misfetches() {
        let p = program();
        let mut s = sim(&p, EngineScheme::Ideal);
        let stats = s.run(50_000, 200_000);
        assert_eq!(stats.l1i_misses, 0);
        assert_eq!(stats.misfetches, 0);
        assert_eq!(stats.stalls.icache_miss, 0);
        assert_eq!(stats.stalls.btb_resolve, 0);
        assert!(stats.ipc() > 1.0, "ideal IPC {}", stats.ipc());
    }

    #[test]
    fn ideal_still_pays_mispredict_bubbles() {
        let p = program();
        let mut s = sim(&p, EngineScheme::Ideal);
        let stats = s.run(50_000, 200_000);
        assert!(stats.direction_mispredicts > 0, "TAGE is not an oracle");
        assert!(
            stats.stalls.redirect > 0,
            "mispredict bubbles must be charged"
        );
    }

    #[test]
    fn cycles_advance_monotonically_with_work() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        let before = s.now();
        for _ in 0..1000 {
            s.tick_once();
        }
        assert_eq!(s.now(), before + 1000);
        assert!(s.retired() > 0, "pipeline must retire within 1000 cycles");
    }

    #[test]
    fn ftq_and_supply_respect_bounds() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        for _ in 0..20_000 {
            s.tick_once();
            assert!(s.ftq_len() <= machine.front_end.ftq_entries as usize);
            assert!(s.supply_instrs() <= SUPPLY_CAP + fe_model::LINE_INSTRS);
        }
    }

    #[test]
    fn stall_classes_partition_zero_retire_cycles() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        let stats = s.run(50_000, 300_000);
        let classified = stats.stalls.front_end_total() + stats.backend_stall_cycles;
        // Total cycles >= classified stalls + cycles that retired work.
        let min_busy = stats.instructions / machine.core.width as u64;
        assert!(classified + min_busy <= stats.cycles + 1);
        // And the run must have seen several stall classes.
        assert!(stats.stalls.redirect > 0);
        // Boomerang may fully cover I-cache stalls on this small
        // fixture; the baseline cannot.
        let mut base = sim(
            &p,
            EngineScheme::real(fe_baselines::NoPrefetch::new(2048, 4)),
        );
        let base_stats = base.run(50_000, 300_000);
        assert!(base_stats.stalls.icache_miss > 0);
    }

    #[test]
    fn prefetch_accounting_balances() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        let stats = s.run(100_000, 400_000);
        assert!(
            stats.prefetch.issued > 0,
            "FDIP-style prefetching must fire"
        );
        // Prefetched lines resident when measurement starts may be
        // judged during it, so the balance holds up to one L1-I of
        // carry-over.
        let carry = machine.l1i.lines() as u64;
        assert!(
            stats.prefetch.useful + stats.prefetch.wasted <= stats.prefetch.issued + carry,
            "judged prefetches cannot exceed issued + resident ({} + {} vs {} + {})",
            stats.prefetch.useful,
            stats.prefetch.wasted,
            stats.prefetch.issued,
            carry,
        );
    }

    #[test]
    fn scheme_counters_surface() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        let _ = s.run(20_000, 50_000);
        let counters = s.scheme_counters();
        assert!(counters.iter().any(|(name, _)| *name == "reactive_fills"));
    }

    #[test]
    fn redirect_penalty_scales_bubble_cycles() {
        let p = program();
        let mut fast_cfg = MachineConfig::table3();
        fast_cfg.core.redirect_penalty = 4;
        let mut slow_cfg = MachineConfig::table3();
        slow_cfg.core.redirect_penalty = 24;
        let mut fast = Simulator::new(
            &p,
            fast_cfg,
            EngineScheme::real(fe_baselines::NoPrefetch::new(2048, 4)),
            9,
        );
        let mut slow = Simulator::new(
            &p,
            slow_cfg,
            EngineScheme::real(fe_baselines::NoPrefetch::new(2048, 4)),
            9,
        );
        let f = fast.run(50_000, 200_000);
        let s = slow.run(50_000, 200_000);
        assert!(
            s.stalls.redirect > f.stalls.redirect,
            "bigger penalty, more bubbles"
        );
        assert!(s.cycles > f.cycles);
    }
}
