//! The cycle-level decoupled front-end timing simulator.
//!
//! Pipeline shape (see "Simulator pipeline" in the repository README):
//!
//! ```text
//!   BPU(scheme) → FTQ → fetch unit (L1-I) → supply buffer → backend
//!        ▲                                                     │
//!        └──────────────── redirect on divergence ─────────────┘
//! ```
//!
//! * The **BPU** advances one basic block per cycle along the
//!   *predicted* path, querying the scheme. Wrong paths are genuinely
//!   followed (prefetching and polluting as real hardware would) until
//!   the backend discovers the divergence.
//! * The **fetch unit** consumes FTQ fetch ranges one cache line per
//!   cycle; L1-I misses block it and are the stalls prefetching exists
//!   to remove.
//! * The **backend** retires up to `width` instructions per cycle by
//!   matching supplied address ranges against the executor's actual
//!   retired stream; the first mismatched address is a
//!   misfetch/mispredict, discovered exactly when the offending branch
//!   retires: the pipeline flushes, the BPU redirects, and a
//!   refill bubble is charged. Retired blocks train TAGE, the RAS, and
//!   the scheme (BTB demand fills, footprint recording, history).
//! * Data misses delay retirement once they are older than the ROB can
//!   hide, coupling front-end traffic to Fig. 11's L1-D fill latency
//!   through the shared NoC queue.
//!
//! A cycle in which zero instructions retire on the correct path is
//! classified (in priority order) as a backend data stall, a redirect
//! bubble, an icache-miss stall, a BTB-resolution stall, or FTQ-empty —
//! the paper's front-end stall taxonomy (§6.1).

use std::collections::VecDeque;

use fe_cfg::{Executor, Program};
use fe_model::addr::lines_covering;
use fe_model::{Addr, LineAddr, MachineConfig, RetiredBlock, SimStats, INSTR_BYTES, LINE_BYTES};
use fe_uarch::scheme::{BpuOutcome, ControlFlowDelivery, FrontEndCtx, PredRecord};
use fe_uarch::{
    BoundedQueue, InflightFills, LineCache, MemorySystem, RasEntry, ReturnAddressStack, Tage,
};

/// Byte range queued for fetch.
#[derive(Clone, Copy, Debug)]
struct FetchRange {
    start: Addr,
    end: Addr,
}

/// Supplied (fetched) instruction byte range awaiting the backend.
#[derive(Clone, Copy, Debug)]
struct SupplyRange {
    start: Addr,
    end: Addr,
}

/// An outstanding data miss delaying retirement once it exceeds the
/// ROB shadow.
#[derive(Clone, Copy, Debug)]
struct DataMiss {
    fill_at: u64,
    instrs_at_issue: u64,
}

/// Which front end drives the BPU.
pub enum EngineScheme {
    /// A real control-flow-delivery scheme.
    Real(Box<dyn ControlFlowDelivery>),
    /// The ideal front end of Fig. 1: perfect BTB, perfect L1-I,
    /// direction mispredictions retained.
    Ideal,
}

/// Cap on instructions buffered between fetch and retire (decode/queue
/// stages).
const SUPPLY_CAP: u64 = 48;
/// Cap on outstanding data misses (LSQ-limited MLP).
const DATA_MISS_CAP: usize = 16;
/// Basic blocks the BPU can predict per cycle (two-taken-branch
/// prediction throughput, letting the BPU run ahead of the 3-wide
/// backend and absorb short reactive-fill stalls).
const BPU_BLOCKS_PER_CYCLE: u32 = 2;
/// Cache lines the fetch unit can read per cycle.
const FETCH_LINES_PER_CYCLE: u32 = 2;

/// The simulator for one core running one workload under one scheme.
pub struct Simulator<'p> {
    cfg: MachineConfig,
    program: &'p Program,
    exec: Executor<'p>,
    scheme: Option<EngineScheme>,

    // Shared hardware.
    l1i: LineCache,
    mem: MemorySystem,
    tage: Tage,
    spec_ras: ReturnAddressStack,
    retire_ras: ReturnAddressStack,
    inflight: InflightFills,

    // Front-end state.
    ftq: BoundedQueue<FetchRange>,
    spec_pc: Addr,
    waiting_line: Option<LineAddr>,
    redirect_until: u64,
    bpu_stalled: bool,

    // Instruction supply.
    supply: VecDeque<SupplyRange>,
    supply_instrs: u64,

    /// In-flight direction predictions (snapshot history for training).
    pred_trace: VecDeque<PredRecord>,

    // Backend state.
    oracle: VecDeque<RetiredBlock>,
    /// Instructions of the current block already retired.
    consumed: u64,
    /// For the ideal scheme: index of the next oracle block the BPU
    /// will emit.
    oracle_pos: usize,
    data_misses: VecDeque<DataMiss>,
    load_acc: f64,
    lcg: u64,
    /// Kind of the most recently retired block (misfetch attribution).
    last_retired_kind: Option<fe_model::BranchKind>,

    // Time & accounting.
    now: u64,
    stats: SimStats,
    prefetches_issued: u64,
    retired_total: u64,
    // Measurement bases (captured when measurement starts).
    base_cycle: u64,
    base_scheme_misses: u64,
    base_scheme_lookups: u64,
    base_noc_messages: u64,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program` with the given scheme.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(program: &'p Program, cfg: MachineConfig, scheme: EngineScheme, seed: u64) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let exec = Executor::new(program, seed);
        Simulator {
            l1i: LineCache::new(cfg.l1i),
            mem: MemorySystem::new(&cfg),
            tage: Tage::new(cfg.tage),
            spec_ras: ReturnAddressStack::new(cfg.front_end.ras_entries as usize),
            retire_ras: ReturnAddressStack::new(cfg.front_end.ras_entries as usize),
            inflight: InflightFills::new(cfg.front_end.l1i_mshrs as usize),
            ftq: BoundedQueue::new(cfg.front_end.ftq_entries as usize),
            spec_pc: program.entry(),
            waiting_line: None,
            redirect_until: 0,
            bpu_stalled: false,
            supply: VecDeque::with_capacity(16),
            supply_instrs: 0,
            pred_trace: VecDeque::with_capacity(64),
            oracle: VecDeque::with_capacity(64),
            consumed: 0,
            oracle_pos: 0,
            data_misses: VecDeque::with_capacity(DATA_MISS_CAP),
            load_acc: 0.0,
            lcg: seed | 1,
            last_retired_kind: None,
            now: 0,
            stats: SimStats::default(),
            prefetches_issued: 0,
            retired_total: 0,
            base_cycle: 0,
            base_scheme_misses: 0,
            base_scheme_lookups: 0,
            base_noc_messages: 0,
            scheme: Some(scheme),
            program,
            exec,
            cfg,
        }
    }

    /// Runs `warmup` instructions untimed-for-stats, then measures
    /// `measure` instructions and returns their statistics.
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimStats {
        while self.retired_total < warmup {
            self.cycle();
        }
        self.begin_measurement();
        // Measure relative to the actual measurement start (warmup may
        // overshoot by a partial retire-width).
        let end = self.retired_total + measure;
        while self.retired_total < end {
            self.cycle();
        }
        self.finalize()
    }

    fn begin_measurement(&mut self) {
        self.stats = SimStats::default();
        self.base_cycle = self.now;
        self.mem.reset_stats();
        self.base_noc_messages = 0;
        if let Some(EngineScheme::Real(s)) = &self.scheme {
            self.base_scheme_misses = s.btb_misses();
            self.base_scheme_lookups = s.btb_lookups();
        }
        self.prefetches_issued = 0;
    }

    fn finalize(&mut self) -> SimStats {
        self.stats.cycles = self.now - self.base_cycle;
        self.stats.prefetch.issued = self.prefetches_issued;
        let mem_stats = self.mem.stats();
        self.stats.noc_messages = mem_stats.messages;
        if let Some(EngineScheme::Real(s)) = &self.scheme {
            self.stats.btb_misses = s.btb_misses() - self.base_scheme_misses;
            self.stats.btb_lookups = s.btb_lookups() - self.base_scheme_lookups;
        }
        self.stats.clone()
    }

    /// One simulated cycle.
    fn cycle(&mut self) {
        self.bpu_stalled = false;
        self.process_fills();
        for _ in 0..BPU_BLOCKS_PER_CYCLE {
            self.bpu_step();
            if self.bpu_stalled {
                break;
            }
        }
        for _ in 0..FETCH_LINES_PER_CYCLE {
            self.fetch_step();
            if self.waiting_line.is_some() {
                break;
            }
        }
        let retired = self.backend_step();
        if retired == 0 {
            self.classify_stall();
        }
        self.now += 1;
    }

    // ---- fills -------------------------------------------------------

    fn process_fills(&mut self) {
        let mut filled: Vec<(LineAddr, bool, bool)> = Vec::new();
        for (line, info) in self.inflight.pop_ready(self.now) {
            filled.push((line, info.prefetch, info.demand_merged));
        }
        for (line, prefetch, merged) in filled {
            if prefetch && merged {
                self.stats.prefetch.late += 1;
            }
            if let Some(evicted) = self.l1i.install(line, prefetch) {
                if evicted.wasted_prefetch {
                    self.stats.prefetch.wasted += 1;
                }
            }
            self.with_scheme(|scheme, ctx| {
                if let EngineScheme::Real(s) = scheme {
                    s.on_fill(line, prefetch, ctx);
                }
            });
        }
    }

    // ---- BPU ---------------------------------------------------------

    fn bpu_step(&mut self) {
        if self.now < self.redirect_until || self.ftq.is_full() {
            return;
        }
        let is_ideal = matches!(self.scheme, Some(EngineScheme::Ideal));
        if is_ideal {
            self.bpu_step_ideal();
            return;
        }

        let pc = self.spec_pc;
        let mut outcome = BpuOutcome::Stall;
        self.with_scheme(|scheme, ctx| {
            if let EngineScheme::Real(s) = scheme {
                outcome = s.predict(pc, ctx);
            }
        });
        match outcome {
            BpuOutcome::Predicted(p) => {
                let range = FetchRange {
                    start: p.block.start,
                    end: p.block.end(),
                };
                self.push_ftq(range);
                self.spec_pc = p.next_pc;
            }
            BpuOutcome::StraightLine { pc, end } => {
                self.push_ftq(FetchRange { start: pc, end });
                self.spec_pc = end;
            }
            BpuOutcome::Stall => {
                self.bpu_stalled = true;
            }
        }
    }

    /// Ideal front end: the BPU emits the *actual* upcoming blocks.
    fn bpu_step_ideal(&mut self) {
        while self.oracle_pos >= self.oracle.len() {
            let next = self.exec.next_block();
            self.oracle.push_back(next);
        }
        let block = self.oracle[self.oracle_pos].block;
        self.oracle_pos += 1;
        self.push_ftq(FetchRange {
            start: block.start,
            end: block.end(),
        });
    }

    fn push_ftq(&mut self, range: FetchRange) {
        let pushed = self.ftq.push(range);
        debug_assert!(pushed, "BPU must check FTQ fullness before predicting");
        // FDIP-style prefetch probes for the new fetch range (§2.2).
        let mut ftq_prefetch = false;
        if let Some(EngineScheme::Real(s)) = &self.scheme {
            ftq_prefetch = s.ftq_prefetch();
        }
        if ftq_prefetch {
            let lines: Vec<LineAddr> = lines_covering(range.start, range.end).collect();
            self.with_ctx(|ctx| {
                for line in lines {
                    ctx.prefetch_line(line);
                }
            });
        }
    }

    // ---- fetch -------------------------------------------------------

    fn fetch_step(&mut self) {
        if self.now < self.redirect_until || self.supply_instrs >= SUPPLY_CAP {
            return;
        }
        let Some(&range) = self.ftq.front() else {
            return;
        };
        let line = range.start.line();
        let is_ideal = matches!(self.scheme, Some(EngineScheme::Ideal));

        let resuming = match self.waiting_line {
            Some(w) => {
                if self.l1i.probe(w) || is_ideal {
                    self.waiting_line = None;
                    true
                } else {
                    // Still blocked: keep (re)requesting in case the
                    // MSHR file was full when the miss was discovered.
                    self.ensure_demand_requested(w);
                    return;
                }
            }
            None => false,
        };

        if is_ideal {
            // Perfect prefetcher: every access hits.
            self.stats.l1i_accesses += 1;
            self.deliver(range, line);
            return;
        }

        if !resuming {
            self.stats.l1i_accesses += 1;
            let l = line;
            self.with_scheme(|scheme, ctx| {
                if let EngineScheme::Real(s) = scheme {
                    s.on_demand_access(l, ctx);
                }
            });
        }

        match self.l1i.demand_access(line) {
            fe_uarch::AccessOutcome::Hit {
                first_use_of_prefetch,
            } => {
                if first_use_of_prefetch {
                    self.stats.prefetch.useful += 1;
                }
                self.deliver(range, line);
            }
            fe_uarch::AccessOutcome::Miss => {
                if !resuming {
                    self.stats.l1i_misses += 1;
                    let l = line;
                    self.with_scheme(|scheme, ctx| {
                        if let EngineScheme::Real(s) = scheme {
                            s.on_demand_miss(l, ctx);
                        }
                    });
                }
                self.ensure_demand_requested(line);
                self.waiting_line = Some(line);
            }
        }
    }

    /// Makes sure a fill for `line` is outstanding; retried every cycle
    /// while the fetch unit waits so a transiently full MSHR file
    /// cannot strand the demand.
    fn ensure_demand_requested(&mut self, line: LineAddr) {
        if self.inflight.contains(line) {
            self.inflight.merge_demand(line);
            return;
        }
        if !self.inflight.is_full() {
            let ready = self
                .mem
                .request_instr(self.now, line, fe_uarch::MemClass::InstrDemand);
            let accepted = self.inflight.request(line, ready, false);
            debug_assert!(accepted);
        }
        // else: MSHRs full — the waiting loop retries next cycle.
    }

    /// Moves the fetched bytes of `range` that lie in `line` into the
    /// supply buffer and advances the FTQ head.
    fn deliver(&mut self, range: FetchRange, line: LineAddr) {
        let line_end = Addr::new((line.get() + 1) * LINE_BYTES);
        let end = range.end.min(line_end);
        let instrs = ((end - range.start) as u64) / INSTR_BYTES;
        self.supply_instrs += instrs;
        // Coalesce with the previous supply range when contiguous.
        match self.supply.back_mut() {
            Some(back) if back.end == range.start => back.end = end,
            _ => self.supply.push_back(SupplyRange {
                start: range.start,
                end,
            }),
        }
        // Advance the FTQ head range.
        let head = self.ftq.front_mut().expect("range came from the head");
        if end >= head.end {
            self.ftq.pop();
        } else {
            head.start = end;
        }
    }

    // ---- backend -----------------------------------------------------

    fn backend_step(&mut self) -> u64 {
        // Complete matured data misses.
        while let Some(front) = self.data_misses.front() {
            if front.fill_at <= self.now {
                self.data_misses.pop_front();
            } else {
                break;
            }
        }
        // Blocking data miss: older than the ROB shadow and unfilled.
        if let Some(front) = self.data_misses.front() {
            if self.retired_total - front.instrs_at_issue
                >= self.cfg.backend.miss_shadow_instrs as u64
            {
                self.stats.backend_stall_cycles += 1;
                return 0;
            }
        }

        let mut credits = self.cfg.core.width as u64;
        let mut retired = 0u64;
        while credits > 0 {
            if self.oracle.is_empty() {
                let next = self.exec.next_block();
                self.oracle.push_back(next);
            }
            let cur = self.oracle[0];
            let expected = cur.block.start + self.consumed * INSTR_BYTES;

            // Pull supplied bytes at the expected address.
            let Some(front) = self.supply.front_mut() else {
                break;
            };
            if front.start != expected {
                // Divergence: the front end fetched the wrong path.
                // Discovered here, at the retirement boundary of the
                // mispredicted/misfetched branch.
                self.redirect(expected);
                break;
            }
            let avail = ((front.end - front.start) as u64) / INSTR_BYTES;
            let remaining = cur.block.instr_count as u64 - self.consumed;
            let step = credits.min(avail).min(remaining);
            debug_assert!(step > 0, "empty supply range in buffer");

            front.start += step * INSTR_BYTES;
            if front.start == front.end {
                self.supply.pop_front();
            }
            self.supply_instrs -= step;
            self.consumed += step;
            credits -= step;
            retired += step;
            self.retired_total += step;
            self.stats.instructions += step;
            self.issue_loads(step);

            if self.consumed == cur.block.instr_count as u64 {
                self.retire_block(&cur);
                self.oracle.pop_front();
                self.oracle_pos = self.oracle_pos.saturating_sub(1);
                self.consumed = 0;
                // A redirect inside retire_block ends the cycle's work.
                if self.now < self.redirect_until {
                    break;
                }
            }
        }
        retired
    }

    /// Architectural retirement of one basic block: train predictors,
    /// the retire RAS, the scheme; check the predicted next fetch
    /// address; detect ideal-mode direction mispredictions.
    fn retire_block(&mut self, rb: &RetiredBlock) {
        use fe_model::BranchKind::*;

        self.stats.branches += 1;
        if rb.block.kind.is_unconditional() {
            self.stats.unconditional_branches += 1;
        }

        // Direction predictor training (conditionals only). When the
        // BPU actually predicted this block, train at the history
        // snapshot the prediction used and judge that prediction;
        // blocks covered by straight-line speculation were never
        // predicted and train at retired history.
        if rb.block.kind == Conditional {
            let matched = self
                .pred_trace
                .front()
                .is_some_and(|p| p.block_start == rb.block.start);
            let mispredicted = if matched {
                let p = self.pred_trace.pop_front().expect("front exists");
                self.tage
                    .retire_with(rb.block.branch_pc(), rb.taken, p.hist);
                p.taken != rb.taken
            } else {
                self.tage.retire(rb.block.branch_pc(), rb.taken) != rb.taken
            };
            if mispredicted {
                self.stats.direction_mispredicts += 1;
                if matches!(self.scheme, Some(EngineScheme::Ideal)) {
                    // Ideal front end still pays the mispredict bubble,
                    // but its supply is oracle-correct: no flush.
                    self.redirect_until = self.now + self.cfg.core.redirect_penalty as u64;
                }
            }
        }

        // Retire-side RAS.
        match rb.block.kind {
            Call | Trap => self.retire_ras.push(RasEntry {
                ret: rb.block.fall_through(),
                call_block: rb.block.start,
            }),
            Return | TrapReturn => {
                let _ = self.retire_ras.pop();
            }
            _ => {}
        }

        // Scheme training.
        self.with_scheme(|scheme, ctx| {
            if let EngineScheme::Real(s) = scheme {
                s.on_retire(rb, ctx);
            }
        });
        self.last_retired_kind = Some(rb.block.kind);
    }

    /// Pipeline flush + front-end redirect to `target`.
    fn redirect(&mut self, target: Addr) {
        self.stats.misfetches += 1;
        match self.last_retired_kind {
            Some(fe_model::BranchKind::Conditional) => self.stats.misfetch_cond += 1,
            Some(k) if k.is_return() => self.stats.misfetch_return += 1,
            Some(_) => self.stats.misfetch_uncond += 1,
            None => {}
        }
        self.supply.clear();
        self.supply_instrs = 0;
        self.ftq.clear();
        self.pred_trace.clear();
        self.waiting_line = None;
        self.spec_pc = target;
        self.redirect_until = self.now + self.cfg.core.redirect_penalty as u64;
        self.tage.redirect();
        self.spec_ras.restore_from(&self.retire_ras);
        self.with_scheme(|scheme, ctx| {
            if let EngineScheme::Real(s) = scheme {
                s.on_redirect(target, ctx);
            }
        });
    }

    /// Data-side activity for `instrs` retired instructions.
    fn issue_loads(&mut self, instrs: u64) {
        self.load_acc += instrs as f64 * self.cfg.backend.load_fraction;
        while self.load_acc >= 1.0 {
            self.load_acc -= 1.0;
            self.stats.loads += 1;
            if self.draw() < self.cfg.backend.l1d_miss_rate
                && self.data_misses.len() < DATA_MISS_CAP
            {
                let fill_at = self.mem.request_data(self.now);
                self.stats.l1d_misses += 1;
                self.stats.l1d_fill_cycles += fill_at - self.now;
                self.data_misses.push_back(DataMiss {
                    fill_at,
                    instrs_at_issue: self.retired_total,
                });
            }
        }
    }

    // ---- stall classification -----------------------------------------

    fn classify_stall(&mut self) {
        if let Some(front) = self.data_misses.front() {
            if self.retired_total - front.instrs_at_issue
                >= self.cfg.backend.miss_shadow_instrs as u64
            {
                // Already counted as a backend stall in backend_step.
                return;
            }
        }
        if self.now < self.redirect_until {
            self.stats.stalls.redirect += 1;
        } else if self.waiting_line.is_some() {
            self.stats.stalls.icache_miss += 1;
        } else if self.bpu_stalled && self.supply.is_empty() {
            self.stats.stalls.btb_resolve += 1;
        } else {
            self.stats.stalls.ftq_empty += 1;
        }
    }

    // ---- helpers -------------------------------------------------------

    /// Runs `f` with the scheme and a freshly assembled context
    /// (split-borrow helper).
    fn with_scheme(&mut self, f: impl FnOnce(&mut EngineScheme, &mut FrontEndCtx)) {
        let mut scheme = self.scheme.take().expect("scheme present");
        let mut ctx = FrontEndCtx {
            now: self.now,
            l1i: &mut self.l1i,
            mem: &mut self.mem,
            tage: &mut self.tage,
            spec_ras: &mut self.spec_ras,
            inflight: &mut self.inflight,
            program: self.program,
            prefetches_issued: &mut self.prefetches_issued,
            pred_trace: &mut self.pred_trace,
        };
        f(&mut scheme, &mut ctx);
        self.scheme = Some(scheme);
    }

    fn with_ctx(&mut self, f: impl FnOnce(&mut FrontEndCtx)) {
        let mut ctx = FrontEndCtx {
            now: self.now,
            l1i: &mut self.l1i,
            mem: &mut self.mem,
            tage: &mut self.tage,
            spec_ras: &mut self.spec_ras,
            inflight: &mut self.inflight,
            program: self.program,
            prefetches_issued: &mut self.prefetches_issued,
            pred_trace: &mut self.pred_trace,
        };
        f(&mut ctx);
    }

    fn draw(&mut self) -> f64 {
        self.lcg = self.lcg.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.lcg;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Current FTQ occupancy (tests).
    pub fn ftq_len(&self) -> usize {
        self.ftq.len()
    }

    /// Instructions buffered between fetch and retire (tests).
    pub fn supply_instrs(&self) -> u64 {
        self.supply_instrs
    }

    /// Current simulated cycle (tests).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Instructions retired since construction (tests).
    pub fn retired(&self) -> u64 {
        self.retired_total
    }

    /// Advances exactly one cycle (diagnostics and tests).
    pub fn tick_once(&mut self) {
        self.cycle();
    }

    /// The scheme's self-reported diagnostic counters.
    pub fn scheme_counters(&self) -> Vec<(&'static str, u64)> {
        match &self.scheme {
            Some(EngineScheme::Real(s)) => s.debug_counters(),
            _ => Vec::new(),
        }
    }

    /// Prints internal pipeline state (diagnostics).
    pub fn dump_state(&self) {
        eprintln!(
            "cycle={} spec_pc={} ftq={} supply_ranges={} supply_instrs={} waiting={:?} \
             redirect_until={} bpu_stalled={} inflight={} oracle_len={} consumed={} \
             expected={:?} supply_front={:?} data_misses={}",
            self.now,
            self.spec_pc,
            self.ftq.len(),
            self.supply.len(),
            self.supply_instrs,
            self.waiting_line,
            self.redirect_until,
            self.bpu_stalled,
            self.inflight.len(),
            self.oracle.len(),
            self.consumed,
            self.oracle
                .front()
                .map(|b| b.block.start + self.consumed * INSTR_BYTES),
            self.supply.front().map(|r| (r.start, r.end)),
            self.data_misses.len(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cfg::{LayerSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec {
            name: "engine-test".into(),
            seed: 123,
            layers: vec![
                LayerSpec::grouped(4, 4.0),
                LayerSpec::grouped(40, 2.0),
                LayerSpec::shared(400, 0.8),
                LayerSpec::shared(300, 0.3),
            ],
            kernel_entries: 8,
            kernel_helpers: 24,
            ..WorkloadSpec::default()
        }
        .build()
    }

    fn sim(program: &Program, scheme: EngineScheme) -> Simulator<'_> {
        Simulator::new(program, MachineConfig::table3(), scheme, 9)
    }

    fn boomerang(machine: &MachineConfig) -> EngineScheme {
        EngineScheme::Real(Box::new(fe_baselines::Boomerang::new(
            machine.front_end.btb_entries as usize,
            machine.front_end.btb_ways as usize,
            machine.front_end.btb_prefetch_buffer as usize,
        )))
    }

    #[test]
    fn ideal_never_misses_or_misfetches() {
        let p = program();
        let mut s = sim(&p, EngineScheme::Ideal);
        let stats = s.run(50_000, 200_000);
        assert_eq!(stats.l1i_misses, 0);
        assert_eq!(stats.misfetches, 0);
        assert_eq!(stats.stalls.icache_miss, 0);
        assert_eq!(stats.stalls.btb_resolve, 0);
        assert!(stats.ipc() > 1.0, "ideal IPC {}", stats.ipc());
    }

    #[test]
    fn ideal_still_pays_mispredict_bubbles() {
        let p = program();
        let mut s = sim(&p, EngineScheme::Ideal);
        let stats = s.run(50_000, 200_000);
        assert!(stats.direction_mispredicts > 0, "TAGE is not an oracle");
        assert!(
            stats.stalls.redirect > 0,
            "mispredict bubbles must be charged"
        );
    }

    #[test]
    fn cycles_advance_monotonically_with_work() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        let before = s.now();
        for _ in 0..1000 {
            s.tick_once();
        }
        assert_eq!(s.now(), before + 1000);
        assert!(s.retired() > 0, "pipeline must retire within 1000 cycles");
    }

    #[test]
    fn ftq_and_supply_respect_bounds() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        for _ in 0..20_000 {
            s.tick_once();
            assert!(s.ftq_len() <= machine.front_end.ftq_entries as usize);
            assert!(s.supply_instrs() <= SUPPLY_CAP + fe_model::LINE_INSTRS);
        }
    }

    #[test]
    fn stall_classes_partition_zero_retire_cycles() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        let stats = s.run(50_000, 300_000);
        let classified = stats.stalls.front_end_total() + stats.backend_stall_cycles;
        // Total cycles >= classified stalls + cycles that retired work.
        let min_busy = stats.instructions / machine.core.width as u64;
        assert!(classified + min_busy <= stats.cycles + 1);
        // And the run must have seen several stall classes.
        assert!(stats.stalls.redirect > 0);
        // Boomerang may fully cover I-cache stalls on this small
        // fixture; the baseline cannot.
        let mut base = sim(
            &p,
            EngineScheme::Real(Box::new(fe_baselines::NoPrefetch::new(2048, 4))),
        );
        let base_stats = base.run(50_000, 300_000);
        assert!(base_stats.stalls.icache_miss > 0);
    }

    #[test]
    fn prefetch_accounting_balances() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        let stats = s.run(100_000, 400_000);
        assert!(
            stats.prefetch.issued > 0,
            "FDIP-style prefetching must fire"
        );
        // Prefetched lines resident when measurement starts may be
        // judged during it, so the balance holds up to one L1-I of
        // carry-over.
        let carry = machine.l1i.lines() as u64;
        assert!(
            stats.prefetch.useful + stats.prefetch.wasted <= stats.prefetch.issued + carry,
            "judged prefetches cannot exceed issued + resident ({} + {} vs {} + {})",
            stats.prefetch.useful,
            stats.prefetch.wasted,
            stats.prefetch.issued,
            carry,
        );
    }

    #[test]
    fn scheme_counters_surface() {
        let p = program();
        let machine = MachineConfig::table3();
        let mut s = sim(&p, boomerang(&machine));
        let _ = s.run(20_000, 50_000);
        let counters = s.scheme_counters();
        assert!(counters.iter().any(|(name, _)| *name == "reactive_fills"));
    }

    #[test]
    fn redirect_penalty_scales_bubble_cycles() {
        let p = program();
        let mut fast_cfg = MachineConfig::table3();
        fast_cfg.core.redirect_penalty = 4;
        let mut slow_cfg = MachineConfig::table3();
        slow_cfg.core.redirect_penalty = 24;
        let mut fast = Simulator::new(
            &p,
            fast_cfg,
            EngineScheme::Real(Box::new(fe_baselines::NoPrefetch::new(2048, 4))),
            9,
        );
        let mut slow = Simulator::new(
            &p,
            slow_cfg,
            EngineScheme::Real(Box::new(fe_baselines::NoPrefetch::new(2048, 4))),
            9,
        );
        let f = fast.run(50_000, 200_000);
        let s = slow.run(50_000, 200_000);
        assert!(
            s.stalls.redirect > f.stalls.redirect,
            "bigger penalty, more bubbles"
        );
        assert!(s.cycles > f.cycles);
    }
}
