//! The single-decode multi-scheme batch engine.
//!
//! A sweep is N cells timing the *same* retired-instruction stream
//! under different delivery schemes. The serial path decodes the shared
//! trace once per cell; on a single-core host that decode (and the
//! executor walk behind it) is pure replicated work. This module runs a
//! whole same-workload scheme group in one pass:
//!
//! ```text
//!            ┌────────────── SharedWindow ──────────────┐
//! trace ──▶  │ decode once ─▶ VecDeque<RetiredBlock>    │
//!            │        cursor 0 ─▶ cell 0 (no-prefetch)  │
//!            │        cursor 1 ─▶ cell 1 (boomerang)    │
//!            │        cursor 2 ─▶ cell 2 (shotgun)      │
//!            └──────────────────────────────────────────┘
//! ```
//!
//! * [`SharedWindow`] wraps one [`SourceKind`] decoder and buffers the
//!   blocks between the slowest and fastest cursor; each cell's
//!   pipeline pulls through its own [`SharedCursor`]
//!   ([`SourceKind::Shared`]), so every block is decoded exactly once
//!   for the whole group and the window is pruned as the trailing
//!   cursor advances.
//! * [`BatchSimulator`] owns the cell array ([`Simulator`] pipelines in
//!   a contiguous `Vec`, each cell's hot per-pipeline state — TAGE fold
//!   scratch, BTB set-maps, fetch-fill scratch — allocated per cell and
//!   touched in round-robin order) and advances the cells in bounded
//!   retired-instruction rounds. Chunked rounds rather than strict
//!   cycle lockstep: a measured probe showed per-cycle interleaving
//!   thrashes every cell's predictor tables in and out of cache, while
//!   ~10⁶-instruction chunks keep each cell's tables hot *and* still
//!   bound the window.
//! * Each cell runs with the batch accelerations armed: the TAGE fold
//!   scratch (`Tage::enable_fold_scratch` in `fe-uarch`, O(1)
//!   folded-history maintenance instead of
//!   per-lookup folding — the single hottest loop in the simulator)
//!   and quiescent-span skipping
//!   (`Simulator::try_skip_quiet_span`, bulk-accounting stretches
//!   where every stage is provably inert). Both are bit-identical by
//!   construction and double-checked by `tests/batch_engine.rs`
//!   byte-for-byte against the serial path, which keeps the classic
//!   code as the reference.
//! * In sampled mode the *initial functional warm* is shared too:
//!   cells with the same warmup length form a group whose leader walks
//!   the warm window once, feeding every follower's scheme the same
//!   retired blocks as riders; when the group's warm completes, deep
//!   copies of the leader's scheme-independent structures (L1-I, TAGE,
//!   retire RAS, memory image) are installed into each follower, which
//!   merely seeks its cursor past the warmed prefix. The structures
//!   depend only on the retired stream — never on the scheme riding
//!   above them, and no in-tree scheme's warm hook writes through the
//!   front-end context — so each follower lands in exactly the state
//!   its own serial warm would have produced.
//! * Cells whose conditional retirement streams are provably identical
//!   share the TAGE retire-side work: the first cell to reach each
//!   retirement computes the tables' evolution once and records the
//!   few entry writes it made; the rest verify the `(pc, taken,
//!   history)` key and replay the writes instead of re-deriving them
//!   (see [`TageShare`] and `setup_retire_share`). Any key mismatch
//!   permanently drops the cell back to local computation, so the
//!   share can only ever reproduce — never approximate — the serial
//!   result. `SHOTGUN_NO_RETIRE_SHARE=1` switches it off for triage.
//!
//! Statistics are per-cell exactly as before: every cell keeps its own
//! pipeline, memory system, RNG stream, and stall accounting — only
//! the *decode* is shared. `Experiment::run` routes compatible cell
//! groups here (see its docs for the grouping rule) and falls back to
//! the serial path for singletons and incompatible cells.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use fe_cfg::Program;
use fe_model::{BlockSource, MachineConfig, RetiredBlock, SimStats};
use fe_trace::Trace;
use fe_uarch::{MemorySystem, TageShare};

use crate::engine::{EngineScheme, SchemeKind, Simulator};
use crate::runner::{assert_trace_matches, RunLength, SchemeSpec};
use crate::sampling::{SampledStats, SamplingSpec, RAMP_CAP};
use crate::source::SourceKind;

/// Retired instructions each cell advances per round-robin turn. Large
/// enough that a cell's predictor tables stay cache-resident across
/// the turn, small enough that the shared window stays bounded (a
/// round of blocks is a few MB of `Copy` data). Swept empirically:
/// 50K/200K/1M/4M gave 6.3/6.8/7.4/7.1 MIPS on the default sweep —
/// the tables benefit from longer residency right up until the window
/// itself starts fighting for the same cache.
const ROUND_INSTRS: u64 = 1_000_000;
/// Cursor advances between window prunes.
const PRUNE_PERIOD: u32 = 8_192;

struct WindowInner<'p> {
    source: SourceKind<'p>,
    /// Decoded blocks between the trailing and leading cursor;
    /// `buf[0]` is stream index `base`.
    buf: VecDeque<RetiredBlock>,
    base: u64,
    /// Per-cursor absolute stream index (`u64::MAX` = released).
    pos: Vec<u64>,
    since_prune: u32,
}

impl WindowInner<'_> {
    fn next_for(&mut self, id: usize) -> Option<RetiredBlock> {
        let off = (self.pos[id] - self.base) as usize;
        debug_assert!(off <= self.buf.len(), "cursor ran ahead of the window");
        if off == self.buf.len() {
            // Leading cursor: decode one more block — the single decode
            // the whole batch shares.
            self.buf.push_back(self.source.next_block()?);
        }
        let rb = self.buf[off];
        self.pos[id] += 1;
        self.since_prune += 1;
        if self.since_prune >= PRUNE_PERIOD {
            self.prune();
        }
        Some(rb)
    }

    /// Bulk [`Self::next_for`]: appends up to `n` blocks to `out` under
    /// one window lock, returning how many were delivered (short only
    /// when the source runs dry). One offset computation, one cursor
    /// advance, and one prune check cover the whole run — the
    /// per-block overhead that dominates a pipeline's oracle refill
    /// when every block bounces through the shared window.
    fn next_n_for(&mut self, id: usize, n: usize, out: &mut VecDeque<RetiredBlock>) -> usize {
        let mut off = (self.pos[id] - self.base) as usize;
        debug_assert!(off <= self.buf.len(), "cursor ran ahead of the window");
        let mut taken = 0;
        while taken < n {
            if off == self.buf.len() {
                match self.source.next_block() {
                    Some(rb) => self.buf.push_back(rb),
                    None => break,
                }
            }
            out.push_back(self.buf[off]);
            off += 1;
            taken += 1;
        }
        self.pos[id] += taken as u64;
        self.since_prune += taken as u32;
        if self.since_prune >= PRUNE_PERIOD {
            self.prune();
        }
        taken
    }

    fn skip_for(&mut self, id: usize, min_instrs: u64) -> u64 {
        // Same contract as `BlockSource::skip_instrs`: whole blocks
        // until at least `min_instrs`, so a shared cursor lands on the
        // exact stream position a private replayer would. (The blocks
        // are decoded for the window — a later cursor may need them —
        // so decode-skip does not apply here.)
        let mut skipped = 0;
        while skipped < min_instrs {
            match self.next_for(id) {
                Some(rb) => skipped += rb.instr_count(),
                None => break,
            }
        }
        skipped
    }

    fn prune(&mut self) {
        self.since_prune = 0;
        let min = self.pos.iter().copied().min().unwrap_or(self.base);
        while self.base < min && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }
}

/// One decoder fanned out to N readers; see the module docs.
pub struct SharedWindow<'p> {
    inner: Rc<RefCell<WindowInner<'p>>>,
}

impl<'p> SharedWindow<'p> {
    /// Wraps `source` for shared consumption.
    pub fn new(source: impl Into<SourceKind<'p>>) -> Self {
        SharedWindow {
            inner: Rc::new(RefCell::new(WindowInner {
                source: source.into(),
                buf: VecDeque::with_capacity(1024),
                base: 0,
                pos: Vec::new(),
                since_prune: 0,
            })),
        }
    }

    /// Registers a new reader at the start of the stream.
    ///
    /// # Panics
    ///
    /// Panics if the window has already been pruned past the stream
    /// start — create every cursor before any of them reads.
    pub fn cursor(&self) -> SharedCursor<'p> {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.base, 0,
            "shared cursors must be created before consumption starts"
        );
        inner.pos.push(0);
        SharedCursor {
            inner: Rc::clone(&self.inner),
            id: inner.pos.len() - 1,
        }
    }

    /// Marks a cursor finished so the window no longer retains blocks
    /// for it.
    fn release(&self, id: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.pos[id] = u64::MAX;
        inner.prune();
    }
}

/// One reader of a [`SharedWindow`] — a [`BlockSource`]-shaped handle
/// that rides into the pipeline as [`SourceKind::Shared`].
///
/// [`BlockSource`]: fe_model::BlockSource
pub struct SharedCursor<'p> {
    inner: Rc<RefCell<WindowInner<'p>>>,
    id: usize,
}

impl SharedCursor<'_> {
    /// The next block at this cursor's stream position.
    #[inline]
    pub fn next_block(&mut self) -> Option<RetiredBlock> {
        self.inner.borrow_mut().next_for(self.id)
    }

    /// Fast-forwards this cursor; same contract as
    /// [`BlockSource::skip_instrs`].
    pub fn skip_instrs(&mut self, min_instrs: u64) -> u64 {
        self.inner.borrow_mut().skip_for(self.id, min_instrs)
    }

    /// Appends up to `n` blocks to `out` under one window lock; short
    /// only when the stream ends (see `WindowInner::next_n_for`).
    pub fn next_blocks_into(&mut self, n: usize, out: &mut VecDeque<RetiredBlock>) -> usize {
        self.inner.borrow_mut().next_n_for(self.id, n, out)
    }
}

/// Where one cell is in its run — the serial control flow of
/// `Simulator::run` / `run_sampled` unrolled into a resumable state
/// machine so cells can advance in bounded turns.
enum Phase {
    /// Full detail: timed warmup before measurement starts.
    Warmup,
    /// Full detail: measuring until `retired_total` reaches `end`.
    Measure {
        end: u64,
    },
    /// Sampled: initial functional warm, `remaining` instructions to
    /// go. Chunked against the running remainder, which lands on the
    /// same block boundary as one whole-length warm.
    InitWarm {
        remaining: u64,
    },
    /// Sampled: the interval loop, one whole interval per turn.
    Intervals {
        end: u64,
    },
    Done,
}

struct BatchCell<'p> {
    sim: Simulator<'p>,
    len: RunLength,
    label: String,
    cursor_id: usize,
    phase: Phase,
    stats: Option<SimStats>,
    intervals: Vec<SimStats>,
    truncated: bool,
}

impl<'p> BatchCell<'p> {
    fn done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// One tick with the quiescent-span fast path.
    #[inline]
    fn tick(&mut self) {
        if self.sim.try_skip_quiet_span() == 0 {
            self.sim.cycle();
        }
    }

    /// Advances until this cell has retired `target` instructions (or
    /// finished), mirroring the serial control flow phase for phase.
    fn advance(&mut self, target: u64, sampling: Option<SamplingSpec>, window: &SharedWindow<'p>) {
        loop {
            if self.done() || self.sim.state.retired_total >= target {
                return;
            }
            match self.phase {
                Phase::Warmup => {
                    if self.sim.state.retired_total >= self.len.warmup
                        || self.sim.state.stream_ended()
                    {
                        self.sim.begin_measurement();
                        let end = self.sim.state.retired_total + self.len.measure;
                        self.phase = Phase::Measure { end };
                    } else {
                        self.tick();
                    }
                }
                Phase::Measure { end } => {
                    if self.sim.state.retired_total >= end || self.sim.state.stream_ended() {
                        self.stats = Some(self.sim.finalize());
                        self.finish(window);
                    } else {
                        self.tick();
                    }
                }
                Phase::InitWarm { remaining } => {
                    if remaining == 0 || self.sim.state.stream_ended() {
                        let end = self
                            .sim
                            .state
                            .retired_total
                            .saturating_add(self.len.measure);
                        self.phase = Phase::Intervals { end };
                    } else {
                        // Chunked against the running remainder: each
                        // chunk stops at the first block boundary at or
                        // past its sub-target, so the final boundary is
                        // the first one at or past the whole warmup —
                        // exactly where one unchunked warm would stop.
                        // `warmed < chunk` only happens when the source
                        // ran dry, which makes `stream_ended()` true
                        // and transitions on the next turn.
                        let chunk = remaining.min(ROUND_INSTRS);
                        let warmed = self.sim.warm_functional(chunk);
                        self.phase = Phase::InitWarm {
                            remaining: remaining.saturating_sub(warmed),
                        };
                    }
                }
                Phase::Intervals { end } => {
                    let spec = sampling.expect("sampled phase without a sampling spec");
                    if self.sim.state.retired_total >= end || self.sim.state.stream_ended() {
                        self.finish(window);
                        continue;
                    }
                    self.step_interval(end, spec, window);
                }
                Phase::Done => unreachable!("checked above"),
            }
        }
    }

    /// One iteration of the serial `run_sampled_measure` loop: tail
    /// warm, or skip + functional warm + timed detail window.
    fn step_interval(&mut self, end: u64, spec: SamplingSpec, window: &SharedWindow<'p>) {
        let budget = (end - self.sim.state.retired_total).min(spec.interval);
        if budget < spec.detail {
            // Tail shorter than a detail window: cover it functionally
            // (a sub-length measured window would skew the interval
            // statistics — same rule as the serial loop).
            self.sim.warm_functional(budget);
            return;
        }
        let detail = spec.detail;
        let fwarm = spec.warmup.min(budget - detail);
        let skip = budget - detail - fwarm;
        self.sim.skip_functional(skip);
        self.sim.warm_functional(fwarm);
        if self.sim.state.stream_ended() || !self.sim.begin_interval() {
            self.finish(window);
            return;
        }
        let ramp = (detail / 16).min(RAMP_CAP);
        let ramp_end = self.sim.state.retired_total + ramp;
        while self.sim.state.retired_total < ramp_end && !self.sim.state.stream_ended() {
            self.tick();
        }
        self.sim.begin_measurement();
        let measure_end = self.sim.state.retired_total + (detail - ramp);
        while self.sim.state.retired_total < measure_end && !self.sim.state.stream_ended() {
            self.tick();
        }
        let stats = self.sim.finalize();
        if stats.instructions > 0 {
            self.intervals.push(stats);
        }
    }

    fn finish(&mut self, window: &SharedWindow<'p>) {
        self.truncated = self.sim.state.source_dry;
        self.phase = Phase::Done;
        self.sim.release_tage_share();
        window.release(self.cursor_id);
    }
}

/// N scheme pipelines over one decoded stream; see the module docs.
///
/// Add every cell with [`Self::add_cell`], then consume the batch with
/// [`Self::run`] (full detail) or [`Self::run_sampled`] (interval
/// sampling). Results come back in cell-insertion order and are
/// byte-identical to running each cell alone through the serial path.
pub struct BatchSimulator<'p> {
    program: &'p Program,
    machine: MachineConfig,
    seed: u64,
    sampling: Option<SamplingSpec>,
    window: SharedWindow<'p>,
    cells: Vec<BatchCell<'p>>,
}

impl<'p> BatchSimulator<'p> {
    /// Builds a batch over `source` (typically a trace replayer). Pass
    /// `sampling` to run every cell in sampled mode; cells of a batch
    /// all run the same mode.
    ///
    /// # Panics
    ///
    /// Panics if `machine` fails validation (on the first `add_cell`)
    /// or `sampling` fails [`SamplingSpec::validate`].
    pub fn new(
        program: &'p Program,
        machine: MachineConfig,
        source: impl Into<SourceKind<'p>>,
        seed: u64,
        sampling: Option<SamplingSpec>,
    ) -> Self {
        if let Some(spec) = sampling {
            if let Err(e) = spec.validate() {
                // audit-allow(no-unchecked-panic): constructor contract — an invalid sampling spec is a caller bug, not a runtime condition; Experiment::try_run is the typed path
                panic!("invalid sampling spec: {e}");
            }
        }
        BatchSimulator {
            program,
            machine,
            seed,
            sampling,
            window: SharedWindow::new(source),
            cells: Vec::new(),
        }
    }

    /// Adds one scheme cell running `len` instructions. Cells may have
    /// heterogeneous run lengths; each finishes (and stops holding the
    /// shared window back) on its own schedule.
    ///
    /// # Panics
    ///
    /// In sampled mode, panics if `len.measure` cannot fit one detail
    /// window — same guard as the serial sampled run.
    pub fn add_cell(&mut self, spec: &SchemeSpec, len: RunLength) {
        if let Some(s) = self.sampling {
            assert!(
                len.measure >= s.detail,
                "sampled batch cell measures {} instructions — too short for even one \
                 {}-instruction detail window (shrink the spec or run full detail)",
                len.measure,
                s.detail,
            );
        }
        let cursor = self.window.cursor();
        let cursor_id = cursor.id;
        let scheme = spec.build(&self.machine);
        let mem = MemorySystem::new(&self.machine);
        let mut sim = Simulator::with_source(
            self.program,
            self.machine.clone(),
            scheme,
            self.seed,
            mem,
            cursor,
        );
        sim.enable_batch_accel();
        self.cells.push(BatchCell {
            sim,
            len,
            label: spec.label(),
            cursor_id,
            phase: match self.sampling {
                Some(_) => Phase::InitWarm {
                    remaining: len.warmup,
                },
                None => Phase::Warmup,
            },
            stats: None,
            intervals: Vec::new(),
            truncated: false,
        });
    }

    /// Cells added so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cells have been added.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Wires a TAGE retire-share through every group of cells whose
    /// conditional retirement streams are provably identical, so one
    /// cell computes each table update and the rest replay the recorded
    /// writes (see [`TageShare`]). Real statically-dispatched schemes
    /// all discover direction mispredicts at retirement and flush, so
    /// their surviving prediction-time history snapshots equal the
    /// retired history — the share key `(pc, taken, hist)` is then a
    /// pure function of the shared stream. Two kinds of cell stay out:
    /// `Ideal` cells keep mispredicted bits in their speculative
    /// history (no flush), so their keys diverge from the group's; and
    /// dynamic-dispatch (`Other`) schemes hold a `&mut` to the cell's
    /// TAGE through the front-end context, voiding the identical-state
    /// induction. In sampled mode cells additionally group by run
    /// lengths, whose warm/skip schedule shapes the retirement stream.
    fn setup_retire_share(&mut self) {
        let mut by_len: Vec<((u64, u64), Vec<usize>)> = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            match cell.sim.state.scheme {
                EngineScheme::Real(SchemeKind::Other(_)) | EngineScheme::Ideal => continue,
                EngineScheme::Real(_) => {}
            }
            // Full-detail cells all retire every block from the stream
            // start — run lengths only decide when they stop — so they
            // form a single group.
            let key = match self.sampling {
                Some(_) => (cell.len.warmup, cell.len.measure),
                None => (0, 0),
            };
            match by_len.iter_mut().find(|(k, _)| *k == key) {
                Some((_, idxs)) => idxs.push(i),
                None => by_len.push((key, vec![i])),
            }
        }
        for (_, idxs) in by_len {
            if idxs.len() < 2 {
                continue;
            }
            let share = TageShare::new();
            for &i in &idxs {
                self.cells[i].sim.attach_tage_share(share.cursor());
            }
        }
    }

    /// Runs every sampled cell's initial functional warm, sharing the
    /// walk across same-warmup-length cells (see the module docs).
    /// Groups advance in bounded per-round chunks so the shared window
    /// stays pruned against cells warming solo or in other groups.
    fn shared_warm(&mut self) {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut solo: Vec<usize> = Vec::new();
        let mut by_len: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            let Phase::InitWarm { remaining } = cell.phase else {
                continue;
            };
            // Dynamic-dispatch schemes are opaque: their warm hook may
            // write through the front-end context, which would leak
            // into the leader's shared structures. They warm solo.
            if matches!(
                cell.sim.state.scheme,
                EngineScheme::Real(SchemeKind::Other(_))
            ) {
                solo.push(i);
                continue;
            }
            match by_len.iter_mut().find(|(len, _)| *len == remaining) {
                Some((_, idxs)) => idxs.push(i),
                None => by_len.push((remaining, vec![i])),
            }
        }
        for (_, idxs) in by_len {
            if idxs.len() >= 2 {
                groups.push(idxs);
            } else {
                solo.extend(idxs);
            }
        }
        loop {
            let mut progressed = false;
            for group in &groups {
                progressed |= self.shared_warm_round(group);
            }
            for &i in &solo {
                progressed |= self.solo_warm_round(i);
            }
            if !progressed {
                return;
            }
        }
    }

    /// One bounded chunk of a group's shared warm. The leader pulls and
    /// warms the blocks with every follower's scheme riding along; the
    /// followers then seek their cursors past the same blocks. On
    /// completion the leader's warmed structures are installed into
    /// each follower and the whole group enters the interval loop.
    /// Returns `true` while warming still has work left.
    fn shared_warm_round(&mut self, group: &[usize]) -> bool {
        let leader = group[0];
        let Phase::InitWarm { remaining } = self.cells[leader].phase else {
            return false;
        };
        if remaining > 0 && !self.cells[leader].sim.state.stream_ended() {
            let chunk = remaining.min(ROUND_INSTRS);
            let mut riders: Vec<EngineScheme> = group[1..]
                .iter()
                .map(|&i| {
                    std::mem::replace(&mut self.cells[i].sim.state.scheme, EngineScheme::Ideal)
                })
                .collect();
            let warmed = self.cells[leader]
                .sim
                .warm_functional_with(chunk, &mut riders);
            for (&i, scheme) in group[1..].iter().zip(riders) {
                self.cells[i].sim.state.scheme = scheme;
                // Identical streams: the follower's skip lands on the
                // exact block boundary the leader's warm stopped at.
                self.cells[i].sim.skip_functional(warmed);
            }
            // A leader in a retire-share group recorded its warm
            // retirements through its cursor; pull the followers' past
            // them each round so the share log prunes instead of
            // buffering the whole warm. (The followers never consume
            // warm deltas — the leader's warmed structures are
            // installed wholesale below.)
            if let Some(seq) = self.cells[leader].sim.tage_share_seq() {
                for &i in &group[1..] {
                    self.cells[i].sim.sync_tage_share(seq);
                }
            }
            let left = remaining.saturating_sub(warmed);
            for &i in group {
                self.cells[i].phase = Phase::InitWarm { remaining: left };
            }
            true
        } else {
            let structures = self.cells[leader]
                .sim
                .capture_warm_structures()
                .expect("batch cells own private, snapshottable memory systems");
            let dry = self.cells[leader].sim.state.source_dry;
            let seq = self.cells[leader].sim.tage_share_seq();
            for (k, &i) in group.iter().enumerate() {
                if k > 0 {
                    self.cells[i].sim.install_warm_structures(&structures);
                    self.cells[i].sim.state.source_dry = dry;
                    // The installed TAGE already reflects the leader's
                    // warm retirements: reposition the follower's share
                    // cursor to match.
                    if let Some(seq) = seq {
                        self.cells[i].sim.sync_tage_share(seq);
                    }
                }
                let end = self.cells[i]
                    .sim
                    .state
                    .retired_total
                    .saturating_add(self.cells[i].len.measure);
                self.cells[i].phase = Phase::Intervals { end };
            }
            false
        }
    }

    /// One bounded chunk of an ungrouped cell's initial warm — the
    /// `Phase::InitWarm` arm of `BatchCell::advance`, run here so solo
    /// cells keep pace with the shared groups and the window stays
    /// bounded. Returns `true` while warming still has work left.
    fn solo_warm_round(&mut self, i: usize) -> bool {
        let cell = &mut self.cells[i];
        let Phase::InitWarm { remaining } = cell.phase else {
            return false;
        };
        if remaining == 0 || cell.sim.state.stream_ended() {
            let end = cell
                .sim
                .state
                .retired_total
                .saturating_add(cell.len.measure);
            cell.phase = Phase::Intervals { end };
            false
        } else {
            let chunk = remaining.min(ROUND_INSTRS);
            let warmed = cell.sim.warm_functional(chunk);
            cell.phase = Phase::InitWarm {
                remaining: remaining.saturating_sub(warmed),
            };
            true
        }
    }

    /// Round-robin drive: every cell advances to the same retired-
    /// instruction quota each round, so no cursor runs more than one
    /// round (plus pipeline lookahead) ahead of the slowest.
    fn drive(&mut self) {
        // Escape hatch for A/B perf triage and bisecting: the share is
        // bit-exact by construction, but being able to switch it off
        // without a rebuild is how its win was measured in the first
        // place.
        // audit-allow(no-env-in-engine): A/B triage escape hatch — absent in normal runs, and the share is bit-exact either way, so the knob can never change a result
        if std::env::var_os("SHOTGUN_NO_RETIRE_SHARE").is_none() {
            self.setup_retire_share();
        }
        if self.sampling.is_some() {
            self.shared_warm();
        }
        let mut quota = ROUND_INSTRS;
        loop {
            let mut all_done = true;
            for cell in &mut self.cells {
                cell.advance(quota, self.sampling, &self.window);
                all_done &= cell.done();
            }
            if all_done {
                return;
            }
            quota = quota.saturating_add(ROUND_INSTRS);
        }
    }

    /// Runs every full-detail cell to completion; statistics in
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics if the batch was built with a sampling spec, or if the
    /// shared source ran dry mid-run (a sweep cell measured over a
    /// partial stream would be silently wrong — same loud check as
    /// `run_scheme_replayed`).
    pub fn run(mut self) -> Vec<SimStats> {
        assert!(
            self.sampling.is_none(),
            "batch built with a sampling spec — use run_sampled"
        );
        self.drive();
        self.cells
            .into_iter()
            .map(|c| {
                assert!(
                    !c.truncated,
                    "batch cell `{}` ran dry mid-run — record at least \
                     RunLength::trace_instrs instructions",
                    c.label,
                );
                c.stats.expect("driven cell must finish")
            })
            .collect()
    }

    /// Runs every sampled cell to completion; per-cell interval
    /// statistics in insertion order (truncation reported per cell,
    /// exactly as the serial sampled run does).
    ///
    /// # Panics
    ///
    /// Panics if the batch was built without a sampling spec.
    pub fn run_sampled(mut self) -> Vec<SampledStats> {
        assert!(
            self.sampling.is_some(),
            "batch built without a sampling spec — use run"
        );
        self.drive();
        self.cells
            .into_iter()
            .map(|c| SampledStats {
                intervals: c.intervals,
                truncated: c.truncated,
            })
            .collect()
    }
}

/// Runs one workload's scheme group in one shared-decode pass — the
/// batch counterpart of N calls to
/// [`run_scheme_replayed`](crate::run_scheme_replayed), byte-identical
/// per cell. Results are in `specs` order.
///
/// # Panics
///
/// Panics if `trace` was not recorded against `program` with `seed`,
/// or ran dry before every cell completed.
pub fn run_schemes_batch_replayed(
    program: &Program,
    trace: &Trace,
    specs: &[SchemeSpec],
    machine: &MachineConfig,
    len: RunLength,
    seed: u64,
) -> Vec<SimStats> {
    assert_trace_matches(trace, program, seed);
    let mut batch = BatchSimulator::new(program, machine.clone(), trace.replayer(), seed, None);
    for spec in specs {
        batch.add_cell(spec, len);
    }
    batch.run()
}

/// Sampled-mode [`run_schemes_batch_replayed`]: the batch counterpart
/// of N calls to
/// [`run_scheme_sampled_replayed`](crate::run_scheme_sampled_replayed),
/// byte-identical per cell — the cells share the one decode pass, and
/// their functional-warming phases advance together in the same
/// bounded rounds as the timed windows.
///
/// # Panics
///
/// Panics if `trace` was not recorded against `program` with `seed`,
/// or ran dry before every cell completed.
pub fn run_schemes_batch_sampled_replayed(
    program: &Program,
    trace: &Trace,
    specs: &[SchemeSpec],
    machine: &MachineConfig,
    len: RunLength,
    sampling: SamplingSpec,
    seed: u64,
) -> Vec<SampledStats> {
    assert_trace_matches(trace, program, seed);
    let mut batch = BatchSimulator::new(
        program,
        machine.clone(),
        trace.replayer(),
        seed,
        Some(sampling),
    );
    for spec in specs {
        batch.add_cell(spec, len);
    }
    let results = batch.run_sampled();
    for (spec, stats) in specs.iter().zip(&results) {
        assert!(
            !stats.truncated,
            "trace `{}` ran dry mid-sampled-run of `{}` — record at least \
             RunLength::trace_instrs instructions",
            trace.header().name,
            spec.label(),
        );
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scheme_replayed, run_scheme_sampled_replayed};
    use fe_cfg::workloads;

    const SEED: u64 = 0x5407;

    #[test]
    fn shared_cursors_each_see_the_whole_stream() {
        let program = workloads::nutch().scaled(0.05).build();
        let trace = Trace::record(&program, SEED, 20_000);
        let window = SharedWindow::new(trace.replayer());
        let mut a = window.cursor();
        let mut b = window.cursor();
        let mut reference = trace.replayer();
        // Interleave unevenly: `a` sprints ahead, `b` trails, and the
        // window must keep `b`'s blocks buffered until it catches up.
        let mut a_blocks = Vec::new();
        let mut b_blocks = Vec::new();
        loop {
            let mut progressed = false;
            for _ in 0..7 {
                if let Some(rb) = a.next_block() {
                    a_blocks.push(rb);
                    progressed = true;
                }
            }
            if let Some(rb) = b.next_block() {
                b_blocks.push(rb);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        while let Some(rb) = b.next_block() {
            b_blocks.push(rb);
        }
        let mut expected = Vec::new();
        while let Some(rb) = reference.next_block() {
            expected.push(rb);
        }
        assert_eq!(a_blocks, expected);
        assert_eq!(b_blocks, expected);
    }

    #[test]
    fn shared_skip_matches_private_replayer() {
        let program = workloads::apache().scaled(0.05).build();
        let trace = Trace::record(&program, SEED, 20_000);
        let window = SharedWindow::new(trace.replayer());
        let mut shared = window.cursor();
        let mut private = trace.replayer();
        assert_eq!(shared.skip_instrs(1_234), private.skip_instrs(1_234));
        assert_eq!(shared.next_block(), private.next_block());
        assert_eq!(shared.skip_instrs(5_000), private.skip_instrs(5_000));
        assert_eq!(shared.next_block(), private.next_block());
    }

    #[test]
    fn batch_full_detail_matches_serial_cells() {
        let program = workloads::zeus().scaled(0.2).build();
        let len = RunLength {
            warmup: 30_000,
            measure: 80_000,
        };
        let machine = MachineConfig::table3();
        let trace = Trace::record(&program, SEED, len.trace_instrs(&machine));
        let specs = [
            SchemeSpec::NoPrefetch,
            SchemeSpec::boomerang(),
            SchemeSpec::shotgun(),
        ];
        let batch = run_schemes_batch_replayed(&program, &trace, &specs, &machine, len, SEED);
        for (spec, got) in specs.iter().zip(&batch) {
            let serial = run_scheme_replayed(&program, &trace, spec, &machine, len, SEED);
            assert_eq!(
                got,
                &serial,
                "batch diverged from serial for {}",
                spec.label()
            );
        }
    }

    #[test]
    fn batch_sampled_matches_serial_cells() {
        let program = workloads::streaming().scaled(0.2).build();
        let len = RunLength {
            warmup: 20_000,
            measure: 200_000,
        };
        let machine = MachineConfig::table3();
        let trace = Trace::record(&program, SEED, len.trace_instrs(&machine));
        let spec = SamplingSpec {
            interval: 40_000,
            detail: 8_000,
            warmup: 10_000,
        };
        // One cell per scheme family: every follower kind rides the
        // shared initial warm, and the Ideal cell exercises the
        // scheme-less rider slot.
        let schemes = [
            SchemeSpec::NoPrefetch,
            SchemeSpec::boomerang(),
            SchemeSpec::Confluence,
            SchemeSpec::shotgun(),
            SchemeSpec::Ideal,
        ];
        let batch = run_schemes_batch_sampled_replayed(
            &program, &trace, &schemes, &machine, len, spec, SEED,
        );
        for (scheme, got) in schemes.iter().zip(&batch) {
            let serial =
                run_scheme_sampled_replayed(&program, &trace, scheme, &machine, len, spec, SEED);
            assert_eq!(
                got.intervals,
                serial.intervals,
                "sampled batch diverged from serial for {}",
                scheme.label()
            );
            assert_eq!(got.truncated, serial.truncated);
        }
    }

    #[test]
    fn heterogeneous_run_lengths_release_short_cells_early() {
        let program = workloads::db2().scaled(0.2).build();
        let long = RunLength {
            warmup: 30_000,
            measure: 90_000,
        };
        let short = RunLength {
            warmup: 10_000,
            measure: 20_000,
        };
        let machine = MachineConfig::table3();
        let trace = Trace::record(&program, SEED, long.trace_instrs(&machine));
        let mut batch =
            BatchSimulator::new(&program, machine.clone(), trace.replayer(), SEED, None);
        batch.add_cell(&SchemeSpec::shotgun(), long);
        batch.add_cell(&SchemeSpec::NoPrefetch, short);
        let stats = batch.run();
        let serial_long = run_scheme_replayed(
            &program,
            &trace,
            &SchemeSpec::shotgun(),
            &machine,
            long,
            SEED,
        );
        let serial_short = run_scheme_replayed(
            &program,
            &trace,
            &SchemeSpec::NoPrefetch,
            &machine,
            short,
            SEED,
        );
        assert_eq!(stats[0], serial_long);
        assert_eq!(stats[1], serial_short);
    }

    #[test]
    #[should_panic(expected = "ran dry mid-run")]
    fn truncated_trace_panics_like_serial() {
        let program = workloads::nutch().scaled(0.05).build();
        let len = RunLength {
            warmup: 20_000,
            measure: 1_000_000,
        };
        let trace = Trace::record(&program, SEED, 50_000);
        let machine = MachineConfig::table3();
        let specs = [SchemeSpec::NoPrefetch];
        run_schemes_batch_replayed(&program, &trace, &specs, &machine, len, SEED);
    }
}
