//! Scheme specifications, run-length control, and the one-cell
//! `run_scheme` / `run_scheme_replayed` conveniences the `Experiment`
//! sweep API builds on.

use fe_cfg::Program;
use fe_model::{MachineConfig, SimStats};
use fe_trace::{Trace, TraceStore};
use fe_uarch::MemorySystem;
use shotgun::{RegionPolicy, ShotgunConfig, ShotgunPrefetcher};

use fe_baselines::{Boomerang, Confluence, ConfluenceConfig, Fdip, NoPrefetch};

use crate::engine::{EngineScheme, Simulator};
use crate::pipeline::{BPU_BLOCKS_PER_CYCLE, FETCH_LINES_PER_CYCLE, SUPPLY_CAP};
use crate::sampling::{SampledStats, SamplingSpec};
use crate::snapshot::{SnapshotKey, SnapshotStore};

/// A control-flow-delivery scheme to evaluate.
#[derive(Clone, Debug, PartialEq)]
pub enum SchemeSpec {
    /// Conventional front end, no prefetching (the baseline).
    NoPrefetch,
    /// Fetch-directed instruction prefetching.
    Fdip,
    /// Boomerang (FDIP + reactive BTB fill) with a conventional BTB of
    /// the given entry count.
    Boomerang {
        /// BTB entries (2048 reproduces §5.2).
        btb_entries: u32,
    },
    /// Confluence (SHIFT temporal streaming + 16K BTB).
    Confluence,
    /// The ideal front end of Fig. 1.
    Ideal,
    /// Shotgun with an explicit configuration.
    Shotgun(ShotgunConfig),
}

impl SchemeSpec {
    /// The paper's §5.2 Boomerang configuration.
    pub fn boomerang() -> Self {
        SchemeSpec::Boomerang { btb_entries: 2048 }
    }

    /// The paper's §5.2 Shotgun configuration.
    pub fn shotgun() -> Self {
        SchemeSpec::Shotgun(ShotgunConfig::default())
    }

    /// Display label used in the figures. Distinct specs get distinct
    /// labels (the `Experiment` API relies on this to key cells), so
    /// non-default Shotgun sizings are spelled out.
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::NoPrefetch => "no-prefetch".into(),
            SchemeSpec::Fdip => "fdip".into(),
            SchemeSpec::Boomerang { btb_entries: 2048 } => "boomerang".into(),
            SchemeSpec::Boomerang { btb_entries } => format!("boomerang-{btb_entries}"),
            SchemeSpec::Confluence => "confluence".into(),
            SchemeSpec::Ideal => "ideal".into(),
            SchemeSpec::Shotgun(cfg) if *cfg == ShotgunConfig::default() => "shotgun".into(),
            SchemeSpec::Shotgun(cfg) => {
                let mut label = String::from("shotgun");
                // The sizing a default-budget config would have under
                // this policy (NoBitVector legitimately grows the
                // U-BTB; anything else is a bespoke sizing).
                let mut expected = ShotgunConfig::default().sizing;
                if cfg.policy == RegionPolicy::NoBitVector {
                    expected.ubtb = fe_model::storage::no_bit_vector_entries(expected.ubtb);
                }
                if cfg.sizing != expected {
                    label.push_str(&format!(
                        "-{}u{}c{}r",
                        cfg.sizing.ubtb, cfg.sizing.cbtb, cfg.sizing.rib
                    ));
                }
                if cfg.policy != RegionPolicy::Bit8 {
                    label.push_str(&format!("-{}", cfg.policy.label()));
                }
                let default = ShotgunConfig::default();
                if cfg.ways != default.ways {
                    label.push_str(&format!("-{}w", cfg.ways));
                }
                if cfg.prefetch_buffer != default.prefetch_buffer {
                    label.push_str(&format!("-pb{}", cfg.prefetch_buffer));
                }
                label
            }
        }
    }

    /// Instantiates the scheme behind the dynamic-dispatch extension
    /// seam ([`SchemeKind::Other`](crate::SchemeKind::Other)) instead
    /// of its devirtualized enum variant. Semantically identical to
    /// [`Self::build`] — this is the reference path the engine
    /// regression tests pin the monomorphized tick loop against.
    pub fn build_dyn(&self, machine: &MachineConfig) -> EngineScheme {
        use fe_uarch::scheme::ControlFlowDelivery;
        let ways = machine.front_end.btb_ways as usize;
        let boxed: Box<dyn ControlFlowDelivery> = match self {
            SchemeSpec::NoPrefetch => Box::new(NoPrefetch::new(
                machine.front_end.btb_entries as usize,
                ways,
            )),
            SchemeSpec::Fdip => Box::new(Fdip::new(machine.front_end.btb_entries as usize, ways)),
            SchemeSpec::Boomerang { btb_entries } => Box::new(Boomerang::new(
                *btb_entries as usize,
                ways,
                machine.front_end.btb_prefetch_buffer as usize,
            )),
            SchemeSpec::Confluence => Box::new(Confluence::new(ConfluenceConfig::default())),
            SchemeSpec::Ideal => return EngineScheme::Ideal,
            SchemeSpec::Shotgun(cfg) => Box::new(ShotgunPrefetcher::new(
                *cfg,
                machine.front_end.ras_entries as usize,
            )),
        };
        EngineScheme::real(boxed)
    }

    /// Instantiates the scheme for a machine configuration.
    pub fn build(&self, machine: &MachineConfig) -> EngineScheme {
        let ways = machine.front_end.btb_ways as usize;
        match self {
            SchemeSpec::NoPrefetch => EngineScheme::real(NoPrefetch::new(
                machine.front_end.btb_entries as usize,
                ways,
            )),
            SchemeSpec::Fdip => {
                EngineScheme::real(Fdip::new(machine.front_end.btb_entries as usize, ways))
            }
            SchemeSpec::Boomerang { btb_entries } => EngineScheme::real(Boomerang::new(
                *btb_entries as usize,
                ways,
                machine.front_end.btb_prefetch_buffer as usize,
            )),
            SchemeSpec::Confluence => {
                EngineScheme::real(Confluence::new(ConfluenceConfig::default()))
            }
            SchemeSpec::Ideal => EngineScheme::Ideal,
            SchemeSpec::Shotgun(cfg) => EngineScheme::real(ShotgunPrefetcher::new(
                *cfg,
                machine.front_end.ras_entries as usize,
            )),
        }
    }
}

/// How long to warm up and measure, in instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLength {
    /// Instructions executed before measurement starts (cache, BTB and
    /// predictor warmup — the paper's checkpoint warming, §5.1).
    pub warmup: u64,
    /// Instructions measured.
    pub measure: u64,
}

impl RunLength {
    /// Default experiment length: 3M warmup + 12M measured.
    pub const DEFAULT: RunLength = RunLength {
        warmup: 3_000_000,
        measure: 12_000_000,
    };

    /// Short length for tests.
    pub const SMOKE: RunLength = RunLength {
        warmup: 200_000,
        measure: 500_000,
    };

    /// Long run for sampled simulation: 5M warmup + 60M measured —
    /// enough intervals for a stable confidence interval at the default
    /// [`SamplingSpec`] without trace sizes
    /// getting out of hand.
    pub const LONG: RunLength = RunLength {
        warmup: 5_000_000,
        measure: 60_000_000,
    };

    /// Paper-scale run: 10M warmup + 200M measured instructions per
    /// cell (§5.1's order of magnitude) — practical only under
    /// [`Experiment::sampling`](crate::Experiment::sampling).
    pub const PAPER: RunLength = RunLength {
        warmup: 10_000_000,
        measure: 200_000_000,
    };

    /// Reads `SHOTGUN_WARMUP` / `SHOTGUN_INSTRS` from the environment,
    /// falling back to `self` — the figure binaries' precision knob.
    pub fn from_env(self) -> RunLength {
        let parse =
            // audit-allow(no-env-in-engine): figure-binary precision knobs — read once at startup by the binaries that opt in via from_env, never during measurement, defaults everywhere else
            |name: &str| -> Option<u64> { std::env::var(name).ok()?.replace('_', "").parse().ok() };
        RunLength {
            warmup: parse("SHOTGUN_WARMUP").unwrap_or(self.warmup),
            measure: parse("SHOTGUN_INSTRS").unwrap_or(self.measure),
        }
    }

    /// Instructions a recorded trace must hold to replay a run of this
    /// length on `machine`: warmup + measure, plus the pipeline's
    /// bounded lookahead past the last retired instruction (the ideal
    /// BPU reads the oracle ahead of retirement, bounded by the FTQ
    /// and supply capacities) — every station that can hold a
    /// pulled-but-unretired block counted in worst-case maximum-size
    /// blocks, so a trace of this length can never run dry
    /// mid-simulation.
    pub fn trace_instrs(&self, machine: &MachineConfig) -> u64 {
        // Deliberately conservative, station by station: the FTQ (one
        // block per entry), the supply buffer (its instruction cap can
        // be all one-instruction blocks, plus a line of delivery
        // overshoot per fetch step), the blocks in flight through the
        // per-cycle stage throughputs (BPU prediction and fetch
        // delivery), the backend's current block and its oracle
        // read-ahead, and a margin for warmup retire-width overshoot
        // and anything a future stage buffers. Stacked maximum-width
        // blocks previously squeezed through the old additive slack;
        // every term here is a block count multiplied out by the
        // worst-case block width.
        let lookahead_blocks = machine.front_end.ftq_entries as u64
            + (SUPPLY_CAP + FETCH_LINES_PER_CYCLE as u64 * fe_model::LINE_INSTRS)
            + BPU_BLOCKS_PER_CYCLE as u64
            + FETCH_LINES_PER_CYCLE as u64
            + 2 // backend current block + fill_oracle_to(0) read-ahead
            + 32; // margin
        let max_block = fe_model::BasicBlock::MAX_INSTRS as u64;
        self.warmup
            + self.measure
            + machine.core.width as u64 * max_block
            + (lookahead_blocks + 1) * max_block
    }
}

/// Runs one scheme over one program — the one-cell convenience wrapper
/// around the simulator. Multi-cell sweeps should use
/// [`Experiment`](crate::Experiment), which parallelizes and derives
/// metrics.
pub fn run_scheme(
    program: &Program,
    spec: &SchemeSpec,
    machine: &MachineConfig,
    len: RunLength,
    seed: u64,
) -> SimStats {
    let scheme = spec.build(machine);
    let mut sim = Simulator::new(program, machine.clone(), scheme, seed);
    sim.run(len.warmup, len.measure)
}

/// Runs one scheme over one program with the retired stream replayed
/// from `trace` instead of walked live — bit-identical statistics to
/// [`run_scheme`] when the trace was recorded from the same
/// `(program, seed)` and holds at least
/// [`RunLength::trace_instrs`] instructions.
///
/// # Panics
///
/// Panics if `trace` was not recorded against `program` with `seed`
/// (replaying a mismatched stream would silently produce wrong
/// timing), or if the trace ran dry before the run completed (the
/// pipeline itself degrades a truncated source into a reported stall,
/// but a sweep cell measured over a partial stream would be silently
/// wrong, so this wrapper re-checks loudly).
pub fn run_scheme_replayed(
    program: &Program,
    trace: &Trace,
    spec: &SchemeSpec,
    machine: &MachineConfig,
    len: RunLength,
    seed: u64,
) -> SimStats {
    assert_trace_matches(trace, program, seed);
    let scheme = spec.build(machine);
    let mem = MemorySystem::new(machine);
    let mut sim = Simulator::with_source(
        program,
        machine.clone(),
        scheme,
        seed,
        mem,
        trace.replayer(),
    );
    let stats = sim.run(len.warmup, len.measure);
    assert!(
        !sim.source_exhausted(),
        "trace `{}` ran dry mid-run — record at least RunLength::trace_instrs instructions",
        trace.header().name,
    );
    stats
}

/// [`run_scheme_replayed`], but replaying from a chunk-compressed v2
/// [`TraceStore`] instead of a flat trace. Statistics are bit-identical
/// to both [`run_scheme`] and [`run_scheme_replayed`] over the same
/// recording — the store reproduces the identical retired stream — and
/// warmup fast-forwarding seeks through the chunk index instead of
/// decoding every record.
///
/// # Panics
///
/// Panics under the same conditions as [`run_scheme_replayed`]
/// (mismatched `(program, seed)`, or the store running dry mid-run).
pub fn run_scheme_store_replayed(
    program: &Program,
    store: &TraceStore,
    spec: &SchemeSpec,
    machine: &MachineConfig,
    len: RunLength,
    seed: u64,
) -> SimStats {
    assert_store_matches(store, program, seed);
    let scheme = spec.build(machine);
    let mem = MemorySystem::new(machine);
    let mut sim = Simulator::with_source(
        program,
        machine.clone(),
        scheme,
        seed,
        mem,
        store.replayer(),
    );
    let stats = sim.run(len.warmup, len.measure);
    assert!(
        !sim.source_exhausted(),
        "trace store `{}` ran dry mid-run — record at least RunLength::trace_instrs instructions",
        store.header().name,
    );
    stats
}

pub(crate) fn assert_trace_matches(trace: &Trace, program: &Program, seed: u64) {
    assert_eq!(
        trace.header().seed,
        seed,
        "trace `{}` was recorded with a different seed",
        trace.header().name,
    );
    assert!(
        trace.matches(program),
        "trace `{}` was recorded against a different program",
        trace.header().name,
    );
}

pub(crate) fn assert_store_matches(store: &TraceStore, program: &Program, seed: u64) {
    assert_eq!(
        store.header().seed,
        seed,
        "trace store `{}` was recorded with a different seed",
        store.header().name,
    );
    assert!(
        store.matches(program),
        "trace store `{}` was recorded against a different program",
        store.header().name,
    );
}

/// Runs one scheme over one program in sampled mode (see
/// [`SamplingSpec`] and the `sampling` module docs): `len.warmup`
/// instructions functionally warmed, `len.measure` covered by
/// alternating fast-forward / functional warming / timed measurement.
pub fn run_scheme_sampled(
    program: &Program,
    spec: &SchemeSpec,
    machine: &MachineConfig,
    len: RunLength,
    sampling: SamplingSpec,
    seed: u64,
) -> SampledStats {
    let scheme = spec.build(machine);
    let mut sim = Simulator::new(program, machine.clone(), scheme, seed);
    sim.run_sampled(len.warmup, len.measure, sampling)
}

/// [`run_scheme_sampled`] over a recorded trace: the fast-forward
/// phases use the replayer's seekable decode-skip, which is where the
/// bulk of sampled mode's speedup comes from.
///
/// # Panics
///
/// Panics if `trace` was not recorded against `program` with `seed`,
/// or if the trace ran dry before the sampled run completed.
pub fn run_scheme_sampled_replayed(
    program: &Program,
    trace: &Trace,
    spec: &SchemeSpec,
    machine: &MachineConfig,
    len: RunLength,
    sampling: SamplingSpec,
    seed: u64,
) -> SampledStats {
    assert_trace_matches(trace, program, seed);
    let scheme = spec.build(machine);
    let mem = MemorySystem::new(machine);
    let mut sim = Simulator::with_source(
        program,
        machine.clone(),
        scheme,
        seed,
        mem,
        trace.replayer(),
    );
    let stats = sim.run_sampled(len.warmup, len.measure, sampling);
    assert!(
        !stats.truncated,
        "trace `{}` ran dry mid-sampled-run — record at least RunLength::trace_instrs instructions",
        trace.header().name,
    );
    stats
}

/// [`run_scheme_sampled_replayed`] with warmed-state snapshots (see
/// the [`snapshot`](crate::snapshot) module): on a store hit the
/// initial functional warm of `len.warmup` instructions is replaced by
/// a decode-skip plus a restore of the captured structures, which is
/// bit-identical and many times faster; on a miss the run warms
/// functionally and captures the state for next time. With
/// `snapshots: None` this is exactly [`run_scheme_sampled_replayed`].
#[allow(clippy::too_many_arguments)]
pub fn run_scheme_sampled_replayed_snapshot(
    program: &Program,
    trace: &Trace,
    spec: &SchemeSpec,
    machine: &MachineConfig,
    len: RunLength,
    sampling: SamplingSpec,
    seed: u64,
    snapshots: Option<&SnapshotStore>,
) -> SampledStats {
    assert_trace_matches(trace, program, seed);
    let scheme = spec.build(machine);
    let mem = MemorySystem::new(machine);
    let mut sim = Simulator::with_source(
        program,
        machine.clone(),
        scheme,
        seed,
        mem,
        trace.replayer(),
    );
    let key = snapshots
        .map(|_| SnapshotKey::for_run(trace.header().fingerprint, machine, spec, seed, len.warmup));
    let snap = match (snapshots, key) {
        (Some(store), Some(k)) => store.get(&k),
        _ => None,
    };
    let stats = match snap {
        Some(snap) => {
            sim.restore_warm(&snap);
            sim.run_sampled_measure(len.measure, sampling)
        }
        None => {
            sim.warm_functional(len.warmup);
            if let (Some(store), Some(key)) = (snapshots, key) {
                if let Some(snap) = sim.capture_warm() {
                    store.put(key, snap);
                }
            }
            sim.run_sampled_measure(len.measure, sampling)
        }
    };
    assert!(
        !stats.truncated,
        "trace `{}` ran dry mid-sampled-run — record at least RunLength::trace_instrs instructions",
        trace.header().name,
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_shotgun_configs_get_distinct_labels() {
        let specs = [
            SchemeSpec::shotgun(),
            SchemeSpec::Shotgun(ShotgunConfig::default().with_cbtb_entries(64)),
            SchemeSpec::Shotgun(ShotgunConfig::default().with_cbtb_entries(1024)),
            SchemeSpec::Shotgun(ShotgunConfig::for_budget(512)),
            SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(RegionPolicy::NoBitVector)),
            SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(RegionPolicy::FiveBlocks)),
            SchemeSpec::Shotgun(ShotgunConfig {
                ways: 8,
                ..ShotgunConfig::default()
            }),
            SchemeSpec::Shotgun(ShotgunConfig {
                prefetch_buffer: 64,
                ..ShotgunConfig::default()
            }),
        ];
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        for (i, l) in labels.iter().enumerate() {
            assert!(!labels[..i].contains(l), "duplicate label {l}");
        }
    }

    #[test]
    fn canonical_configs_keep_short_labels() {
        assert_eq!(SchemeSpec::shotgun().label(), "shotgun");
        assert_eq!(
            SchemeSpec::Shotgun(ShotgunConfig::for_budget(2048)).label(),
            "shotgun"
        );
        assert_eq!(SchemeSpec::boomerang().label(), "boomerang");
        assert_eq!(
            SchemeSpec::Shotgun(ShotgunConfig::default().with_policy(RegionPolicy::NoBitVector))
                .label(),
            "shotgun-No bit vector",
            "policy-only variants keep the figure labels"
        );
    }
}
