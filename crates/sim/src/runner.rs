//! Experiment runner: schemes by name, run-length control, and the
//! workload x scheme sweep harness every figure binary builds on.

use fe_cfg::{Program, WorkloadSpec};
use fe_model::{MachineConfig, SimStats};
use shotgun::{ShotgunConfig, ShotgunPrefetcher};

use fe_baselines::{Boomerang, Confluence, ConfluenceConfig, Fdip, NoPrefetch};

use crate::engine::{EngineScheme, Simulator};

/// A control-flow-delivery scheme to evaluate.
#[derive(Clone, Debug, PartialEq)]
pub enum SchemeSpec {
    /// Conventional front end, no prefetching (the baseline).
    NoPrefetch,
    /// Fetch-directed instruction prefetching.
    Fdip,
    /// Boomerang (FDIP + reactive BTB fill) with a conventional BTB of
    /// the given entry count.
    Boomerang {
        /// BTB entries (2048 reproduces §5.2).
        btb_entries: u32,
    },
    /// Confluence (SHIFT temporal streaming + 16K BTB).
    Confluence,
    /// The ideal front end of Fig. 1.
    Ideal,
    /// Shotgun with an explicit configuration.
    Shotgun(ShotgunConfig),
}

impl SchemeSpec {
    /// The paper's §5.2 Boomerang configuration.
    pub fn boomerang() -> Self {
        SchemeSpec::Boomerang { btb_entries: 2048 }
    }

    /// The paper's §5.2 Shotgun configuration.
    pub fn shotgun() -> Self {
        SchemeSpec::Shotgun(ShotgunConfig::default())
    }

    /// Display label used in the figures.
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::NoPrefetch => "no-prefetch".into(),
            SchemeSpec::Fdip => "fdip".into(),
            SchemeSpec::Boomerang { btb_entries: 2048 } => "boomerang".into(),
            SchemeSpec::Boomerang { btb_entries } => format!("boomerang-{btb_entries}"),
            SchemeSpec::Confluence => "confluence".into(),
            SchemeSpec::Ideal => "ideal".into(),
            SchemeSpec::Shotgun(cfg) if *cfg == ShotgunConfig::default() => "shotgun".into(),
            SchemeSpec::Shotgun(cfg) => format!("shotgun-{}", cfg.policy.label()),
        }
    }

    /// Instantiates the scheme for a machine configuration.
    pub fn build(&self, machine: &MachineConfig) -> EngineScheme {
        let ways = machine.front_end.btb_ways as usize;
        match self {
            SchemeSpec::NoPrefetch => EngineScheme::Real(Box::new(NoPrefetch::new(
                machine.front_end.btb_entries as usize,
                ways,
            ))),
            SchemeSpec::Fdip => EngineScheme::Real(Box::new(Fdip::new(
                machine.front_end.btb_entries as usize,
                ways,
            ))),
            SchemeSpec::Boomerang { btb_entries } => EngineScheme::Real(Box::new(
                Boomerang::new(*btb_entries as usize, ways, machine.front_end.btb_prefetch_buffer as usize),
            )),
            SchemeSpec::Confluence => {
                EngineScheme::Real(Box::new(Confluence::new(ConfluenceConfig::default())))
            }
            SchemeSpec::Ideal => EngineScheme::Ideal,
            SchemeSpec::Shotgun(cfg) => EngineScheme::Real(Box::new(ShotgunPrefetcher::new(
                *cfg,
                machine.front_end.ras_entries as usize,
            ))),
        }
    }
}

/// How long to warm up and measure, in instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLength {
    /// Instructions executed before measurement starts (cache, BTB and
    /// predictor warmup — the paper's checkpoint warming, §5.1).
    pub warmup: u64,
    /// Instructions measured.
    pub measure: u64,
}

impl RunLength {
    /// Default experiment length: 3M warmup + 12M measured.
    pub const DEFAULT: RunLength = RunLength { warmup: 3_000_000, measure: 12_000_000 };

    /// Short length for tests.
    pub const SMOKE: RunLength = RunLength { warmup: 200_000, measure: 500_000 };

    /// Reads `SHOTGUN_WARMUP` / `SHOTGUN_INSTRS` from the environment,
    /// falling back to `self` — the figure binaries' precision knob.
    pub fn from_env(self) -> RunLength {
        let parse = |name: &str| -> Option<u64> {
            std::env::var(name).ok()?.replace('_', "").parse().ok()
        };
        RunLength {
            warmup: parse("SHOTGUN_WARMUP").unwrap_or(self.warmup),
            measure: parse("SHOTGUN_INSTRS").unwrap_or(self.measure),
        }
    }
}

/// Runs one scheme over one program.
pub fn run_scheme(
    program: &Program,
    spec: &SchemeSpec,
    machine: &MachineConfig,
    len: RunLength,
    seed: u64,
) -> SimStats {
    let scheme = spec.build(machine);
    let mut sim = Simulator::new(program, machine.clone(), scheme, seed);
    sim.run(len.warmup, len.measure)
}

/// Result of one (workload, scheme) cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Measured statistics.
    pub stats: SimStats,
}

/// Runs a workload x scheme sweep. Programs are built once per
/// workload; every scheme sees the same executor seed, hence the same
/// retired instruction stream.
pub fn run_suite(
    workloads: &[WorkloadSpec],
    schemes: &[SchemeSpec],
    machine: &MachineConfig,
    len: RunLength,
    seed: u64,
) -> Vec<CellResult> {
    let mut out = Vec::with_capacity(workloads.len() * schemes.len());
    for wl in workloads {
        let program = wl.build();
        for scheme in schemes {
            let stats = run_scheme(&program, scheme, machine, len, seed);
            out.push(CellResult {
                workload: wl.name.clone(),
                scheme: scheme.label(),
                stats,
            });
        }
    }
    out
}

/// Finds a cell in a sweep result.
pub fn cell<'a>(results: &'a [CellResult], workload: &str, scheme: &str) -> &'a CellResult {
    results
        .iter()
        .find(|c| c.workload == workload && c.scheme == scheme)
        .unwrap_or_else(|| panic!("missing cell {workload}/{scheme}"))
}
