//! Content-addressed result cache for sweep cells.
//!
//! Since PR 1 every sweep cell is deterministic: the same (program,
//! seed, machine, scheme, run length, sampling shape) always produces
//! the same statistics, byte-identical in report JSON. That makes cell
//! results cacheable by *content address* — a key derived purely from
//! the inputs:
//!
//! * the workload's [`ProgramFingerprint`] (which also fingerprints
//!   the recorded trace — PR 3),
//! * a [`config_hash`] over the canonicalized JSON description of
//!   everything else (machine config, scheme, run length, seed,
//!   sampling shape), and
//! * [`ENGINE_VERSION`], bumped whenever a simulator change alters
//!   emitted statistics, which invalidates every previously cached
//!   entry at once.
//!
//! [`Experiment`](crate::Experiment) consults a [`CellStore`] before
//! simulating each single-workload cell and writes every freshly
//! computed cell back, so repeated sweeps cost zero simulation and the
//! served report is byte-identical to a computed one (the cached value
//! round-trips through the same JSON encoding the report itself uses;
//! u64 counters are exact and floats use the shortest round-trippable
//! form). Consolidation mixes bypass the cache: their cells are
//! interference-coupled and not individually addressable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fe_model::MachineConfig;
use fe_trace::ProgramFingerprint;
use fe_uarch::FastMap;

use crate::experiment::{
    sampling_from_json, sampling_to_json, scheme_to_json, stats_from_json, stats_to_json,
};
use crate::json::Json;
use crate::runner::{RunLength, SchemeSpec};
use crate::sampling::{CellSampling, SamplingSpec};
use fe_model::SimStats;

/// Version of the simulation engine's *observable statistics*. Bump on
/// any change that alters the numbers a cell reports (timing model,
/// warm paths, stat definitions): the version is part of every cell's
/// content address, so bumping it invalidates every cached entry — a
/// stale cache can never masquerade as current results.
pub const ENGINE_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes a JSON document *structurally and canonically*: object
/// members are sorted by key before hashing, and numbers hash by their
/// *rendered* value — an integral float hashes as the integer it
/// renders as (the parser reads `2.0`'s rendering back as `U64(2)`),
/// fractional floats by their bit pattern (the renderer emits the
/// shortest round-trippable form). Two documents that differ only in
/// member ordering — or by a round trip through
/// [`render`](Json::render)/[`parse`](crate::json::parse) — therefore
/// hash identically, while any value or shape change alters the hash.
pub fn config_hash(doc: &Json) -> u64 {
    hash_value(FNV_OFFSET, doc)
}

fn hash_value(mut h: u64, doc: &Json) -> u64 {
    match doc {
        Json::Null => fnv1a_update(h, &[0]),
        Json::Bool(b) => fnv1a_update(h, &[1, *b as u8]),
        Json::U64(v) => {
            h = fnv1a_update(h, &[2]);
            fnv1a_update(h, &v.to_le_bytes())
        }
        // An integral float renders as a bare integer and reparses as
        // `U64`; a non-finite one renders as `null`. Hash them as their
        // rendered form so a render/parse round trip cannot move a key.
        Json::F64(v) if v.is_finite() && v.fract() == 0.0 && *v >= 0.0 && *v < u64::MAX as f64 => {
            h = fnv1a_update(h, &[2]);
            fnv1a_update(h, &(*v as u64).to_le_bytes())
        }
        Json::F64(v) if !v.is_finite() => fnv1a_update(h, &[0]),
        Json::F64(v) => {
            h = fnv1a_update(h, &[3]);
            fnv1a_update(h, &v.to_bits().to_le_bytes())
        }
        Json::Str(s) => {
            h = fnv1a_update(h, &[4]);
            h = fnv1a_update(h, &(s.len() as u64).to_le_bytes());
            fnv1a_update(h, s.as_bytes())
        }
        Json::Arr(items) => {
            h = fnv1a_update(h, &[5]);
            h = fnv1a_update(h, &(items.len() as u64).to_le_bytes());
            for item in items {
                h = hash_value(h, item);
            }
            h
        }
        Json::Obj(members) => {
            h = fnv1a_update(h, &[6]);
            h = fnv1a_update(h, &(members.len() as u64).to_le_bytes());
            let mut sorted: Vec<&(String, Json)> = members.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, value) in sorted {
                h = fnv1a_update(h, &(key.len() as u64).to_le_bytes());
                h = fnv1a_update(h, key.as_bytes());
                h = hash_value(h, value);
            }
            h
        }
    }
}

/// Every [`MachineConfig`] knob as JSON — the machine side of a cell's
/// configuration document. Exhaustive on purpose: a config field left
/// out of the hash would let two different machines share a cache key.
pub(crate) fn machine_to_json(m: &MachineConfig) -> Json {
    let cache = |c: &fe_model::config::CacheConfig| {
        Json::Obj(vec![
            ("kib".into(), Json::U64(c.kib as u64)),
            ("ways".into(), Json::U64(c.ways as u64)),
            ("latency".into(), Json::U64(c.latency as u64)),
        ])
    };
    Json::Obj(vec![
        (
            "core".into(),
            Json::Obj(vec![
                ("width".into(), Json::U64(m.core.width as u64)),
                ("rob".into(), Json::U64(m.core.rob as u64)),
                ("lsq".into(), Json::U64(m.core.lsq as u64)),
                ("freq_ghz".into(), Json::F64(m.core.freq_ghz)),
                (
                    "redirect_penalty".into(),
                    Json::U64(m.core.redirect_penalty as u64),
                ),
            ]),
        ),
        ("l1i".into(), cache(&m.l1i)),
        ("l1d".into(), cache(&m.l1d)),
        (
            "llc".into(),
            Json::Obj(vec![
                ("kib_per_core".into(), Json::U64(m.llc.kib_per_core as u64)),
                ("ways".into(), Json::U64(m.llc.ways as u64)),
                ("latency".into(), Json::U64(m.llc.latency as u64)),
            ]),
        ),
        (
            "noc".into(),
            Json::Obj(vec![
                ("dim".into(), Json::U64(m.noc.dim as u64)),
                (
                    "cycles_per_hop".into(),
                    Json::U64(m.noc.cycles_per_hop as u64),
                ),
                ("link_bandwidth".into(), Json::F64(m.noc.link_bandwidth)),
                (
                    "background_factor".into(),
                    Json::F64(m.noc.background_factor),
                ),
            ]),
        ),
        (
            "front_end".into(),
            Json::Obj(vec![
                (
                    "btb_entries".into(),
                    Json::U64(m.front_end.btb_entries as u64),
                ),
                ("btb_ways".into(), Json::U64(m.front_end.btb_ways as u64)),
                (
                    "ftq_entries".into(),
                    Json::U64(m.front_end.ftq_entries as u64),
                ),
                (
                    "btb_prefetch_buffer".into(),
                    Json::U64(m.front_end.btb_prefetch_buffer as u64),
                ),
                (
                    "l1i_prefetch_buffer".into(),
                    Json::U64(m.front_end.l1i_prefetch_buffer as u64),
                ),
                (
                    "ras_entries".into(),
                    Json::U64(m.front_end.ras_entries as u64),
                ),
                ("l1i_mshrs".into(), Json::U64(m.front_end.l1i_mshrs as u64)),
            ]),
        ),
        (
            "tage".into(),
            Json::Obj(vec![
                ("base_bits".into(), Json::U64(m.tage.base_bits as u64)),
                (
                    "tagged_tables".into(),
                    Json::U64(m.tage.tagged_tables as u64),
                ),
                ("tagged_bits".into(), Json::U64(m.tage.tagged_bits as u64)),
                ("tag_width".into(), Json::U64(m.tage.tag_width as u64)),
                ("min_history".into(), Json::U64(m.tage.min_history as u64)),
                ("max_history".into(), Json::U64(m.tage.max_history as u64)),
            ]),
        ),
        (
            "backend".into(),
            Json::Obj(vec![
                ("load_fraction".into(), Json::F64(m.backend.load_fraction)),
                ("l1d_miss_rate".into(), Json::F64(m.backend.l1d_miss_rate)),
                (
                    "llc_data_miss_rate".into(),
                    Json::F64(m.backend.llc_data_miss_rate),
                ),
                (
                    "miss_shadow_instrs".into(),
                    Json::U64(m.backend.miss_shadow_instrs as u64),
                ),
            ]),
        ),
        ("memory_ns".into(), Json::F64(m.memory_ns)),
    ])
}

/// The full configuration document of one single-workload cell —
/// everything besides the workload itself that determines its
/// statistics. [`config_hash`] of this document is the config half of
/// the cell's [`CellKey`].
pub fn cell_config_json(
    machine: &MachineConfig,
    scheme: &SchemeSpec,
    len: RunLength,
    seed: u64,
    sampling: Option<SamplingSpec>,
) -> Json {
    Json::Obj(vec![
        ("machine".into(), machine_to_json(machine)),
        ("scheme".into(), scheme_to_json(scheme)),
        ("warmup".into(), Json::U64(len.warmup)),
        ("measure".into(), Json::U64(len.measure)),
        ("seed".into(), Json::U64(seed)),
        (
            "sampling".into(),
            sampling.map_or(Json::Null, |s| {
                Json::Obj(vec![
                    ("interval".into(), Json::U64(s.interval)),
                    ("detail".into(), Json::U64(s.detail)),
                    ("warmup".into(), Json::U64(s.warmup)),
                ])
            }),
        ),
    ])
}

/// Content address of one cell result: engine version, workload
/// fingerprint, and the hash of everything else that determines the
/// cell's statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// [`ENGINE_VERSION`] at computation time.
    pub engine_version: u32,
    /// Fingerprint of the workload program (and of its recorded trace).
    pub fingerprint: ProgramFingerprint,
    /// [`config_hash`] over [`cell_config_json`].
    pub config_hash: u64,
}

impl CellKey {
    /// Builds the key of a single-workload cell under the current
    /// [`ENGINE_VERSION`].
    pub fn for_cell(
        fingerprint: ProgramFingerprint,
        machine: &MachineConfig,
        scheme: &SchemeSpec,
        len: RunLength,
        seed: u64,
        sampling: Option<SamplingSpec>,
    ) -> CellKey {
        CellKey {
            engine_version: ENGINE_VERSION,
            fingerprint,
            config_hash: config_hash(&cell_config_json(machine, scheme, len, seed, sampling)),
        }
    }

    /// The key as a filesystem-safe hex content address.
    pub fn address(&self) -> String {
        format!(
            "{:08x}-{:016x}{:016x}-{:016x}",
            self.engine_version, self.fingerprint.blocks, self.fingerprint.digest, self.config_hash,
        )
    }
}

/// A cached cell result: exactly the measured data a
/// [`SweepCell`](crate::SweepCell) carries (derived metrics are
/// recomputed against the sweep's baseline at report-assembly time, so
/// they never go stale in the cache).
#[derive(Clone, Debug, PartialEq)]
pub struct CellValue {
    /// Raw measured statistics.
    pub stats: SimStats,
    /// Sampled-mode summary, when the cell ran sampled.
    pub sampling: Option<CellSampling>,
}

impl CellValue {
    /// Serializes the value with the same encoders report cells use —
    /// the property that makes served == computed byte-identical.
    pub fn to_json(&self) -> Json {
        let mut members = vec![("stats".into(), stats_to_json(&self.stats))];
        if let Some(sampling) = &self.sampling {
            members.push(("sampling".into(), sampling_to_json(sampling)));
        }
        Json::Obj(members)
    }

    /// Parses a value emitted by [`Self::to_json`].
    pub fn from_json(doc: &Json) -> Result<CellValue, String> {
        Ok(CellValue {
            stats: stats_from_json(doc.req("stats")?)?,
            sampling: match doc.get("sampling") {
                None => None,
                Some(s) => Some(sampling_from_json(s)?),
            },
        })
    }
}

/// A cell-result cache the [`Experiment`](crate::Experiment) sweep
/// consults before simulating and writes back after. Implementations
/// must tolerate concurrent calls from worker threads; a lossy store
/// (one that forgets entries) only costs recomputation, never
/// correctness.
pub trait CellStore: Send + Sync {
    /// Looks up a cached cell result.
    fn get(&self, key: &CellKey) -> Option<CellValue>;
    /// Persists a freshly computed cell result.
    fn put(&self, key: &CellKey, value: &CellValue);
}

/// In-memory [`CellStore`] with hit/miss/put counters — the reference
/// implementation, used by tests and as the building block for
/// process-lifetime caching.
#[derive(Default)]
pub struct MemoryCellStore {
    cells: Mutex<FastMap<CellKey, CellValue>>,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
}

impl MemoryCellStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries written.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .expect("cell-store mutex poisoned: a sweep worker panicked")
            .len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CellStore for MemoryCellStore {
    fn get(&self, key: &CellKey) -> Option<CellValue> {
        let found = self
            .cells
            .lock()
            .expect("cell-store mutex poisoned: a sweep worker panicked")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: &CellKey, value: &CellValue) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.cells
            .lock()
            .expect("cell-store mutex poisoned: a sweep worker panicked")
            .insert(*key, value.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_doc() -> Json {
        Json::Obj(vec![
            ("b".into(), Json::U64(2)),
            ("a".into(), Json::F64(1.5)),
            (
                "nested".into(),
                Json::Obj(vec![
                    ("y".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
                    ("x".into(), Json::Str("s".into())),
                ]),
            ),
        ])
    }

    #[test]
    fn hash_ignores_member_order_but_not_values() {
        let doc = sample_doc();
        let reordered = Json::Obj(vec![
            (
                "nested".into(),
                Json::Obj(vec![
                    ("x".into(), Json::Str("s".into())),
                    ("y".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
                ]),
            ),
            ("a".into(), Json::F64(1.5)),
            ("b".into(), Json::U64(2)),
        ]);
        assert_eq!(config_hash(&doc), config_hash(&reordered));

        let mut changed = sample_doc();
        if let Json::Obj(members) = &mut changed {
            members[0].1 = Json::U64(3);
        }
        assert_ne!(config_hash(&doc), config_hash(&changed));
    }

    #[test]
    fn hash_survives_json_round_trip() {
        let doc = sample_doc();
        let back = parse(&doc.render()).unwrap();
        assert_eq!(config_hash(&doc), config_hash(&back));
    }

    #[test]
    fn array_order_still_matters() {
        let a = Json::Arr(vec![Json::U64(1), Json::U64(2)]);
        let b = Json::Arr(vec![Json::U64(2), Json::U64(1)]);
        assert_ne!(config_hash(&a), config_hash(&b));
    }

    #[test]
    fn distinct_configs_get_distinct_keys() {
        let machine = MachineConfig::table3();
        let fp = ProgramFingerprint {
            blocks: 10,
            digest: 99,
        };
        let base = CellKey::for_cell(
            fp,
            &machine,
            &SchemeSpec::shotgun(),
            RunLength::SMOKE,
            7,
            None,
        );
        let other_scheme =
            CellKey::for_cell(fp, &machine, &SchemeSpec::Fdip, RunLength::SMOKE, 7, None);
        let other_seed = CellKey::for_cell(
            fp,
            &machine,
            &SchemeSpec::shotgun(),
            RunLength::SMOKE,
            8,
            None,
        );
        let sampled = CellKey::for_cell(
            fp,
            &machine,
            &SchemeSpec::shotgun(),
            RunLength::SMOKE,
            7,
            Some(SamplingSpec::DEFAULT),
        );
        let mut tweaked_machine = machine.clone();
        tweaked_machine.l1i.kib = 64;
        let other_machine = CellKey::for_cell(
            fp,
            &tweaked_machine,
            &SchemeSpec::shotgun(),
            RunLength::SMOKE,
            7,
            None,
        );
        let keys = [base, other_scheme, other_seed, sampled, other_machine];
        for (i, k) in keys.iter().enumerate() {
            for prev in &keys[..i] {
                assert_ne!(prev.address(), k.address());
            }
        }
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = MemoryCellStore::new();
        let key = CellKey {
            engine_version: ENGINE_VERSION,
            fingerprint: ProgramFingerprint {
                blocks: 1,
                digest: 2,
            },
            config_hash: 3,
        };
        assert!(store.get(&key).is_none());
        let value = CellValue {
            stats: SimStats {
                cycles: 123,
                instructions: 456,
                ..Default::default()
            },
            sampling: None,
        };
        store.put(&key, &value);
        assert_eq!(store.get(&key), Some(value));
        assert_eq!((store.hits(), store.misses(), store.puts()), (1, 1, 1));
    }
}
