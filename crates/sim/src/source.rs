//! Enum dispatch over the known retired-stream producers.
//!
//! [`BlockSource`] stays the extension seam — anything can feed the
//! pipeline through [`SourceKind::Other`] — but the sources every sweep
//! actually uses are known at compile time, and `next_block` sits on
//! the hot path (once per retired basic block, tens of millions of
//! times per cell). Dispatching over this enum instead of a
//! `Box<dyn BlockSource>` lets the compiler inline the executor walk
//! and the trace decoder straight into the tick loop.

use fe_cfg::Executor;
use fe_model::{BlockSource, RetiredBlock};
use fe_trace::{StoreReplayer, TraceReplayer};

use crate::batch::SharedCursor;

/// Where the retired control-flow stream comes from, dispatched
/// statically over the kinds the sweeps use.
pub enum SourceKind<'p> {
    /// A live executor walk over the program.
    Live(Executor<'p>),
    /// Replay of an `fe-trace` recording — in-memory or loaded from
    /// disk, both replay through the same decoder.
    Replay(TraceReplayer<'p>),
    /// One reader of a batch engine's shared decode window (see the
    /// [`batch`](crate::batch) module): the underlying trace is decoded
    /// once for every cell of the batch.
    Shared(SharedCursor<'p>),
    /// Replay of a chunk-compressed v2 trace store — same stream as
    /// [`SourceKind::Replay`] over the same recording, but `skip_instrs`
    /// seeks via the chunk index, decoding only the chunk it lands in.
    Store(StoreReplayer<'p>),
    /// The extension seam: any other [`BlockSource`], dynamically
    /// dispatched exactly as the whole pipeline used to be.
    Other(Box<dyn BlockSource + 'p>),
}

impl BlockSource for SourceKind<'_> {
    #[inline]
    fn next_block(&mut self) -> Option<RetiredBlock> {
        match self {
            SourceKind::Live(exec) => BlockSource::next_block(exec),
            SourceKind::Replay(replay) => replay.next_block(),
            SourceKind::Shared(cursor) => cursor.next_block(),
            SourceKind::Store(replay) => replay.next_block(),
            SourceKind::Other(source) => source.next_block(),
        }
    }

    #[inline]
    fn skip_instrs(&mut self, min_instrs: u64) -> u64 {
        match self {
            SourceKind::Live(exec) => BlockSource::skip_instrs(exec, min_instrs),
            SourceKind::Replay(replay) => replay.skip_instrs(min_instrs),
            SourceKind::Shared(cursor) => cursor.skip_instrs(min_instrs),
            SourceKind::Store(replay) => replay.skip_instrs(min_instrs),
            SourceKind::Other(source) => source.skip_instrs(min_instrs),
        }
    }
}

impl SourceKind<'_> {
    /// Appends up to `n` blocks to `out`, returning how many arrived
    /// (short only when the stream ends). A shared cursor delivers the
    /// whole run under one window lock; every other kind degrades to
    /// `n` plain `next_block` calls.
    pub(crate) fn next_blocks_into(
        &mut self,
        n: usize,
        out: &mut std::collections::VecDeque<RetiredBlock>,
    ) -> usize {
        if let SourceKind::Shared(cursor) = self {
            return cursor.next_blocks_into(n, out);
        }
        let mut taken = 0;
        while taken < n {
            match self.next_block() {
                Some(rb) => {
                    out.push_back(rb);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }
}

impl<'p> From<Executor<'p>> for SourceKind<'p> {
    fn from(exec: Executor<'p>) -> Self {
        SourceKind::Live(exec)
    }
}

impl<'p> From<TraceReplayer<'p>> for SourceKind<'p> {
    fn from(replay: TraceReplayer<'p>) -> Self {
        SourceKind::Replay(replay)
    }
}

impl<'p> From<Box<dyn BlockSource + 'p>> for SourceKind<'p> {
    fn from(source: Box<dyn BlockSource + 'p>) -> Self {
        SourceKind::Other(source)
    }
}

impl<'p> From<SharedCursor<'p>> for SourceKind<'p> {
    fn from(cursor: SharedCursor<'p>) -> Self {
        SourceKind::Shared(cursor)
    }
}

impl<'p> From<StoreReplayer<'p>> for SourceKind<'p> {
    fn from(replay: StoreReplayer<'p>) -> Self {
        SourceKind::Store(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cfg::workloads;
    use fe_trace::{Trace, TraceStore};

    #[test]
    fn every_kind_yields_the_same_stream() {
        let program = workloads::nutch().scaled(0.05).build();
        let trace = Trace::record(&program, 7, 2_000);
        let mut live = SourceKind::from(Executor::new(&program, 7));
        let mut replay = SourceKind::from(trace.replayer());
        let boxed: Box<dyn BlockSource> = Box::new(trace.replayer());
        let mut other = SourceKind::from(boxed);
        assert!(matches!(live, SourceKind::Live(_)));
        assert!(matches!(replay, SourceKind::Replay(_)));
        assert!(matches!(other, SourceKind::Other(_)));
        for _ in 0..trace.header().block_count {
            let expected = live.next_block();
            assert_eq!(replay.next_block(), expected);
            assert_eq!(other.next_block(), expected);
        }
    }

    #[test]
    fn skip_agrees_across_kinds() {
        let program = workloads::apache().scaled(0.05).build();
        let trace = Trace::record(&program, 9, 5_000);
        let mut live = SourceKind::from(Executor::new(&program, 9));
        let mut replay = SourceKind::from(trace.replayer());
        assert_eq!(live.skip_instrs(1_234), replay.skip_instrs(1_234));
        assert_eq!(live.next_block(), replay.next_block());
    }

    #[test]
    fn store_kind_replays_the_recorded_stream() {
        let program = workloads::zeus().scaled(0.05).build();
        let trace = Trace::record(&program, 11, 5_000);
        let store = TraceStore::from_trace_with(&trace, "source test", 128);
        let mut flat = SourceKind::from(trace.replayer());
        let mut chunked = SourceKind::from(store.replayer());
        assert!(matches!(chunked, SourceKind::Store(_)));
        assert_eq!(flat.skip_instrs(2_000), chunked.skip_instrs(2_000));
        loop {
            let expected = flat.next_block();
            assert_eq!(chunked.next_block(), expected);
            if expected.is_none() {
                break;
            }
        }
    }
}
