//! Warmed-uarch-state snapshots: skip functional warming on repeated
//! sampled runs.
//!
//! A sampled cell (see [`sampling`](crate::sampling)) starts by
//! functionally warming `len.warmup` instructions — draining the
//! retired stream through the update-only paths of the L1-I, the LLC,
//! TAGE, the retire RAS, and the scheme's own structures. Warming is
//! deterministic, so for a fixed (workload fingerprint, seed, machine,
//! scheme, warmup length) the post-warmup state is always the same —
//! and a long-running service that sweeps the same workloads
//! repeatedly (parameter studies share every non-swept cell input) can
//! capture that state once and restore it on every subsequent run.
//!
//! A [`WarmSnapshot`] is a deep copy of exactly the structures the
//! warm path touches, plus the stream position it stopped at. Restoring
//! installs the copies into a fresh simulator and seeks the replayer to
//! the same position (a cheap decode-skip), after which the measured
//! intervals proceed **bit-identically** to a run that warmed
//! functionally — snapshots are an exactness-preserving cache, not an
//! approximation. The [`SnapshotStore`] holds them in memory for the
//! lifetime of the process (a daemon's working set), bounded by a
//! capacity; full-detail runs never use snapshots (their warmup runs
//! through the timed pipeline, which is the measurement, not a
//! warm-up).
//!
//! Schemes ride along as clones of their concrete state; the
//! dynamic-dispatch extension seam
//! ([`SchemeKind::Other`](crate::SchemeKind)) is not cloneable, so
//! such cells simply never snapshot (and never lose correctness).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fe_baselines::{Boomerang, Confluence, Fdip, NoPrefetch};
use fe_model::MachineConfig;
use fe_trace::ProgramFingerprint;
use fe_uarch::{FastMap, LineCache, MemSnapshot, ReturnAddressStack, Tage};
use shotgun::ShotgunPrefetcher;

use crate::cache::{config_hash, machine_to_json, ENGINE_VERSION};
use crate::engine::{EngineScheme, Simulator};
use crate::experiment::scheme_to_json;
use crate::json::Json;
use crate::runner::SchemeSpec;
use crate::SchemeKind;

/// Identifies one warmed state: everything that determines the
/// post-warmup microarchitectural contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SnapshotKey {
    /// [`ENGINE_VERSION`] at capture time — a warm-path change must
    /// invalidate snapshots just like it invalidates cached cells.
    pub engine_version: u32,
    /// Fingerprint of the workload program / recorded trace.
    pub fingerprint: ProgramFingerprint,
    /// Hash over (machine, scheme, seed, warmup instructions).
    pub config_hash: u64,
}

impl SnapshotKey {
    /// Key of the warmed state a sampled run of `scheme` reaches after
    /// `warmup` instructions.
    pub fn for_run(
        fingerprint: ProgramFingerprint,
        machine: &MachineConfig,
        scheme: &SchemeSpec,
        seed: u64,
        warmup: u64,
    ) -> SnapshotKey {
        let doc = Json::Obj(vec![
            ("machine".into(), machine_to_json(machine)),
            ("scheme".into(), scheme_to_json(scheme)),
            ("seed".into(), Json::U64(seed)),
            ("warmup".into(), Json::U64(warmup)),
        ]);
        SnapshotKey {
            engine_version: ENGINE_VERSION,
            fingerprint,
            config_hash: config_hash(&doc),
        }
    }
}

/// Clone of a scheme's concrete warmed state. The enum-dispatch kinds
/// are all plain owned data; the boxed dynamic extension seam is not
/// cloneable and therefore not snapshottable.
#[derive(Clone)]
enum WarmScheme {
    NoPrefetch(NoPrefetch),
    Fdip(Fdip),
    Boomerang(Boomerang),
    Confluence(Confluence),
    Shotgun(ShotgunPrefetcher),
    Ideal,
}

impl WarmScheme {
    fn capture(scheme: &EngineScheme) -> Option<WarmScheme> {
        Some(match scheme {
            EngineScheme::Ideal => WarmScheme::Ideal,
            EngineScheme::Real(kind) => match kind {
                SchemeKind::NoPrefetch(s) => WarmScheme::NoPrefetch((**s).clone()),
                SchemeKind::Fdip(s) => WarmScheme::Fdip((**s).clone()),
                SchemeKind::Boomerang(s) => WarmScheme::Boomerang((**s).clone()),
                SchemeKind::Confluence(s) => WarmScheme::Confluence((**s).clone()),
                SchemeKind::Shotgun(s) => WarmScheme::Shotgun((**s).clone()),
                SchemeKind::Other(_) => return None,
            },
        })
    }

    fn install(&self) -> EngineScheme {
        match self {
            WarmScheme::NoPrefetch(s) => EngineScheme::real(s.clone()),
            WarmScheme::Fdip(s) => EngineScheme::real(s.clone()),
            WarmScheme::Boomerang(s) => EngineScheme::real(s.clone()),
            WarmScheme::Confluence(s) => EngineScheme::real(s.clone()),
            WarmScheme::Shotgun(s) => EngineScheme::real(s.clone()),
            WarmScheme::Ideal => EngineScheme::Ideal,
        }
    }
}

/// Deep copy of the scheme-*independent* structures the functional
/// warm path mutates: L1-I, TAGE, retire RAS, and the memory image.
/// Shared by [`WarmSnapshot`] (cross-run caching) and the batch
/// engine's shared-warm pass (within one batch, one leader warms these
/// once and clones of them are installed into every same-config cell —
/// the structures depend only on the retired stream, never on the
/// scheme riding above them).
#[derive(Clone)]
pub(crate) struct WarmStructures {
    l1i: LineCache,
    tage: Tage,
    retire_ras: ReturnAddressStack,
    mem: MemSnapshot,
}

/// Deep copy of every structure the functional warm path mutates, plus
/// the stream position warming stopped at. See the module docs for the
/// exactness argument.
pub struct WarmSnapshot {
    structures: WarmStructures,
    scheme: WarmScheme,
    /// Instructions the warm phase consumed (block-aligned).
    warmed: u64,
}

impl<'p> Simulator<'p> {
    /// Captures the scheme-independent warmed structures. `None` when
    /// the memory system is not snapshottable (shared memory group).
    pub(crate) fn capture_warm_structures(&self) -> Option<WarmStructures> {
        let s = &self.state;
        Some(WarmStructures {
            l1i: s.l1i.clone(),
            tage: s.tage.clone(),
            retire_ras: s.retire_ras.clone(),
            mem: s.mem.snapshot()?,
        })
    }

    /// Installs deep copies of scheme-independent warmed structures.
    /// The stream position must already match the capture point.
    pub(crate) fn install_warm_structures(&mut self, ws: &WarmStructures) {
        let s = &mut self.state;
        s.l1i = ws.l1i.clone();
        s.tage = ws.tage.clone();
        s.retire_ras = ws.retire_ras.clone();
        s.mem = ws.mem.thaw();
    }

    /// Captures the current warmed state. Call immediately after the
    /// initial functional warm of a sampled run, before any interval.
    /// `None` when the scheme or the memory system is not
    /// snapshottable (dynamic-dispatch scheme, shared memory group).
    pub(crate) fn capture_warm(&self) -> Option<WarmSnapshot> {
        Some(WarmSnapshot {
            scheme: WarmScheme::capture(&self.state.scheme)?,
            structures: self.capture_warm_structures()?,
            warmed: self.state.retired_total,
        })
    }

    /// Restores a warmed state into a *fresh* simulator built over the
    /// same (program, trace, seed, machine, scheme): seeks the source
    /// past the warmed prefix (cheap decode-skip on a replayer) and
    /// installs deep copies of the warmed structures. The subsequent
    /// measured intervals are bit-identical to warming functionally.
    pub(crate) fn restore_warm(&mut self, snap: &WarmSnapshot) {
        let skipped = self.skip_functional(snap.warmed);
        debug_assert_eq!(
            skipped, snap.warmed,
            "snapshot warmed past the source's end — mismatched snapshot?"
        );
        self.install_warm_structures(&snap.structures);
        self.state.scheme = snap.scheme.install();
    }
}

/// In-memory, process-lifetime store of [`WarmSnapshot`]s, bounded to
/// `capacity` entries with least-recently-used eviction — a hit
/// refreshes the entry's recency, so a snapshot in steady reuse is
/// never the one evicted by newly warmed cells. Thread-safe; entries
/// are shared out as [`Arc`]s so restores never copy the stored state
/// until installation.
pub struct SnapshotStore {
    entries: Mutex<Store>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct Store {
    map: FastMap<SnapshotKey, Arc<WarmSnapshot>>,
    /// Recency order, least recently used first.
    order: Vec<SnapshotKey>,
}

impl Store {
    /// Moves `key` to the most-recently-used end of the order.
    fn touch(&mut self, key: &SnapshotKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }
}

impl SnapshotStore {
    /// Default capacity: ample for a (6 workloads × a dozen schemes)
    /// service working set while bounding memory (a snapshot is
    /// dominated by the LLC image — several MB at Table 3 sizing).
    pub const DEFAULT_CAPACITY: usize = 128;

    /// A store with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A store holding at most `capacity` snapshots.
    pub fn with_capacity(capacity: usize) -> Self {
        SnapshotStore {
            entries: Mutex::new(Store::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a warmed state; a hit refreshes the entry's recency.
    pub fn get(&self, key: &SnapshotKey) -> Option<Arc<WarmSnapshot>> {
        let mut store = self.entries.lock().expect("snapshot-store mutex poisoned");
        let found = store.map.get(key).cloned();
        match &found {
            Some(_) => {
                store.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed)
            }
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a warmed state, evicting the least recently used entry
    /// when full. Re-putting an existing key keeps the stored snapshot
    /// but refreshes its recency.
    pub fn put(&self, key: SnapshotKey, snapshot: WarmSnapshot) {
        let mut store = self.entries.lock().expect("snapshot-store mutex poisoned");
        if store.map.contains_key(&key) {
            store.touch(&key);
            return;
        }
        if store.order.len() >= self.capacity {
            let oldest = store.order.remove(0);
            store.map.remove(&oldest);
        }
        store.order.push(key);
        store.map.insert(key, Arc::new(snapshot));
    }

    /// Lookups that found a snapshot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshots currently held.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("snapshot-store mutex poisoned")
            .map
            .len()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{
        run_scheme_sampled_replayed, run_scheme_sampled_replayed_snapshot, RunLength,
    };
    use crate::sampling::SamplingSpec;
    use fe_cfg::workloads;
    use fe_trace::Trace;

    const LEN: RunLength = RunLength {
        warmup: 60_000,
        measure: 300_000,
    };
    const SPEC: SamplingSpec = SamplingSpec {
        interval: 100_000,
        detail: 20_000,
        warmup: 20_000,
    };

    #[test]
    fn snapshot_runs_are_bit_identical_to_functional_warming() {
        let program = workloads::nutch().scaled(0.05).build();
        let machine = MachineConfig::table3();
        let trace = Trace::record(&program, 7, LEN.trace_instrs(&machine));
        let store = SnapshotStore::new();
        for scheme in [
            SchemeSpec::NoPrefetch,
            SchemeSpec::boomerang(),
            SchemeSpec::shotgun(),
            SchemeSpec::Confluence,
            SchemeSpec::Ideal,
        ] {
            let plain =
                run_scheme_sampled_replayed(&program, &trace, &scheme, &machine, LEN, SPEC, 7);
            let cold = run_scheme_sampled_replayed_snapshot(
                &program,
                &trace,
                &scheme,
                &machine,
                LEN,
                SPEC,
                7,
                Some(&store),
            );
            let warm = run_scheme_sampled_replayed_snapshot(
                &program,
                &trace,
                &scheme,
                &machine,
                LEN,
                SPEC,
                7,
                Some(&store),
            );
            assert_eq!(plain, cold, "first snapshot run ({})", scheme.label());
            assert_eq!(plain, warm, "restored snapshot run ({})", scheme.label());
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.hits(), 5, "second run of each scheme restores");
    }

    #[test]
    fn keys_separate_warmups_and_schemes() {
        let machine = MachineConfig::table3();
        let fp = ProgramFingerprint {
            blocks: 3,
            digest: 4,
        };
        let a = SnapshotKey::for_run(fp, &machine, &SchemeSpec::shotgun(), 7, 100);
        let b = SnapshotKey::for_run(fp, &machine, &SchemeSpec::shotgun(), 7, 200);
        let c = SnapshotKey::for_run(fp, &machine, &SchemeSpec::Fdip, 7, 100);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn store_capacity_evicts_oldest() {
        let program = workloads::nutch().scaled(0.05).build();
        let machine = MachineConfig::table3();
        let trace = Trace::record(&program, 7, LEN.trace_instrs(&machine));
        let store = SnapshotStore::with_capacity(1);
        for seed_scheme in [SchemeSpec::NoPrefetch, SchemeSpec::Fdip] {
            run_scheme_sampled_replayed_snapshot(
                &program,
                &trace,
                &seed_scheme,
                &machine,
                LEN,
                SPEC,
                7,
                Some(&store),
            );
        }
        assert_eq!(store.len(), 1, "older snapshot evicted");
    }

    #[test]
    fn hit_refreshes_recency_so_eviction_targets_the_stale_entry() {
        let program = workloads::nutch().scaled(0.05).build();
        let machine = MachineConfig::table3();
        let trace = Trace::record(&program, 7, LEN.trace_instrs(&machine));
        let store = SnapshotStore::with_capacity(2);
        let run = |scheme: &SchemeSpec| {
            run_scheme_sampled_replayed_snapshot(
                &program,
                &trace,
                scheme,
                &machine,
                LEN,
                SPEC,
                7,
                Some(&store),
            );
        };
        // Fill: NoPrefetch is now the oldest insertion, Fdip the newest.
        run(&SchemeSpec::NoPrefetch);
        run(&SchemeSpec::Fdip);
        // Hit NoPrefetch: under stale insertion-order eviction it would
        // still be first in line; the hit must move it to the back.
        run(&SchemeSpec::NoPrefetch);
        assert_eq!(store.hits(), 1);
        // Third distinct key: the eviction victim must be Fdip (least
        // recently used), not the just-hit NoPrefetch.
        run(&SchemeSpec::boomerang());
        assert_eq!(store.len(), 2);
        run(&SchemeSpec::NoPrefetch);
        assert_eq!(store.hits(), 2, "refreshed entry survived the eviction");
        run(&SchemeSpec::Fdip);
        assert_eq!(store.hits(), 2, "stale entry was the one evicted");
        assert_eq!(store.misses(), 4, "cold runs plus the re-warmed Fdip");
    }
}
