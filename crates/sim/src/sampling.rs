//! Interval sampling with functional warming (SMARTS-style) — the
//! paper-scale run mode.
//!
//! The paper's methodology (§5.1) evaluates schemes over traces of
//! hundreds of millions of instructions; ticking every cycle of every
//! cell caps sweeps at short synthetic windows. Sampled simulation
//! covers the same instruction counts at a fraction of the cost by
//! partitioning the run into fixed-size **intervals** and timing only a
//! small **detail** window of each:
//!
//! ```text
//! |   fast-forward (seek)   | functional warm |  timed detail  |
//! |<------- skip --------->|<--- warmup ---->|<-- measured -->|
//! |<------------------------ interval ----------------------->|
//! ```
//!
//! * **Fast-forward** advances the retired stream without touching any
//!   state — on a trace replayer this is a decode-skip
//!   ([`BlockSource::skip_instrs`]) many times faster than the timed
//!   loop.
//! * **Functional warming** drains blocks through the update-only
//!   paths: L1-I line residency, TAGE, the retire RAS, and the
//!   scheme's [`warm_block`](fe_uarch::scheme::ControlFlowDelivery::warm_block)
//!   hook (BTB/U-BTB/C-BTB/RIB, footprints), so the timed window does
//!   not start on cold structures.
//! * **Timed detail** runs the ordinary cycle-accurate pipeline: a
//!   short unmeasured ramp refills the FTQ/supply, then the window's
//!   statistics are measured exactly as a full-detail run would.
//!
//! Per-interval [`SimStats`] aggregate into mean IPC / MPKI with a 95%
//! confidence interval (normal approximation over intervals).
//!
//! ## Error model
//!
//! Sampling is an approximation: the fast-forwarded stretch issues no
//! NoC traffic (queue contention is not warmed), the backend's load
//! RNG samples a different stream, and each detail window pays a small
//! cold-pipeline ramp. On the Table 2 suite, front-end stall cycles
//! per kilo-instruction stay within **max(10% relative, 0.5 absolute,
//! the cell's own 95% CI)** of a full-detail run and IPC within
//! **5%**, at the default spec's 10% timed fraction — the bounds the
//! `fe-bench` `sampling` binary checks (the CI term covers bursty
//! workloads whose per-interval variance dominates at few intervals;
//! it shrinks as `1/sqrt(intervals)`). Full (non-sampled) runs do not
//! go through this module and stay bit-identical to the pinned engine.

use fe_model::{BlockSource, BranchKind, RetiredBlock, SimStats, INSTR_BYTES};
use fe_uarch::scheme::ControlFlowDelivery;
use fe_uarch::RasEntry;

use crate::engine::{EngineScheme, Simulator};

/// Cap on the unmeasured timed ramp that refills the pipeline before
/// each measured window (the window's first instructions otherwise
/// charge artificial FTQ-empty stalls).
pub(crate) const RAMP_CAP: u64 = 2_048;

/// How a sampled run divides each interval, in instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingSpec {
    /// Total instructions per sampling unit (skip + warmup + detail).
    pub interval: u64,
    /// Cycle-accurate instructions per interval (the measured window,
    /// including its pipeline-fill ramp).
    pub detail: u64,
    /// Functionally warmed instructions immediately before each detail
    /// window.
    pub warmup: u64,
}

impl SamplingSpec {
    /// Default shape: 250K-instruction intervals, 50K functionally
    /// warmed + 25K timed (10% timed, 20% warmed, 70% fast-forwarded —
    /// ~6× wall-clock speedup even on live sources, more on trace
    /// replay, within the documented error bounds). Finer intervals at
    /// the same timed fraction buy more samples, which is what tames
    /// variance on bursty workloads.
    pub const DEFAULT: SamplingSpec = SamplingSpec {
        interval: 250_000,
        detail: 25_000,
        warmup: 50_000,
    };

    /// Checks the shape is runnable: a non-empty detail window that,
    /// together with the warmup, fits the interval.
    pub fn validate(&self) -> Result<(), String> {
        if self.detail == 0 {
            return Err("sampling detail must be at least 1 instruction".into());
        }
        if self.detail + self.warmup > self.interval {
            return Err(format!(
                "sampling detail ({}) + warmup ({}) exceed the interval ({})",
                self.detail, self.warmup, self.interval,
            ));
        }
        Ok(())
    }

    /// Fraction of each interval simulated cycle-accurately.
    pub fn timed_fraction(&self) -> f64 {
        self.detail as f64 / self.interval as f64
    }

    /// Reads the `SHOTGUN_SAMPLING*` environment knobs, falling back to
    /// `self` for anything unset: `SHOTGUN_SAMPLING=interval[:detail[:warmup]]`
    /// sets the whole shape at once, and `SHOTGUN_SAMPLING_INTERVAL` /
    /// `SHOTGUN_SAMPLING_DETAIL` / `SHOTGUN_SAMPLING_WARMUP` override
    /// individual fields (`_` digit separators allowed everywhere).
    pub fn from_env(self) -> SamplingSpec {
        let parse = |text: &str| -> Option<u64> { text.replace('_', "").parse().ok() };
        let mut spec = self;
        // audit-allow(no-env-in-engine): sampling-shape knobs — read once by binaries that opt in via from_env; the resolved spec is recorded in every report, so results stay attributable
        if let Ok(compact) = std::env::var("SHOTGUN_SAMPLING") {
            let mut fields = compact.split(':');
            if let Some(v) = fields.next().and_then(parse) {
                spec.interval = v;
            }
            if let Some(v) = fields.next().and_then(parse) {
                spec.detail = v;
            }
            if let Some(v) = fields.next().and_then(parse) {
                spec.warmup = v;
            }
        }
        // audit-allow(no-env-in-engine): same from_env opt-in as above — per-field overrides of the compact spec
        let env = |name: &str| std::env::var(name).ok().as_deref().and_then(parse);
        if let Some(v) = env("SHOTGUN_SAMPLING_INTERVAL") {
            spec.interval = v;
        }
        if let Some(v) = env("SHOTGUN_SAMPLING_DETAIL") {
            spec.detail = v;
        }
        if let Some(v) = env("SHOTGUN_SAMPLING_WARMUP") {
            spec.warmup = v;
        }
        spec
    }
}

/// A sample mean with its 95% confidence half-width (normal
/// approximation; zero when fewer than two intervals were measured).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanCi {
    /// Arithmetic mean over measured intervals.
    pub mean: f64,
    /// 95% confidence half-width: `1.96 * s / sqrt(n)`.
    pub ci95: f64,
}

/// Computes mean and 95% CI half-width over interval values.
pub fn mean_ci95(values: &[f64]) -> MeanCi {
    let n = values.len();
    if n == 0 {
        return MeanCi {
            mean: 0.0,
            ci95: 0.0,
        };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return MeanCi { mean, ci95: 0.0 };
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0);
    MeanCi {
        mean,
        ci95: 1.96 * (var / n as f64).sqrt(),
    }
}

/// The result of one sampled run: every measured interval's statistics
/// plus truncation state.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledStats {
    /// Per-interval measured statistics, in stream order.
    pub intervals: Vec<SimStats>,
    /// `true` when the block source ran dry before the requested
    /// instruction count (short trace).
    pub truncated: bool,
}

impl SampledStats {
    /// Measured intervals.
    pub fn interval_count(&self) -> u64 {
        self.intervals.len() as u64
    }

    /// Element-wise sum of every interval — the run's aggregate
    /// statistics (ratios derived from it are interval-weighted means).
    pub fn aggregate(&self) -> SimStats {
        let mut total = SimStats::default();
        for s in &self.intervals {
            total.merge(s);
        }
        total
    }

    fn per_interval(&self, f: impl Fn(&SimStats) -> f64) -> Vec<f64> {
        self.intervals.iter().map(f).collect()
    }

    /// Mean ± CI of per-interval IPC.
    pub fn ipc(&self) -> MeanCi {
        mean_ci95(&self.per_interval(SimStats::ipc))
    }

    /// Mean ± CI of per-interval L1-I MPKI.
    pub fn l1i_mpki(&self) -> MeanCi {
        mean_ci95(&self.per_interval(SimStats::l1i_mpki))
    }

    /// Mean ± CI of per-interval front-end stall cycles per
    /// kilo-instruction — the sampled-run error metric.
    pub fn fe_stall_pki(&self) -> MeanCi {
        mean_ci95(&self.per_interval(SimStats::front_end_stall_pki))
    }
}

/// Per-cell sampling summary carried in sweep reports: interval count
/// plus mean/CI of the headline per-interval metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSampling {
    /// Measured intervals in this cell.
    pub intervals: u64,
    /// Per-interval IPC mean ± 95% CI.
    pub ipc: MeanCi,
    /// Per-interval L1-I MPKI mean ± 95% CI.
    pub l1i_mpki: MeanCi,
    /// Per-interval front-end stall cycles per kilo-instruction,
    /// mean ± 95% CI.
    pub fe_stall_pki: MeanCi,
}

impl CellSampling {
    /// Summarizes a sampled run for a report cell.
    pub fn of(stats: &SampledStats) -> CellSampling {
        CellSampling {
            intervals: stats.interval_count(),
            ipc: stats.ipc(),
            l1i_mpki: stats.l1i_mpki(),
            fe_stall_pki: stats.fe_stall_pki(),
        }
    }
}

impl<'p> Simulator<'p> {
    /// Sampled run: functionally warms `warmup` instructions, then
    /// covers `measure` instructions alternating fast-forward /
    /// functional warming / timed measurement per `spec` (see the
    /// module docs). Returns every measured interval's statistics.
    ///
    /// A finite source that runs dry ends the run early with the
    /// intervals measured so far and `truncated` set.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`SamplingSpec::validate`] or if
    /// `measure` cannot fit even one detail window — a run that
    /// silently measured zero intervals would report all-zero
    /// statistics.
    pub fn run_sampled(&mut self, warmup: u64, measure: u64, spec: SamplingSpec) -> SampledStats {
        self.warm_functional(warmup);
        self.run_sampled_measure(measure, spec)
    }

    /// The measured half of [`Self::run_sampled`]: assumes the initial
    /// warmup already happened (functionally, or restored from a
    /// [`WarmSnapshot`](crate::snapshot::WarmSnapshot)) and covers
    /// `measure` instructions in `spec`-shaped intervals.
    pub(crate) fn run_sampled_measure(&mut self, measure: u64, spec: SamplingSpec) -> SampledStats {
        if let Err(e) = spec.validate() {
            // audit-allow(no-unchecked-panic): internal entry point — the public constructors already validated the spec, so reaching here means a crate bug
            panic!("invalid sampling spec: {e}");
        }
        assert!(
            measure >= spec.detail,
            "sampled run measures {measure} instructions — too short for even one \
             {}-instruction detail window (shrink the spec or run full detail)",
            spec.detail,
        );
        let mut intervals = Vec::new();
        let end = self.state.retired_total.saturating_add(measure);
        while self.state.retired_total < end && !self.state.stream_ended() {
            let budget = (end - self.state.retired_total).min(spec.interval);
            if budget < spec.detail {
                // Tail shorter than a detail window: cover it
                // functionally. A sub-length measured window would
                // enter the per-interval statistics at full weight and
                // skew the mean and confidence interval.
                self.warm_functional(budget);
                continue;
            }
            let detail = spec.detail;
            let fwarm = spec.warmup.min(budget - detail);
            let skip = budget - detail - fwarm;
            self.skip_functional(skip);
            self.warm_functional(fwarm);
            if self.state.stream_ended() || !self.begin_interval() {
                break;
            }
            // Unmeasured ramp: refill the FTQ/supply so the measured
            // window does not charge artificial cold-pipeline stalls.
            let ramp = (detail / 16).min(RAMP_CAP);
            let ramp_end = self.state.retired_total + ramp;
            while self.state.retired_total < ramp_end && !self.state.stream_ended() {
                self.cycle();
            }
            self.begin_measurement();
            let measure_end = self.state.retired_total + (detail - ramp);
            while self.state.retired_total < measure_end && !self.state.stream_ended() {
                self.cycle();
            }
            let stats = self.finalize();
            if stats.instructions > 0 {
                intervals.push(stats);
            }
        }
        SampledStats {
            intervals,
            truncated: self.state.source_dry,
        }
    }

    /// Functional warming: drains at least `instrs` instructions from
    /// the source through the update-only paths (no cycles, no memory
    /// traffic), stopping at the first block boundary at or past the
    /// target. Returns the instructions actually warmed.
    pub(crate) fn warm_functional(&mut self, instrs: u64) -> u64 {
        self.warm_functional_with(instrs, &mut [])
    }

    /// [`Self::warm_functional`] with ride-along schemes: every warmed
    /// block is also fed to each rider's
    /// [`warm_block`](ControlFlowDelivery::warm_block) hook against
    /// this cell's front-end context — the batch engine's shared-warm
    /// pass, where one leader walks the warm window and the other
    /// cells' schemes ride along instead of re-walking it themselves.
    /// The context the riders see is the leader's post-`warm_one`
    /// state, exactly what each rider's own serial warm would show at
    /// the same block (the warmed structures are identical across
    /// same-config cells). With no riders this is the serial warm path,
    /// unchanged.
    pub(crate) fn warm_functional_with(&mut self, instrs: u64, riders: &mut [EngineScheme]) -> u64 {
        let mut warmed = 0u64;
        while warmed < instrs {
            // Blocks the timed pipeline already pulled ahead retire
            // first (the front one may be partially consumed).
            let (rb, fresh) = match self.state.oracle.pop_front() {
                Some(front) => {
                    let fresh = (front.block.instr_count as u64)
                        .saturating_sub(std::mem::take(&mut self.state.consumed));
                    (front, fresh)
                }
                None => match self.state.source.next_block() {
                    Some(rb) => (rb, rb.instr_count()),
                    None => {
                        self.state.source_dry = true;
                        break;
                    }
                },
            };
            self.warm_one(&rb);
            if !riders.is_empty() {
                self.state.with_ctx(|ctx| {
                    for rider in riders.iter_mut() {
                        if let EngineScheme::Real(sch) = rider {
                            sch.warm_block(&rb, ctx);
                        }
                    }
                });
            }
            warmed += fresh;
            self.state.retired_total += fresh;
        }
        warmed
    }

    /// Update-only retirement of one block: L1-I and LLC residency,
    /// TAGE, the retire RAS, and the scheme's warm path.
    fn warm_one(&mut self, rb: &RetiredBlock) {
        let s = &mut self.state;
        for line in rb.block.lines() {
            if let fe_uarch::AccessOutcome::Miss = s.l1i.demand_access(line) {
                let _ = s.l1i.install(line, false);
                // The LLC backs every L1-I miss; leaving it cold would
                // charge measured windows memory latency where a
                // full-detail run pays an LLC round trip. Warmed only
                // on the miss path, mirroring the demand path: an
                // L1-I hit never promotes LLC recency in timed runs.
                s.mem.warm_instr(line);
            }
        }
        match rb.block.kind {
            BranchKind::Conditional => {
                s.tage_retire(rb.block.branch_pc(), rb.taken, None);
            }
            BranchKind::Call | BranchKind::Trap => s.retire_ras.push(RasEntry {
                ret: rb.block.fall_through(),
                call_block: rb.block.start,
            }),
            BranchKind::Return | BranchKind::TrapReturn => {
                let _ = s.retire_ras.pop();
            }
            BranchKind::Jump => {}
        }
        s.with_scheme(|scheme, ctx| {
            if let EngineScheme::Real(sch) = scheme {
                sch.warm_block(rb, ctx);
            }
        });
    }

    /// Fast-forward: advances the stream past at least `instrs`
    /// instructions without updating any state. Already-pulled oracle
    /// blocks count first; the rest goes through the source's seekable
    /// skip. Returns the instructions actually skipped.
    pub(crate) fn skip_functional(&mut self, instrs: u64) -> u64 {
        let mut skipped = 0u64;
        while skipped < instrs {
            let Some(front) = self.state.oracle.pop_front() else {
                break;
            };
            skipped += (front.block.instr_count as u64)
                .saturating_sub(std::mem::take(&mut self.state.consumed));
        }
        if skipped < instrs {
            let want = instrs - skipped;
            let got = self.state.source.skip_instrs(want);
            if got < want {
                self.state.source_dry = true;
            }
            skipped += got;
        }
        self.state.retired_total += skipped;
        skipped
    }

    /// Re-arms the timed pipeline after a functional phase: transient
    /// buffers cleared, speculative state resynchronized to retired
    /// state, outstanding fills completed (the functional gap spans
    /// epochs), and the speculative PC pointed at the next block to
    /// retire. Returns `false` when the source is already dry.
    pub(crate) fn begin_interval(&mut self) -> bool {
        let s = &mut self.state;
        let matured: Vec<_> = s
            .inflight
            .pop_ready(u64::MAX)
            .map(|(line, _info)| line)
            .collect();
        for line in matured {
            if !s.l1i.probe(line) {
                let _ = s.l1i.install(line, false);
            }
        }
        s.supply.clear();
        s.ftq.clear();
        s.pred_trace.clear();
        s.waiting_line = None;
        s.bpu_stalled = false;
        s.oracle_pos = 0;
        s.redirect_until = s.now;
        s.tage.redirect();
        s.spec_ras.restore_from(&s.retire_ras);
        self.backend.reset_transients();
        if !s.fill_oracle_to(0) {
            return false;
        }
        s.spec_pc = s.oracle[0].block.start + s.consumed * INSTR_BYTES;
        let pc = s.spec_pc;
        s.with_scheme(|scheme, ctx| {
            if let EngineScheme::Real(sch) = scheme {
                sch.on_redirect(pc, ctx);
            }
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scheme, run_scheme_sampled, RunLength, SchemeSpec};
    use fe_cfg::workloads;
    use fe_model::MachineConfig;

    #[test]
    fn spec_validation_rejects_broken_shapes() {
        assert!(SamplingSpec::DEFAULT.validate().is_ok());
        assert!(SamplingSpec {
            interval: 100,
            detail: 0,
            warmup: 0,
        }
        .validate()
        .is_err());
        assert!(SamplingSpec {
            interval: 100,
            detail: 80,
            warmup: 40,
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "too short for even one")]
    fn measure_too_short_for_one_window_fails_loudly() {
        let program = workloads::nutch().scaled(0.05).build();
        let machine = MachineConfig::table3();
        // measure < detail: would silently measure zero intervals.
        let _ = run_scheme_sampled(
            &program,
            &SchemeSpec::NoPrefetch,
            &machine,
            RunLength {
                warmup: 1_000,
                measure: 10_000,
            },
            SamplingSpec::DEFAULT,
            7,
        );
    }

    #[test]
    fn mean_ci_basics() {
        let m = mean_ci95(&[2.0, 4.0, 6.0]);
        assert!((m.mean - 4.0).abs() < 1e-12);
        assert!(m.ci95 > 0.0);
        assert_eq!(mean_ci95(&[5.0]).ci95, 0.0);
        assert_eq!(mean_ci95(&[]).mean, 0.0);
    }

    #[test]
    fn sampled_run_is_deterministic_and_covers_intervals() {
        let program = workloads::nutch().scaled(0.05).build();
        let machine = MachineConfig::table3();
        let len = RunLength {
            warmup: 50_000,
            measure: 400_000,
        };
        let spec = SamplingSpec {
            interval: 100_000,
            detail: 20_000,
            warmup: 20_000,
        };
        let a = run_scheme_sampled(&program, &SchemeSpec::shotgun(), &machine, len, spec, 7);
        let b = run_scheme_sampled(&program, &SchemeSpec::shotgun(), &machine, len, spec, 7);
        assert_eq!(a, b, "sampled runs must be deterministic");
        assert_eq!(a.interval_count(), 4);
        assert!(!a.truncated);
        let agg = a.aggregate();
        assert!(agg.instructions > 0);
        assert!(agg.cycles > 0);
    }

    #[test]
    fn sampled_stats_track_full_detail_on_a_live_source() {
        let program = workloads::nutch().scaled(0.05).build();
        let machine = MachineConfig::table3();
        let len = RunLength {
            warmup: 100_000,
            measure: 600_000,
        };
        let full = run_scheme(&program, &SchemeSpec::boomerang(), &machine, len, 7);
        let sampled = run_scheme_sampled(
            &program,
            &SchemeSpec::boomerang(),
            &machine,
            len,
            SamplingSpec {
                interval: 100_000,
                detail: 25_000,
                warmup: 25_000,
            },
            7,
        );
        let agg = sampled.aggregate();
        let ipc_err = (agg.ipc() - full.ipc()).abs() / full.ipc();
        assert!(
            ipc_err < 0.05,
            "sampled IPC {} vs full {} (err {:.1}%)",
            agg.ipc(),
            full.ipc(),
            ipc_err * 100.0,
        );
    }
}
