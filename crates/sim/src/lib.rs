//! # fe-sim — cycle-level front-end timing simulation
//!
//! Drives any control-flow-delivery scheme (the `shotgun` crate's
//! prefetcher or any `fe-baselines` scheme) through a decoupled
//! front-end pipeline against the synthetic server workloads of
//! `fe-cfg`, producing the statistics the paper's evaluation reports:
//! speedup over a no-prefetch baseline, front-end stall-cycle coverage,
//! L1-I / BTB MPKI, prefetch accuracy, and L1-D fill latency.
//!
//! ```no_run
//! use fe_cfg::workloads;
//! use fe_model::MachineConfig;
//! use fe_sim::{run_scheme, RunLength, SchemeSpec};
//!
//! let program = workloads::nutch().build();
//! let machine = MachineConfig::table3();
//! let base = run_scheme(&program, &SchemeSpec::NoPrefetch, &machine, RunLength::SMOKE, 7);
//! let shot = run_scheme(&program, &SchemeSpec::shotgun(), &machine, RunLength::SMOKE, 7);
//! println!("speedup {:.2}", fe_model::stats::speedup(&base, &shot));
//! ```

pub mod engine;
pub mod report;
pub mod runner;

pub use engine::{EngineScheme, Simulator};
pub use report::{coverage_series, metric_series, render_table, speedup_series, Series};
pub use runner::{cell, run_scheme, run_suite, CellResult, RunLength, SchemeSpec};
