#![forbid(unsafe_code)]
//! # fe-sim — cycle-level front-end timing simulation
//!
//! Drives any control-flow-delivery scheme (the `shotgun` crate's
//! prefetcher or any `fe-baselines` scheme) through a decoupled
//! front-end pipeline against the synthetic server workloads of
//! `fe-cfg`, producing the statistics the paper's evaluation reports:
//! speedup over a no-prefetch baseline, front-end stall-cycle coverage,
//! L1-I / BTB MPKI, prefetch accuracy, and L1-D fill latency.
//!
//! The entry point is the [`Experiment`] session builder, which runs a
//! (workload × scheme) sweep across worker threads and returns a typed
//! [`SweepReport`] with derived metrics and JSON emission. Sweeps are
//! trace-driven: each workload's retired stream is recorded once (an
//! `fe-trace` recording) and replayed into every scheme cell, bit-
//! identical to live execution. For paper-scale instruction counts,
//! [`Experiment::sampling`] switches cells to interval sampling with
//! functional warming (see the [`sampling`] module). The one-cell
//! [`run_scheme`] (live), [`run_scheme_replayed`] (trace-driven) and
//! [`run_scheme_sampled`]/[`run_scheme_sampled_replayed`] wrappers
//! remain for single measurements.
//!
//! ```no_run
//! use fe_cfg::workloads;
//! use fe_model::MachineConfig;
//! use fe_sim::{Experiment, RunLength, SchemeSpec};
//!
//! let report = Experiment::new(MachineConfig::table3())
//!     .workload(workloads::nutch())
//!     .schemes([SchemeSpec::NoPrefetch, SchemeSpec::shotgun()])
//!     .len(RunLength::SMOKE)
//!     .seed(7)
//!     .run();
//! let cell = report.cell("nutch", &SchemeSpec::shotgun());
//! println!("speedup {:.2}", cell.metrics.speedup.unwrap());
//! ```

pub mod batch;
pub mod cache;
pub mod engine;
pub mod experiment;
pub mod json;
pub mod multi;
mod pipeline;
pub mod report;
pub mod runner;
pub mod sampling;
pub mod snapshot;
pub mod source;

pub use batch::{
    run_schemes_batch_replayed, run_schemes_batch_sampled_replayed, BatchSimulator, SharedCursor,
    SharedWindow,
};
pub use cache::{config_hash, CellKey, CellStore, CellValue, MemoryCellStore, ENGINE_VERSION};
pub use engine::{EngineScheme, SchemeKind, Simulator};
pub use experiment::{
    cells_executed, scheme_from_json, scheme_to_json, CellMetrics, Experiment, Interrupted,
    ProgressEvent, SweepCell, SweepReport, WorkloadId,
};
pub use fe_trace::ProgramFingerprint;
pub use multi::{derive_ctx_seed, ContextStats, MultiSimulator, MultiStats};
pub use report::{render_table, Series};
pub use runner::{
    run_scheme, run_scheme_replayed, run_scheme_sampled, run_scheme_sampled_replayed,
    run_scheme_sampled_replayed_snapshot, run_scheme_store_replayed, RunLength, SchemeSpec,
};
pub use sampling::{CellSampling, MeanCi, SampledStats, SamplingSpec};
pub use snapshot::{SnapshotKey, SnapshotStore, WarmSnapshot};
pub use source::SourceKind;
