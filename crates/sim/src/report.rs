//! Report presentation: per-figure series extracted from a
//! [`SweepReport`] and the aligned text tables the binaries print.

use fe_model::stats::{arithmetic_mean, geometric_mean};
use fe_model::SimStats;

use crate::experiment::SweepReport;

/// A named series of per-workload values plus an aggregate — one group
/// of bars in a paper figure.
#[derive(Clone, Debug)]
pub struct Series {
    /// Scheme / design-point label.
    pub label: String,
    /// `(workload, value)` pairs in presentation order.
    pub values: Vec<(String, f64)>,
    /// Aggregate over workloads (gmean for speedups, mean for rates).
    pub aggregate: f64,
}

impl SweepReport {
    fn series_of(
        &self,
        workloads: &[&str],
        schemes: &[&str],
        value: impl Fn(&crate::experiment::SweepCell) -> f64,
        aggregate_geo: bool,
    ) -> Vec<Series> {
        schemes
            .iter()
            .map(|scheme| {
                let values: Vec<(String, f64)> = workloads
                    .iter()
                    .map(|wl| (wl.to_string(), value(self.cell_labeled(wl, scheme))))
                    .collect();
                let vs: Vec<f64> = values.iter().map(|v| v.1).collect();
                let aggregate = if aggregate_geo {
                    geometric_mean(&vs)
                } else {
                    arithmetic_mean(&vs)
                };
                Series {
                    label: scheme.to_string(),
                    values,
                    aggregate,
                }
            })
            .collect()
    }

    /// Speedup-over-baseline series (Figs. 1, 7, 9, 12, 13). Panics if
    /// the sweep ran without a baseline scheme.
    pub fn speedup_series(&self, workloads: &[&str], schemes: &[&str]) -> Vec<Series> {
        self.series_of(
            workloads,
            schemes,
            |c| {
                c.metrics
                    .speedup
                    .expect("sweep has no baseline scheme for speedups")
            },
            true,
        )
    }

    /// Front-end stall-cycle coverage series (Figs. 6, 8). Panics if
    /// the sweep ran without a baseline scheme.
    pub fn coverage_series(&self, workloads: &[&str], schemes: &[&str]) -> Vec<Series> {
        self.series_of(
            workloads,
            schemes,
            |c| {
                c.metrics
                    .coverage
                    .expect("sweep has no baseline scheme for coverage")
            },
            false,
        )
    }

    /// Series from an arbitrary per-cell statistic (accuracy, fill
    /// latency, MPKI, ...).
    pub fn metric_series(
        &self,
        workloads: &[&str],
        schemes: &[&str],
        metric: impl Fn(&SimStats) -> f64,
        aggregate_geo: bool,
    ) -> Vec<Series> {
        self.series_of(workloads, schemes, |c| metric(&c.stats), aggregate_geo)
    }
}

/// Renders series as an aligned text table: workloads as rows, series
/// as columns, aggregate as the last row.
pub fn render_table(title: &str, series: &[Series], aggregate_name: &str, percent: bool) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    let scale = |v: f64| if percent { v * 100.0 } else { v };
    let unit = if percent { "%" } else { "" };

    out.push_str(&format!("{:12}", "workload"));
    for s in series {
        out.push_str(&format!(" {:>14}", s.label));
    }
    out.push('\n');
    for (i, (wl, _)) in series[0].values.iter().enumerate() {
        out.push_str(&format!("{wl:12}"));
        for s in series {
            out.push_str(&format!(" {:>13.2}{unit}", scale(s.values[i].1)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{aggregate_name:12}"));
    for s in series {
        out.push_str(&format!(" {:>13.2}{unit}", scale(s.aggregate)));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{CellMetrics, SweepCell, WorkloadId};
    use crate::runner::{RunLength, SchemeSpec};
    use fe_model::stats::{coverage, speedup};

    fn stats(cycles: u64, instrs: u64, icache_stalls: u64) -> SimStats {
        let mut s = SimStats {
            cycles,
            instructions: instrs,
            ..Default::default()
        };
        s.stalls.icache_miss = icache_stalls;
        s
    }

    fn metrics(s: &SimStats, base: &SimStats) -> CellMetrics {
        CellMetrics {
            ipc: s.ipc(),
            l1i_mpki: s.l1i_mpki(),
            btb_mpki: s.btb_mpki(),
            prefetch_accuracy: s.prefetch_accuracy(),
            l1d_fill_latency: s.avg_l1d_fill_latency(),
            speedup: Some(speedup(base, s)),
            coverage: Some(coverage(base, s)),
        }
    }

    fn fake_report() -> SweepReport {
        let schemes = vec![SchemeSpec::NoPrefetch, SchemeSpec::Ideal];
        let mut cells = Vec::new();
        for (wl, base_cycles, fast_cycles) in [("a", 2000u64, 1000u64), ("b", 3000, 1500)] {
            let base = stats(base_cycles, 1000, 400);
            let fast = stats(fast_cycles, 1000, 100);
            cells.push(SweepCell {
                workload: WorkloadId(wl.into()),
                scheme: schemes[0].clone(),
                label: "base".into(),
                metrics: metrics(&base, &base),
                stats: base.clone(),
                sampling: None,
            });
            cells.push(SweepCell {
                workload: WorkloadId(wl.into()),
                scheme: schemes[1].clone(),
                label: "fast".into(),
                metrics: metrics(&fast, &base),
                stats: fast,
                sampling: None,
            });
        }
        SweepReport {
            len: RunLength::SMOKE,
            seed: 0,
            baseline: Some("base".into()),
            sampling: None,
            workloads: vec![WorkloadId("a".into()), WorkloadId("b".into())],
            schemes,
            cells,
        }
    }

    #[test]
    fn speedup_series_computes_gmean() {
        let report = fake_report();
        let series = report.speedup_series(&["a", "b"], &["fast"]);
        assert_eq!(series.len(), 1);
        assert!((series[0].values[0].1 - 2.0).abs() < 1e-12);
        assert!((series[0].aggregate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_series_computes_mean() {
        let report = fake_report();
        let series = report.coverage_series(&["a", "b"], &["fast"]);
        assert!((series[0].values[0].1 - 0.75).abs() < 1e-12);
        assert!((series[0].aggregate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn metric_series_applies_function() {
        let report = fake_report();
        let series = report.metric_series(&["a", "b"], &["base"], |s| s.ipc(), false);
        assert!((series[0].values[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table_renders_all_rows() {
        let report = fake_report();
        let series = report.speedup_series(&["a", "b"], &["fast"]);
        let table = render_table("Figure X", &series, "gmean", false);
        assert!(table.contains("Figure X"));
        assert!(table.contains("gmean"));
        assert!(table.lines().count() >= 5);
    }
}
