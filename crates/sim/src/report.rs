//! Report formatting: the tables the figure binaries print.

use fe_model::stats::{arithmetic_mean, coverage, geometric_mean, speedup};
use fe_model::SimStats;

use crate::runner::{cell, CellResult};

/// A named series of per-workload values plus an aggregate — one group
/// of bars in a paper figure.
#[derive(Clone, Debug)]
pub struct Series {
    /// Scheme / design-point label.
    pub label: String,
    /// `(workload, value)` pairs in presentation order.
    pub values: Vec<(String, f64)>,
    /// Aggregate over workloads (gmean for speedups, mean for rates).
    pub aggregate: f64,
}

/// Builds speedup-over-baseline series (Figs. 1, 7, 9, 12, 13).
pub fn speedup_series(
    results: &[CellResult],
    workloads: &[&str],
    baseline: &str,
    schemes: &[&str],
) -> Vec<Series> {
    schemes
        .iter()
        .map(|scheme| {
            let values: Vec<(String, f64)> = workloads
                .iter()
                .map(|wl| {
                    let base = &cell(results, wl, baseline).stats;
                    let s = &cell(results, wl, scheme).stats;
                    (wl.to_string(), speedup(base, s))
                })
                .collect();
            let aggregate = geometric_mean(&values.iter().map(|v| v.1).collect::<Vec<_>>());
            Series { label: scheme.to_string(), values, aggregate }
        })
        .collect()
}

/// Builds front-end stall-cycle coverage series (Figs. 6, 8).
pub fn coverage_series(
    results: &[CellResult],
    workloads: &[&str],
    baseline: &str,
    schemes: &[&str],
) -> Vec<Series> {
    schemes
        .iter()
        .map(|scheme| {
            let values: Vec<(String, f64)> = workloads
                .iter()
                .map(|wl| {
                    let base = &cell(results, wl, baseline).stats;
                    let s = &cell(results, wl, scheme).stats;
                    (wl.to_string(), coverage(base, s))
                })
                .collect();
            let aggregate = arithmetic_mean(&values.iter().map(|v| v.1).collect::<Vec<_>>());
            Series { label: scheme.to_string(), values, aggregate }
        })
        .collect()
}

/// Builds series from an arbitrary per-cell metric (accuracy, fill
/// latency, MPKI, ...).
pub fn metric_series(
    results: &[CellResult],
    workloads: &[&str],
    schemes: &[&str],
    metric: impl Fn(&SimStats) -> f64,
    aggregate_geo: bool,
) -> Vec<Series> {
    schemes
        .iter()
        .map(|scheme| {
            let values: Vec<(String, f64)> = workloads
                .iter()
                .map(|wl| (wl.to_string(), metric(&cell(results, wl, scheme).stats)))
                .collect();
            let vs: Vec<f64> = values.iter().map(|v| v.1).collect();
            let aggregate = if aggregate_geo { geometric_mean(&vs) } else { arithmetic_mean(&vs) };
            Series { label: scheme.to_string(), values, aggregate }
        })
        .collect()
}

/// Renders series as an aligned text table: workloads as rows, series
/// as columns, aggregate as the last row.
pub fn render_table(title: &str, series: &[Series], aggregate_name: &str, percent: bool) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    let scale = |v: f64| if percent { v * 100.0 } else { v };
    let unit = if percent { "%" } else { "" };

    out.push_str(&format!("{:12}", "workload"));
    for s in series {
        out.push_str(&format!(" {:>14}", s.label));
    }
    out.push('\n');
    for (i, (wl, _)) in series[0].values.iter().enumerate() {
        out.push_str(&format!("{wl:12}"));
        for s in series {
            out.push_str(&format!(" {:>13.2}{unit}", scale(s.values[i].1)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{aggregate_name:12}"));
    for s in series {
        out.push_str(&format!(" {:>13.2}{unit}", scale(s.aggregate)));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64, instrs: u64, icache_stalls: u64) -> SimStats {
        let mut s = SimStats { cycles, instructions: instrs, ..Default::default() };
        s.stalls.icache_miss = icache_stalls;
        s
    }

    fn fake_results() -> Vec<CellResult> {
        let mut out = Vec::new();
        for (wl, base_cycles, fast_cycles) in
            [("a", 2000u64, 1000u64), ("b", 3000, 1500)]
        {
            out.push(CellResult {
                workload: wl.into(),
                scheme: "base".into(),
                stats: stats(base_cycles, 1000, 400),
            });
            out.push(CellResult {
                workload: wl.into(),
                scheme: "fast".into(),
                stats: stats(fast_cycles, 1000, 100),
            });
        }
        out
    }

    #[test]
    fn speedup_series_computes_gmean() {
        let results = fake_results();
        let series = speedup_series(&results, &["a", "b"], "base", &["fast"]);
        assert_eq!(series.len(), 1);
        assert!((series[0].values[0].1 - 2.0).abs() < 1e-12);
        assert!((series[0].aggregate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_series_computes_mean() {
        let results = fake_results();
        let series = coverage_series(&results, &["a", "b"], "base", &["fast"]);
        assert!((series[0].values[0].1 - 0.75).abs() < 1e-12);
        assert!((series[0].aggregate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn metric_series_applies_function() {
        let results = fake_results();
        let series =
            metric_series(&results, &["a", "b"], &["base"], |s| s.ipc(), false);
        assert!((series[0].values[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table_renders_all_rows() {
        let results = fake_results();
        let series = speedup_series(&results, &["a", "b"], "base", &["fast"]);
        let table = render_table("Figure X", &series, "gmean", false);
        assert!(table.contains("Figure X"));
        assert!(table.contains("gmean"));
        assert!(table.lines().count() >= 5);
    }
}
