//! Minimal JSON tree, writer and parser — std-only, deterministic.
//!
//! [`SweepReport`](crate::SweepReport) serializes through this module
//! so `BENCH_*.json` artifacts need no external dependencies. The
//! writer is deterministic (object key order is preserved, floats use
//! Rust's shortest round-trippable formatting), which is what makes
//! "same seed ⇒ byte-identical report JSON" testable across thread
//! counts.

use std::fmt::Write as _;

/// A JSON value. Numbers keep an integer/float distinction so `u64`
/// counters survive the round trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (all in-tree counters are `u64`).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved and emitted verbatim.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that errors with the missing key's name.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing key `{key}`"))
    }

    /// Integer accessor (accepts integral floats).
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::U64(v) => Ok(*v),
            Json::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as u64),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    /// Float accessor (accepts integers).
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::U64(v) => Ok(*v as f64),
            Json::F64(v) => Ok(*v),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.hex_escape(self.pos)?;
                            // UTF-16 surrogate pair (foreign emitters
                            // ASCII-escape astral-plane characters as
                            // two \u units); a lone surrogate degrades
                            // to U+FFFD without consuming what follows.
                            if (0xD800..0xDC00).contains(&code)
                                && self.bytes.get(self.pos + 5..self.pos + 7)
                                    == Some(b"\\u".as_slice())
                            {
                                // The low unit's `u` sits 6 bytes past
                                // the high unit's.
                                if let Ok(low) = self.hex_escape(self.pos + 6) {
                                    if (0xDC00..0xE000).contains(&low) {
                                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        self.pos += 6;
                                    }
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("scanner advanced over whole UTF-8 sequences, so the slice ends on a char boundary");
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Reads the four hex digits following the `u` at `at` of a
    /// `\uXXXX` escape (the cursor is not moved).
    fn hex_escape(&self, at: usize) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(at + 1..at + 5)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        std::str::from_utf8(hex)
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number scanner consumed only ASCII digits, signs, and exponents");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_nested_values() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::U64(18_446_744_073_709_551_615)),
            ("b".into(), Json::F64(0.1)),
            (
                "c".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Str("x\"y".into())]),
            ),
            ("d".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-12, 123456.789, 2.0] {
            let text = Json::F64(v).render();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {text}");
        }
    }

    #[test]
    fn u64_counters_survive_exactly() {
        let v = u64::MAX - 3;
        assert_eq!(parse(&Json::U64(v).render()).unwrap(), Json::U64(v));
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let parsed = parse(" { \"k\\n\" : [ 1 , -2.5 ] } ").unwrap();
        assert_eq!(
            parsed,
            Json::Obj(vec![(
                "k\n".into(),
                Json::Arr(vec![Json::U64(1), Json::F64(-2.5)])
            )])
        );
    }

    #[test]
    fn decodes_surrogate_pairs_from_foreign_emitters() {
        // Python's json.dump ASCII-escapes astral-plane chars this way.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        // Lone surrogates degrade to U+FFFD rather than erroring.
        assert_eq!(
            parse("\"\\ud83dx\"").unwrap(),
            Json::Str("\u{FFFD}x".into())
        );
        assert_eq!(
            parse("\"\\ud83d\\u0041\"").unwrap(),
            Json::Str("\u{FFFD}A".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = "{\"z\": 1, \"a\": 2}";
        let doc = parse(text).unwrap();
        if let Json::Obj(members) = &doc {
            assert_eq!(members[0].0, "z");
            assert_eq!(members[1].0, "a");
        } else {
            panic!("expected object");
        }
    }
}
