#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! The workload synthesizer and executor only need a seedable small
//! RNG, uniform floats, and uniform ranges. Vendoring that surface
//! keeps the workspace building with no external dependencies while
//! preserving the `use rand::...` idiom. The generator is
//! xoshiro256++, seeded via SplitMix64 — the same construction the real
//! `SmallRng` used on 64-bit targets.
//!
//! Everything is deterministic per seed; nothing here is
//! cryptographically secure (neither was `SmallRng`).

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface: everything in-tree seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Deterministically expands `seed` into generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, mirroring the subset of `rand::Rng`
/// the workspace calls.
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut RngRef(self))
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics on an empty range, like the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut RngRef(self))
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sized view over a possibly-unsized generator, so the sampling
/// helpers can stay generic over `R: RngCore` (sized).
struct RngRef<'a, R: ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for RngRef<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Standard-distribution sampling (the `rng.gen()` path).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Range sampling (the `rng.gen_range(..)` path).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, 256-bit state, good statistical quality.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, per the xoshiro authors'
            // seeding recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=6u8);
            assert!((2..=6).contains(&w));
            let f = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
