#![forbid(unsafe_code)]
//! Offline stand-in for the `proptest` crate.
//!
//! Implements the surface the workspace's property tests use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, ranges, tuples,
//! [`Just`], `prop_oneof!`, `prop::collection::vec`, `any`, and the
//! `prop_assert*` macros — over a deterministic seeded RNG. Each test
//! runs `ProptestConfig::cases` random cases; there is no shrinking, so
//! a failure reports the failing case's values via `Debug` instead of a
//! minimized counterexample.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only the case count is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the deterministic
        // single-threaded suite fast while still sweeping the space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between strategies of one type (`prop_oneof!`).
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> S::Value {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit: $t = rng.gen();
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Full-range sampling for `any::<T>()`.
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut SmallRng) -> u32 {
        rng.next_u32()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full value range.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec` et al.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Vector of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Runs one property test: `cases` seeded samples of the argument
/// strategies through the body. Used by the [`proptest!`] expansion.
pub fn run_cases<F: FnMut(&mut SmallRng, u32) -> Result<(), String>>(
    config: ProptestConfig,
    name: &str,
    mut body: F,
) {
    // Deterministic per-test seed so failures reproduce exactly.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    for case in 0..config.cases {
        let mut rng = SmallRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
        if let Err(msg) = body(&mut rng, case) {
            panic!(
                "property `{name}` failed on case {case}/{}: {msg}",
                config.cases
            );
        }
    }
}

/// Declares property tests (see crate docs; no-shrinking stand-in).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
        $(
            $(#[$attr:meta])+
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])+
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |__rng, __case| {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&$strat, __rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// `prop_assert!` — fails the current case (panics at the harness with
/// the case number; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!` — equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            ));
        }
    }};
}

/// One-of strategy choice (uniform over the alternatives).
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::OneOf(vec![$($strat),+])
    };
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use super::{any, prop, Any, Arbitrary, Just, OneOf, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps_compose(
            x in (0u64..100).prop_map(|v| v * 2),
            y in 1i64..=5,
            f in 0.25f64..0.75,
            v in prop::collection::vec(0u32..10, 1..8),
        ) {
            prop_assert!(x % 2 == 0);
            prop_assert!((1..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_tuples(
            pair in (0u8..4, any::<bool>()),
            pick in prop_oneof![Just(1u8), Just(7u8)],
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pick == 1 || pick == 7, true);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut seen = Vec::new();
        super::run_cases(ProptestConfig::with_cases(5), "det", |rng, _| {
            seen.push(rand::RngCore::next_u64(rng));
            Ok(())
        });
        let mut again = Vec::new();
        super::run_cases(ProptestConfig::with_cases(5), "det", |rng, _| {
            again.push(rand::RngCore::next_u64(rng));
            Ok(())
        });
        assert_eq!(seen, again);
    }
}
