//! U-BTB: the unconditional-branch BTB with spatial footprints — the
//! heart of Shotgun (§4.2.1).
//!
//! Entries track calls, jumps and traps (returns live in the RIB) and
//! carry *two* footprints: the Call Footprint for the branch's target
//! region, and the Return Footprint for the fall-through region resumed
//! when the callee returns (associated here because a return's region
//! is call-site-dependent, §4.2.1). Entry storage is 106 bits (§5.2):
//! 38-bit tag + 46-bit target + 5-bit size + 1-bit type + 2 x 8-bit
//! footprints.

use fe_model::{Addr, BasicBlock, BranchKind};
use fe_uarch::SetAssocMap;

use crate::footprint::SpatialFootprint;

/// Payload of one U-BTB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UBtbEntry {
    /// Basic-block size in instructions (5-bit field).
    pub instr_count: u8,
    /// Call / Jump / Trap (1-bit type field in hardware: call-like or
    /// not; we keep the full kind for simulation fidelity).
    pub kind: BranchKind,
    /// Taken target.
    pub target: Addr,
    /// Spatial footprint of the target region.
    pub call_footprint: SpatialFootprint,
    /// Spatial footprint of the return (fall-through) region; only
    /// meaningful for calls and traps.
    pub ret_footprint: SpatialFootprint,
    /// Farthest forward line of the target region (Entire Region
    /// design point, §6.3).
    pub call_extent: u8,
    /// Farthest forward line of the return region.
    pub ret_extent: u8,
}

/// The unconditional-branch BTB.
///
/// ```
/// use fe_model::{Addr, BasicBlock, BranchKind};
/// use shotgun::ubtb::UBtb;
///
/// let mut u = UBtb::new(1536, 4);
/// let call = BasicBlock::new(Addr::new(0x1000), 4, BranchKind::Call, Addr::new(0x8000));
/// u.install_block(&call);
/// let (block, entry) = u.lookup(Addr::new(0x1000)).unwrap();
/// assert_eq!(block, call);
/// assert!(entry.call_footprint.is_empty(), "footprint arrives via recording");
/// ```
#[derive(Clone, Debug)]
pub struct UBtb {
    map: SetAssocMap<UBtbEntry>,
}

impl UBtb {
    /// Creates a U-BTB with `entries` entries of `ways` associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        UBtb {
            map: SetAssocMap::new(entries, ways),
        }
    }

    /// Looks up the unconditional block starting at `pc`, promoting it.
    pub fn lookup(&mut self, pc: Addr) -> Option<(BasicBlock, UBtbEntry)> {
        self.map.get(key(pc)).map(|e| {
            (
                BasicBlock {
                    start: pc,
                    instr_count: e.instr_count,
                    kind: e.kind,
                    target: e.target,
                },
                *e,
            )
        })
    }

    /// Non-promoting footprint read by call-block address — the RIB-hit
    /// path that retrieves a Return Footprint via the RAS (§4.2.3).
    pub fn peek(&self, call_block: Addr) -> Option<&UBtbEntry> {
        self.map.peek(key(call_block))
    }

    /// Installs a block discovered by the reactive fill path, with
    /// empty footprints (they arrive later via recording).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the block is conditional or a return — those
    /// belong to the C-BTB / RIB.
    pub fn install_block(&mut self, block: &BasicBlock) {
        debug_assert!(
            block.kind.is_unconditional() && !block.kind.is_return(),
            "U-BTB only holds calls/jumps/traps, got {:?}",
            block.kind,
        );
        if self.map.get(key(block.start)).is_none() {
            self.map.insert(key(block.start), fresh_entry(block));
        }
    }

    /// Stores a recorded target-region footprint into `block`'s entry
    /// (allocating it if evicted) — §4.2.2's "store the footprint in
    /// the U-BTB entry corresponding to the unconditional branch that
    /// triggered the recording". The footprint replaces the previous
    /// one: the paper records the region's *last* execution.
    pub fn record_call_region(
        &mut self,
        block: &BasicBlock,
        footprint: SpatialFootprint,
        extent: u8,
    ) {
        let k = key(block.start);
        match self.map.get_mut(k) {
            Some(e) => {
                e.call_footprint = footprint;
                e.call_extent = extent;
            }
            None => {
                let mut e = fresh_entry(block);
                e.call_footprint = footprint;
                e.call_extent = extent;
                self.map.insert(k, e);
            }
        }
    }

    /// Stores a recorded return-region footprint into the matching
    /// *call's* entry.
    pub fn record_return_region(
        &mut self,
        call_block: &BasicBlock,
        footprint: SpatialFootprint,
        extent: u8,
    ) {
        let k = key(call_block.start);
        match self.map.get_mut(k) {
            Some(e) => {
                e.ret_footprint = footprint;
                e.ret_extent = extent;
            }
            None => {
                let mut e = fresh_entry(call_block);
                e.ret_footprint = footprint;
                e.ret_extent = extent;
                self.map.insert(k, e);
            }
        }
    }

    /// Non-promoting residency probe.
    pub fn contains(&self, pc: Addr) -> bool {
        self.map.peek(key(pc)).is_some()
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.map.capacity()
    }
}

fn fresh_entry(block: &BasicBlock) -> UBtbEntry {
    UBtbEntry {
        instr_count: block.instr_count,
        kind: block.kind,
        target: block.target,
        call_footprint: SpatialFootprint::EMPTY,
        ret_footprint: SpatialFootprint::EMPTY,
        call_extent: 0,
        ret_extent: 0,
    }
}

#[inline]
fn key(pc: Addr) -> u64 {
    pc.get() >> 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::FootprintLayout;

    fn call(start: u64, target: u64) -> BasicBlock {
        BasicBlock::new(Addr::new(start), 4, BranchKind::Call, Addr::new(target))
    }

    #[test]
    fn install_then_lookup() {
        let mut u = UBtb::new(64, 4);
        let b = call(0x1000, 0x8000);
        u.install_block(&b);
        let (block, entry) = u.lookup(Addr::new(0x1000)).unwrap();
        assert_eq!(block, b);
        assert_eq!(entry.kind, BranchKind::Call);
        assert!(u.lookup(Addr::new(0x2000)).is_none());
    }

    #[test]
    fn recording_updates_call_footprint() {
        let mut u = UBtb::new(64, 4);
        let b = call(0x1000, 0x8000);
        let mut fp = SpatialFootprint::EMPTY;
        fp.record(2, FootprintLayout::BITS8);
        u.record_call_region(&b, fp, 5);
        let (_, entry) = u.lookup(b.start).unwrap();
        assert_eq!(entry.call_footprint, fp);
        assert_eq!(entry.call_extent, 5);
        assert!(entry.ret_footprint.is_empty(), "return footprint untouched");
    }

    #[test]
    fn recording_allocates_when_evicted() {
        let mut u = UBtb::new(64, 4);
        let b = call(0x1000, 0x8000);
        let fp = SpatialFootprint::from_raw(0b11);
        u.record_call_region(&b, fp, 2);
        assert_eq!(u.len(), 1, "recording allocates the entry");
    }

    #[test]
    fn return_footprint_is_separate() {
        let mut u = UBtb::new(64, 4);
        let b = call(0x1000, 0x8000);
        let call_fp = SpatialFootprint::from_raw(0b01);
        let ret_fp = SpatialFootprint::from_raw(0b10);
        u.record_call_region(&b, call_fp, 1);
        u.record_return_region(&b, ret_fp, 3);
        let entry = u.peek(b.start).unwrap();
        assert_eq!(entry.call_footprint, call_fp);
        assert_eq!(entry.ret_footprint, ret_fp);
        assert_eq!(entry.ret_extent, 3);
    }

    #[test]
    fn last_execution_replaces_footprint() {
        let mut u = UBtb::new(64, 4);
        let b = call(0x1000, 0x8000);
        u.record_call_region(&b, SpatialFootprint::from_raw(0b111), 3);
        u.record_call_region(&b, SpatialFootprint::from_raw(0b001), 1);
        let entry = u.peek(b.start).unwrap();
        assert_eq!(entry.call_footprint.raw(), 0b001, "replace, not OR");
        assert_eq!(entry.call_extent, 1);
    }

    #[test]
    fn install_does_not_clobber_footprints() {
        let mut u = UBtb::new(64, 4);
        let b = call(0x1000, 0x8000);
        u.record_call_region(&b, SpatialFootprint::from_raw(0b101), 3);
        u.install_block(&b); // reactive fill rediscovers the block
        let entry = u.peek(b.start).unwrap();
        assert_eq!(
            entry.call_footprint.raw(),
            0b101,
            "reactive fill must not erase footprints"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "U-BTB only holds")]
    fn rejects_conditional_blocks() {
        let mut u = UBtb::new(64, 4);
        let bad = BasicBlock::new(
            Addr::new(0x1000),
            4,
            BranchKind::Conditional,
            Addr::new(0x2000),
        );
        u.install_block(&bad);
    }
}
