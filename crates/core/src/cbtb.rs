//! C-BTB: the small conditional-branch BTB (§4.2.1).
//!
//! Tracks only the local control flow of currently-active code regions;
//! kept effective at just 128 entries because Shotgun prefills it by
//! predecoding the lines its spatial footprints prefetch (§4.2.3).
//! Entries are 70 bits (§5.2): 41-bit tag + 22-bit PC-relative target
//! offset + 5-bit size + 2-bit direction (direction delegated to TAGE
//! in this model). No type field — everything here is conditional.

use fe_model::{Addr, BasicBlock, BranchKind};
use fe_uarch::SetAssocMap;

#[derive(Clone, Copy, Debug)]
struct CBtbPayload {
    instr_count: u8,
    /// PC-relative offset (22-bit in hardware); stored resolved.
    target: Addr,
}

/// The conditional-branch BTB.
///
/// ```
/// use fe_model::{Addr, BasicBlock, BranchKind};
/// use shotgun::cbtb::CBtb;
///
/// let mut c = CBtb::new(128, 4);
/// let bb = BasicBlock::new(Addr::new(0x1000), 6, BranchKind::Conditional, Addr::new(0x1100));
/// c.install(&bb);
/// assert_eq!(c.lookup(Addr::new(0x1000)), Some(bb));
/// ```
#[derive(Clone, Debug)]
pub struct CBtb {
    map: SetAssocMap<CBtbPayload>,
}

impl CBtb {
    /// Creates a C-BTB with `entries` entries of `ways` associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        CBtb {
            map: SetAssocMap::new(entries, ways),
        }
    }

    /// Looks up the conditional block starting at `pc`.
    pub fn lookup(&mut self, pc: Addr) -> Option<BasicBlock> {
        self.map.get(pc.get() >> 2).map(|p| BasicBlock {
            start: pc,
            instr_count: p.instr_count,
            kind: BranchKind::Conditional,
            target: p.target,
        })
    }

    /// Installs a predecoded conditional block (§4.2.3 step 5).
    ///
    /// # Panics
    ///
    /// Panics (debug) on non-conditional blocks.
    pub fn install(&mut self, block: &BasicBlock) {
        debug_assert_eq!(
            block.kind,
            BranchKind::Conditional,
            "C-BTB holds conditionals only"
        );
        self.map.insert(
            block.start.get() >> 2,
            CBtbPayload {
                instr_count: block.instr_count,
                target: block.target,
            },
        );
    }

    /// Non-promoting residency probe.
    pub fn contains(&self, pc: Addr) -> bool {
        self.map.peek(pc.get() >> 2).is_some()
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.map.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(start: u64, target: u64) -> BasicBlock {
        BasicBlock::new(
            Addr::new(start),
            5,
            BranchKind::Conditional,
            Addr::new(target),
        )
    }

    #[test]
    fn install_lookup_roundtrip() {
        let mut c = CBtb::new(128, 4);
        let b = cond(0x1000, 0x1080);
        c.install(&b);
        assert_eq!(c.lookup(b.start), Some(b));
        assert_eq!(c.lookup(Addr::new(0x1004)), None);
    }

    #[test]
    fn small_capacity_thrashes_without_prefill() {
        // The design premise: 128 entries cannot hold a large working
        // set on their own.
        let mut c = CBtb::new(128, 4);
        // Stride co-prime with the set count so keys spread.
        for i in 0..512u64 {
            c.install(&cond(0x1000 + i * 68, 0x1000));
        }
        assert_eq!(c.len(), 128, "capacity bounded");
        assert!(
            c.lookup(Addr::new(0x1000)).is_none(),
            "early entries evicted"
        );
    }

    #[test]
    fn reinstall_updates() {
        let mut c = CBtb::new(16, 4);
        c.install(&cond(0x2000, 0x2040));
        let updated = cond(0x2000, 0x2100);
        c.install(&updated);
        assert_eq!(c.lookup(Addr::new(0x2000)), Some(updated));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "conditionals only")]
    fn rejects_unconditional() {
        let mut c = CBtb::new(16, 4);
        let call = BasicBlock::new(Addr::new(0x1000), 4, BranchKind::Call, Addr::new(0x8000));
        c.install(&call);
    }
}
