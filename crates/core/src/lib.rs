#![forbid(unsafe_code)]
//! # shotgun — the ASPLOS'18 BTB-directed front-end prefetcher
//!
//! Reproduction of the primary contribution of *"Blasting Through The
//! Front-End Bottleneck With Shotgun"* (Kumar, Grot & Nagarajan,
//! ASPLOS 2018): a unified L1-I and BTB prefetcher powered by a BTB
//! organization that maintains a logical map of the application's
//! instruction footprint.
//!
//! The key insight (§3): an instruction footprint can be summarized as
//! the *unconditional branch working set* (global control flow —
//! calls, jumps, returns, traps) plus a compact *spatial footprint* of
//! the code region around each unconditional branch's target. Shotgun
//! therefore splits the conventional BTB's storage budget into:
//!
//! * [`ubtb::UBtb`] — bulk of the budget: unconditional branches with
//!   two 8-bit spatial footprints each ([`footprint::SpatialFootprint`]);
//! * [`cbtb::CBtb`] — a tiny conditional BTB kept hot by predecoding
//!   prefetched lines;
//! * [`rib::Rib`] — returns, which need neither targets nor footprints.
//!
//! [`prefetcher::ShotgunPrefetcher`] composes these into a
//! `ControlFlowDelivery` scheme runnable by the `fe-sim` timing
//! simulator; [`region::RegionPolicy`] exposes the §6.3 design points
//! (no-bit-vector / 8-bit / 32-bit / entire-region / 5-blocks), and
//! [`budget::ShotgunConfig`] derives storage-equivalent configurations
//! for the §6.5 BTB budget sweep.
//!
//! ```
//! use shotgun::{ShotgunConfig, ShotgunPrefetcher};
//!
//! let shotgun = ShotgunPrefetcher::new(ShotgunConfig::default(), 32);
//! assert!((shotgun.config().storage_kib() - 23.78).abs() < 0.02); // §5.2
//! ```

pub mod budget;
pub mod cbtb;
pub mod footprint;
pub mod prefetcher;
pub mod recorder;
pub mod region;
pub mod rib;
pub mod ubtb;

pub use budget::ShotgunConfig;
pub use footprint::{FootprintLayout, SpatialFootprint};
pub use prefetcher::{ShotgunCounters, ShotgunPrefetcher};
pub use recorder::{FootprintRecorder, RegionOwner, RegionRecord};
pub use region::RegionPolicy;
