//! The Shotgun front end: a unified L1-I + BTB prefetcher driven by the
//! split U-BTB / C-BTB / RIB organization (§4).
//!
//! Per-prediction flow (§4.2.3):
//!
//! 1. All three BTBs are probed in parallel for the block at the
//!    speculative PC (they are disjoint by branch kind, so at most one
//!    hits).
//! 2. On a **U-BTB hit**, the spatial footprint of the target region is
//!    read and bulk prefetch probes are issued for its lines — the
//!    mechanism that lets Shotgun race through code regions without
//!    waiting on per-branch BTB discoveries.
//! 3. On a **RIB hit**, the extended RAS supplies both the return
//!    target and the basic-block address of the matching call; the
//!    latter indexes the U-BTB to retrieve the *Return Footprint*.
//! 4. On a **triple miss**, Boomerang's reactive mechanism kicks in:
//!    prediction stalls, the line containing the missed block is
//!    fetched and predecoded, the missing branch fills its home
//!    structure and the other predecoded branches park in the BTB
//!    prefetch buffer.
//! 5. When prefetched lines arrive at the L1-I, a predecoder extracts
//!    their conditional branches into the C-BTB (step 5 of Fig. 5b) —
//!    which is why 128 entries suffice (§6.4).

use fe_cfg::Program;
use fe_model::{Addr, BasicBlock, BranchKind, LineAddr, RetiredBlock};
use fe_uarch::predecode;
use fe_uarch::scheme::{follow_block, BpuOutcome, ControlFlowDelivery, FrontEndCtx};
use fe_uarch::SetAssocMap;

use crate::budget::ShotgunConfig;
use crate::cbtb::CBtb;
use crate::footprint::FootprintLayout;
use crate::recorder::{FootprintRecorder, RegionOwner};
use crate::rib::Rib;
use crate::ubtb::UBtb;

/// An in-flight reactive BTB fill (§4.2.3's Boomerang fallback).
#[derive(Clone, Copy, Debug)]
struct Resolving {
    pc: Addr,
    ready: u64,
}

/// Per-structure hit counters (diagnostics beyond the paper's figures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShotgunCounters {
    /// U-BTB hits.
    pub ubtb_hits: u64,
    /// C-BTB hits.
    pub cbtb_hits: u64,
    /// RIB hits.
    pub rib_hits: u64,
    /// Hits in the BTB prefetch buffer (entry promoted to its home).
    pub buffer_hits: u64,
    /// Reactive resolutions started (triple misses).
    pub reactive_fills: u64,
    /// Region prefetch bursts issued on U-BTB/RIB hits.
    pub region_prefetches: u64,
}

/// The Shotgun control-flow-delivery engine.
#[derive(Clone, Debug)]
pub struct ShotgunPrefetcher {
    cfg: ShotgunConfig,
    ubtb: UBtb,
    cbtb: CBtb,
    rib: Rib,
    /// Predecoded branches awaiting first use (32 entries, §5.2).
    prefetch_buffer: SetAssocMap<BasicBlock>,
    recorder: FootprintRecorder,
    resolving: Option<Resolving>,
    lookups: u64,
    misses: u64,
    retire_misses: u64,
    counters: ShotgunCounters,
}

impl ShotgunPrefetcher {
    /// Builds a Shotgun instance. `ras_entries` sizes the recorder's
    /// retire-side call-stack mirror (matching the machine's RAS).
    pub fn new(cfg: ShotgunConfig, ras_entries: usize) -> Self {
        let layout = cfg.policy.layout().unwrap_or(FootprintLayout::BITS8);
        ShotgunPrefetcher {
            ubtb: UBtb::new(cfg.sizing.ubtb as usize, cfg.ways as usize),
            cbtb: CBtb::new(cfg.sizing.cbtb as usize, cfg.ways as usize),
            rib: Rib::new(cfg.sizing.rib as usize, cfg.ways as usize),
            prefetch_buffer: SetAssocMap::new(
                cfg.prefetch_buffer as usize,
                cfg.prefetch_buffer as usize,
            ),
            recorder: FootprintRecorder::new(layout, ras_entries),
            resolving: None,
            lookups: 0,
            misses: 0,
            retire_misses: 0,
            counters: ShotgunCounters::default(),
            cfg,
        }
    }

    /// `true` when `pc`'s block is resident in any of the three
    /// structures (non-promoting).
    pub fn contains(&self, pc: Addr) -> bool {
        self.ubtb.contains(pc) || self.cbtb.contains(pc) || self.rib.contains(pc)
    }

    /// Configuration in use.
    pub fn config(&self) -> &ShotgunConfig {
        &self.cfg
    }

    /// Diagnostic counters.
    pub fn counters(&self) -> ShotgunCounters {
        self.counters
    }

    /// Structure occupancy `(u, c, rib)` for tests.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.ubtb.len(), self.cbtb.len(), self.rib.len())
    }

    /// Issues the bulk region prefetch for a region entered at `entry`.
    ///
    /// Lines the probes find already resident are run through the
    /// predecoder immediately: the footprint-driven C-BTB prefill of
    /// §4.2.3 must work whether the region's lines arrive from the LLC
    /// or are still warm in the L1-I, or the 128-entry C-BTB could not
    /// sustain its hit rate across region revisits (Fig. 12).
    fn issue_region_prefetch(
        &mut self,
        ctx: &mut FrontEndCtx,
        entry: LineAddr,
        footprint: crate::footprint::SpatialFootprint,
        extent: u8,
    ) {
        self.counters.region_prefetches += 1;
        // `RegionPolicy` is `Copy`: lift it out of `self` so the visit
        // closure can borrow the C-BTB mutably. The callback shape
        // avoids allocating a line list per burst (this runs on every
        // U-BTB/RIB hit).
        let policy = self.cfg.policy;
        let cbtb = &mut self.cbtb;
        policy.for_each_prefetch_line(entry, footprint, extent, |line| {
            let issued = ctx.prefetch_line(line);
            if !issued && ctx.l1i.probe(line) {
                for block in predecode::branches_in_line(ctx.program, line) {
                    if block.kind == BranchKind::Conditional {
                        cbtb.install(&block);
                    }
                }
            }
        });
    }

    /// Inserts a discovered block into its home structure.
    fn install_home(&mut self, block: &BasicBlock) {
        match block.kind {
            BranchKind::Conditional => self.cbtb.install(block),
            BranchKind::Return | BranchKind::TrapReturn => self.rib.install(block),
            _ => self.ubtb.install_block(block),
        }
    }

    /// Completes a reactive fill: predecode the fetched line, install
    /// the missing branch, park the line's other branches in the BTB
    /// prefetch buffer (§4.2.3).
    fn complete_resolution(&mut self, pc: Addr, program: &Program) {
        let Some((block, _extra_lines)) = predecode::resolve_block(program, pc) else {
            return;
        };
        self.install_home(&block);
        for other in predecode::branches_in_line(program, pc.line()) {
            if other.start != block.start {
                self.prefetch_buffer.insert(other.start.get() >> 2, other);
            }
        }
    }

    /// The three-way parallel lookup plus prefetch-buffer fallback.
    fn lookup_block(&mut self, pc: Addr) -> Option<LookupHit> {
        if let Some((block, entry)) = self.ubtb.lookup(pc) {
            self.counters.ubtb_hits += 1;
            return Some(LookupHit {
                block,
                call_footprint: Some((entry.call_footprint, entry.call_extent)),
            });
        }
        if let Some(block) = self.cbtb.lookup(pc) {
            self.counters.cbtb_hits += 1;
            return Some(LookupHit {
                block,
                call_footprint: None,
            });
        }
        if let Some(block) = self.rib.lookup(pc) {
            self.counters.rib_hits += 1;
            return Some(LookupHit {
                block,
                call_footprint: None,
            });
        }
        if let Some(block) = self.prefetch_buffer.remove(pc.get() >> 2) {
            self.counters.buffer_hits += 1;
            self.install_home(&block);
            // Re-read through the home structure (mirrors hardware's
            // move-then-hit behaviour); footprints are fresh/empty.
            return self.lookup_block(pc);
        }
        None
    }
}

struct LookupHit {
    block: BasicBlock,
    /// Target-region footprint when the hit came from the U-BTB.
    call_footprint: Option<(crate::footprint::SpatialFootprint, u8)>,
}

impl ControlFlowDelivery for ShotgunPrefetcher {
    fn name(&self) -> &'static str {
        "shotgun"
    }

    fn predict(&mut self, pc: Addr, ctx: &mut FrontEndCtx) -> BpuOutcome {
        // A reactive fill in flight stalls prediction (§2.2's Boomerang
        // behaviour, retained as Shotgun's fallback).
        if let Some(r) = self.resolving {
            if ctx.now < r.ready {
                return BpuOutcome::Stall;
            }
            self.resolving = None;
            self.complete_resolution(r.pc, ctx.program);
        }

        self.lookups += 1;
        let Some(hit) = self.lookup_block(pc) else {
            // Triple miss: start the reactive fill (Boomerang fallback).
            let Some((block, extra)) = predecode::resolve_block(ctx.program, pc) else {
                // No branch discoverable at this address (wrong-path
                // garbage): proceed sequentially instead of stalling.
                let end = Addr::new((pc.line().get() + 1) * fe_model::LINE_BYTES);
                return BpuOutcome::StraightLine { pc, end };
            };
            self.misses += 1;
            self.counters.reactive_fills += 1;
            let mut ready = ctx.fetch_for_fill(pc.line());
            // If the block's branch lies beyond this line, the
            // predecoder needs the follow-on lines too. The static map
            // tells us how many; hardware discovers it by scanning.
            for i in 1..=extra as u64 {
                ready = ready.max(ctx.fetch_for_fill(block.start.line().offset(i as i64)));
            }
            self.resolving = Some(Resolving {
                pc,
                ready: ready + predecode::PREDECODE_LATENCY as u64,
            });
            return BpuOutcome::Stall;
        };

        let block = hit.block;
        let predicted = match block.kind {
            // RIB hit: the extended RAS supplies both the return target
            // and the call block whose U-BTB entry holds the Return
            // Footprint (§4.2.3).
            BranchKind::Return | BranchKind::TrapReturn => {
                let ras_entry = ctx.spec_ras.pop();
                let next_pc = ras_entry.map_or(block.fall_through(), |e| e.ret);
                if let Some(e) = ras_entry {
                    if let Some((fp, extent)) = self
                        .ubtb
                        .peek(e.call_block)
                        .map(|u| (u.ret_footprint, u.ret_extent))
                    {
                        self.issue_region_prefetch(ctx, next_pc.line(), fp, extent);
                    }
                }
                fe_uarch::PredictedBlock {
                    block,
                    taken: true,
                    next_pc,
                }
            }
            // U-BTB hit: bulk-prefetch the target region's footprint.
            BranchKind::Call | BranchKind::Trap | BranchKind::Jump => {
                let p = follow_block(&block, ctx);
                if let Some((fp, extent)) = hit.call_footprint {
                    self.issue_region_prefetch(ctx, block.target.line(), fp, extent);
                }
                p
            }
            BranchKind::Conditional => follow_block(&block, ctx),
        };

        BpuOutcome::Predicted(predicted)
    }

    fn on_fill(&mut self, line: LineAddr, _was_prefetch: bool, ctx: &mut FrontEndCtx) {
        // Predecode arriving lines into the C-BTB (Fig. 5b steps 4–5).
        for block in predecode::branches_in_line(ctx.program, line) {
            if block.kind == BranchKind::Conditional {
                self.cbtb.install(&block);
            }
        }
    }

    fn on_retire(&mut self, rb: &RetiredBlock, _ctx: &mut FrontEndCtx) {
        if !self.contains(rb.block.start) {
            self.retire_misses += 1;
        }
        if !self.cfg.policy.records() {
            // Even metadata-free policies keep the U-BTB warm from the
            // retire stream (the unconditional working set is the map).
            if rb.block.kind.is_unconditional() {
                self.install_home(&rb.block);
            }
            return;
        }
        if let Some(record) = self.recorder.observe(rb) {
            match record.owner {
                RegionOwner::CallLike { block } => {
                    self.ubtb
                        .record_call_region(&block, record.footprint, record.extent)
                }
                RegionOwner::ReturnLike { call_block } => {
                    self.ubtb
                        .record_return_region(&call_block, record.footprint, record.extent)
                }
            }
        }
        if rb.block.kind.is_return() {
            self.rib.install(&rb.block);
        }
    }

    fn on_redirect(&mut self, _pc: Addr, _ctx: &mut FrontEndCtx) {
        self.resolving = None;
    }

    fn warm_block(&mut self, rb: &RetiredBlock, ctx: &mut FrontEndCtx) {
        // Retire-side training warms the U-BTB (footprint records) and
        // the RIB exactly as a full-detail run would.
        self.on_retire(rb, ctx);
        // The C-BTB is normally predecode-fed from arriving prefetched
        // lines (§4.2.3 step 5); during functional warming those
        // prefetches never happen, so warm it from the retired
        // conditionals directly — the same blocks the predecoder would
        // have extracted from the region's lines.
        if rb.block.kind == BranchKind::Conditional {
            self.cbtb.install(&rb.block);
        }
    }

    fn btb_misses(&self) -> u64 {
        self.retire_misses
    }

    fn btb_lookups(&self) -> u64 {
        self.lookups
    }

    fn debug_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ubtb_hits", self.counters.ubtb_hits),
            ("cbtb_hits", self.counters.cbtb_hits),
            ("rib_hits", self.counters.rib_hits),
            ("buffer_hits", self.counters.buffer_hits),
            ("reactive_fills", self.counters.reactive_fills),
            ("region_prefetches", self.counters.region_prefetches),
        ]
    }
}
