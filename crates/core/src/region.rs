//! Region prefetch policies: the §6.3 design-space of *what to fetch*
//! when entering a code region.
//!
//! The paper compares five mechanisms (Figs. 8–11):
//!
//! | Policy | Fetches | Trade-off |
//! |---|---|---|
//! | No bit vector | target line only | footprint storage converts to extra U-BTB entries, but no bulk prefetch |
//! | 8-bit vector | target + recorded lines (6 after / 2 before) | the production design |
//! | 32-bit vector | target + recorded lines (24 / 8) | upper-bounds wider windows |
//! | Entire Region | every line from entry to recorded exit | over-fetches unaccessed lines |
//! | 5-Blocks | target + next 4 lines, unconditionally | metadata-free but inaccurate |

use fe_model::LineAddr;

use crate::footprint::{FootprintLayout, SpatialFootprint};

/// Which spatial region prefetching mechanism Shotgun uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RegionPolicy {
    /// No region prefetching: target line only.
    NoBitVector,
    /// The production 8-bit footprint (§5.2).
    #[default]
    Bit8,
    /// The 32-bit sensitivity design point.
    Bit32,
    /// Prefetch every line between region entry and recorded exit.
    EntireRegion,
    /// Always prefetch five consecutive lines from the target.
    FiveBlocks,
}

impl RegionPolicy {
    /// All policies, in the paper's Fig. 8/9 presentation order.
    pub const ALL: [RegionPolicy; 5] = [
        RegionPolicy::NoBitVector,
        RegionPolicy::Bit8,
        RegionPolicy::Bit32,
        RegionPolicy::EntireRegion,
        RegionPolicy::FiveBlocks,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            RegionPolicy::NoBitVector => "No bit vector",
            RegionPolicy::Bit8 => "8-bit vector",
            RegionPolicy::Bit32 => "32-bit vector",
            RegionPolicy::EntireRegion => "Entire Region",
            RegionPolicy::FiveBlocks => "5-Blocks",
        }
    }

    /// Footprint layout this policy records with; `None` when no
    /// bit-vector metadata is kept.
    pub fn layout(&self) -> Option<FootprintLayout> {
        match self {
            RegionPolicy::Bit8 => Some(FootprintLayout::BITS8),
            RegionPolicy::Bit32 => Some(FootprintLayout::BITS32),
            // Entire Region still needs the recorder for region extents;
            // the bit vector itself is unused.
            RegionPolicy::EntireRegion => Some(FootprintLayout::BITS8),
            RegionPolicy::NoBitVector | RegionPolicy::FiveBlocks => None,
        }
    }

    /// Whether the recorder must run at retire (any policy that stores
    /// per-region metadata).
    pub fn records(&self) -> bool {
        self.layout().is_some()
    }

    /// Visits the lines to prefetch on entering a region at `entry`,
    /// given the owning U-BTB entry's recorded `footprint` and
    /// `extent`. The entry line itself is always visited first.
    ///
    /// Callback-shaped (rather than returning a `Vec`) because region
    /// bursts fire on every U-BTB/RIB hit — the prefetcher's hottest
    /// path must not allocate.
    pub fn for_each_prefetch_line(
        &self,
        entry: LineAddr,
        footprint: SpatialFootprint,
        extent: u8,
        mut visit: impl FnMut(LineAddr),
    ) {
        visit(entry);
        match self {
            RegionPolicy::NoBitVector => {}
            RegionPolicy::Bit8 => {
                footprint
                    .lines(entry, FootprintLayout::BITS8)
                    .for_each(visit);
            }
            RegionPolicy::Bit32 => {
                footprint
                    .lines(entry, FootprintLayout::BITS32)
                    .for_each(visit);
            }
            RegionPolicy::EntireRegion => {
                (1..=extent as i64).for_each(|d| visit(entry.offset(d)));
            }
            RegionPolicy::FiveBlocks => {
                (1..5).for_each(|d| visit(entry.offset(d)));
            }
        }
    }

    /// The lines to prefetch on entering a region at `entry` — the
    /// collected form of [`Self::for_each_prefetch_line`], for tests
    /// and diagnostics.
    pub fn prefetch_lines(
        &self,
        entry: LineAddr,
        footprint: SpatialFootprint,
        extent: u8,
    ) -> Vec<LineAddr> {
        let mut lines = Vec::new();
        self.for_each_prefetch_line(entry, footprint, extent, |line| lines.push(line));
        lines
    }
}

impl std::fmt::Display for RegionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(deltas: &[i64], layout: FootprintLayout) -> SpatialFootprint {
        let mut f = SpatialFootprint::EMPTY;
        for &d in deltas {
            assert!(f.record(d, layout));
        }
        f
    }

    fn as_indices(lines: Vec<LineAddr>) -> Vec<u64> {
        lines.into_iter().map(|l| l.get()).collect()
    }

    #[test]
    fn no_bit_vector_fetches_entry_only() {
        let entry = LineAddr::from_index(100);
        let f = fp(&[1, 2], FootprintLayout::BITS8);
        let lines = RegionPolicy::NoBitVector.prefetch_lines(entry, f, 9);
        assert_eq!(as_indices(lines), vec![100]);
    }

    #[test]
    fn bit8_fetches_recorded_lines() {
        let entry = LineAddr::from_index(100);
        let f = fp(&[2, 5, -1], FootprintLayout::BITS8);
        let lines = RegionPolicy::Bit8.prefetch_lines(entry, f, 9);
        assert_eq!(as_indices(lines), vec![100, 102, 105, 99]);
    }

    #[test]
    fn bit32_reaches_farther() {
        let entry = LineAddr::from_index(100);
        let f = fp(&[20], FootprintLayout::BITS32);
        let lines = RegionPolicy::Bit32.prefetch_lines(entry, f, 25);
        assert_eq!(as_indices(lines), vec![100, 120]);
    }

    #[test]
    fn entire_region_fetches_contiguously() {
        let entry = LineAddr::from_index(100);
        let lines = RegionPolicy::EntireRegion.prefetch_lines(entry, SpatialFootprint::EMPTY, 3);
        assert_eq!(as_indices(lines), vec![100, 101, 102, 103]);
    }

    #[test]
    fn five_blocks_ignores_metadata() {
        let entry = LineAddr::from_index(100);
        let f = fp(&[6], FootprintLayout::BITS8);
        let lines = RegionPolicy::FiveBlocks.prefetch_lines(entry, f, 1);
        assert_eq!(as_indices(lines), vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn recording_requirements() {
        assert!(!RegionPolicy::NoBitVector.records());
        assert!(RegionPolicy::Bit8.records());
        assert!(RegionPolicy::Bit32.records());
        assert!(RegionPolicy::EntireRegion.records());
        assert!(!RegionPolicy::FiveBlocks.records());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(RegionPolicy::Bit8.label(), "8-bit vector");
        assert_eq!(RegionPolicy::EntireRegion.to_string(), "Entire Region");
    }
}
