//! RIB: the return instruction buffer (§4.2.1).
//!
//! Returns read their target from the RAS and their footprint from the
//! corresponding call's U-BTB entry, so storing them in the U-BTB would
//! waste the Target and two Footprint fields — more than half the
//! entry. The RIB stores just what a return needs: 45 bits (§5.2) of
//! tag + 5-bit size + 1-bit type (return vs. trap-return).

use fe_model::{Addr, BasicBlock, BranchKind};
use fe_uarch::SetAssocMap;

#[derive(Clone, Copy, Debug)]
struct RibPayload {
    instr_count: u8,
    /// `true` for trap returns (the 1-bit type field).
    trap: bool,
}

/// The return instruction buffer.
///
/// ```
/// use fe_model::{Addr, BasicBlock, BranchKind};
/// use shotgun::rib::Rib;
///
/// let mut rib = Rib::new(512, 4);
/// let ret = BasicBlock::new(Addr::new(0x8000), 2, BranchKind::Return, Addr::NULL);
/// rib.install(&ret);
/// assert_eq!(rib.lookup(Addr::new(0x8000)), Some(ret));
/// ```
#[derive(Clone, Debug)]
pub struct Rib {
    map: SetAssocMap<RibPayload>,
}

impl Rib {
    /// Creates a RIB with `entries` entries of `ways` associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        Rib {
            map: SetAssocMap::new(entries, ways),
        }
    }

    /// Looks up the return block starting at `pc`. The reconstructed
    /// block carries a null target — the RAS supplies it at prediction
    /// time.
    pub fn lookup(&mut self, pc: Addr) -> Option<BasicBlock> {
        self.map.get(pc.get() >> 2).map(|p| BasicBlock {
            start: pc,
            instr_count: p.instr_count,
            kind: if p.trap {
                BranchKind::TrapReturn
            } else {
                BranchKind::Return
            },
            target: Addr::NULL,
        })
    }

    /// Installs a return block.
    ///
    /// # Panics
    ///
    /// Panics (debug) on non-return blocks.
    pub fn install(&mut self, block: &BasicBlock) {
        debug_assert!(
            block.kind.is_return(),
            "RIB holds returns only, got {:?}",
            block.kind
        );
        self.map.insert(
            block.start.get() >> 2,
            RibPayload {
                instr_count: block.instr_count,
                trap: block.kind == BranchKind::TrapReturn,
            },
        );
    }

    /// Non-promoting residency probe.
    pub fn contains(&self, pc: Addr) -> bool {
        self.map.peek(pc.get() >> 2).is_some()
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.map.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn return_roundtrip() {
        let mut r = Rib::new(64, 4);
        let ret = BasicBlock::new(Addr::new(0x8000), 3, BranchKind::Return, Addr::NULL);
        r.install(&ret);
        assert_eq!(r.lookup(ret.start), Some(ret));
    }

    #[test]
    fn trap_return_kind_preserved() {
        let mut r = Rib::new(64, 4);
        let tret = BasicBlock::new(
            Addr::new(0x4000_0000),
            2,
            BranchKind::TrapReturn,
            Addr::NULL,
        );
        r.install(&tret);
        assert_eq!(r.lookup(tret.start).unwrap().kind, BranchKind::TrapReturn);
    }

    #[test]
    fn reconstructed_target_is_null() {
        let mut r = Rib::new(64, 4);
        let ret = BasicBlock::new(Addr::new(0x9000), 2, BranchKind::Return, Addr::NULL);
        r.install(&ret);
        assert!(r.lookup(ret.start).unwrap().target.is_null());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "returns only")]
    fn rejects_calls() {
        let mut r = Rib::new(64, 4);
        let call = BasicBlock::new(Addr::new(0x1000), 4, BranchKind::Call, Addr::new(0x8000));
        r.install(&call);
    }

    #[test]
    fn capacity_enforced() {
        let mut r = Rib::new(8, 4);
        // Stride co-prime with the set count so keys spread.
        for i in 0..32u64 {
            r.install(&BasicBlock::new(
                Addr::new(0x1000 + i * 36),
                2,
                BranchKind::Return,
                Addr::NULL,
            ));
        }
        assert_eq!(r.len(), 8);
    }
}
