//! Shotgun configuration under a conventional-BTB-equivalent storage
//! budget (§5.2, §6.5).

use fe_model::storage::{self, ShotgunSizing};

use crate::region::RegionPolicy;

/// Full configuration of a Shotgun instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShotgunConfig {
    /// Entry counts of the three structures.
    pub sizing: ShotgunSizing,
    /// Region prefetch mechanism (§6.3).
    pub policy: RegionPolicy,
    /// Associativity used for all three structures.
    pub ways: u32,
    /// BTB prefetch buffer entries (shared with Boomerang, §5.2).
    pub prefetch_buffer: u32,
}

impl Default for ShotgunConfig {
    /// The paper's production configuration: 1.5K U-BTB + 128 C-BTB +
    /// 512 RIB with 8-bit footprints — 23.77 KB, equivalent to
    /// Boomerang's 2K-entry conventional BTB.
    fn default() -> Self {
        ShotgunConfig {
            sizing: ShotgunSizing::PAPER,
            policy: RegionPolicy::Bit8,
            ways: 4,
            prefetch_buffer: 32,
        }
    }
}

impl ShotgunConfig {
    /// Configuration matched to the storage budget of a conventional
    /// BTB with `conventional_entries` entries (Fig. 13's sweep).
    pub fn for_budget(conventional_entries: u32) -> Self {
        ShotgunConfig {
            sizing: storage::sizing_for_budget(conventional_entries),
            ..Default::default()
        }
    }

    /// Applies a region policy, adjusting capacity where the paper
    /// does: the "No bit vector" design spends the freed footprint bits
    /// on additional U-BTB entries (§6.3).
    pub fn with_policy(mut self, policy: RegionPolicy) -> Self {
        if self.policy == RegionPolicy::NoBitVector && policy != RegionPolicy::NoBitVector {
            // Undo a previous conversion by rebuilding from the sizing.
            debug_assert!(false, "with_policy should be applied to a fresh config");
        }
        if policy == RegionPolicy::NoBitVector {
            self.sizing.ubtb = storage::no_bit_vector_entries(self.sizing.ubtb);
        }
        self.policy = policy;
        self
    }

    /// Replaces the C-BTB entry count (Fig. 12's sensitivity study).
    pub fn with_cbtb_entries(mut self, entries: u32) -> Self {
        self.sizing.cbtb = entries;
        self
    }

    /// Total storage in KiB with the standard footprint width (§5.2's
    /// 23.77 KB for the default).
    pub fn storage_kib(&self) -> f64 {
        self.sizing.total_kib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ShotgunConfig::default();
        assert_eq!(c.sizing, ShotgunSizing::PAPER);
        assert!((c.storage_kib() - 23.78).abs() < 0.02);
        assert_eq!(c.policy, RegionPolicy::Bit8);
    }

    #[test]
    fn budget_sweep_sizings() {
        assert_eq!(ShotgunConfig::for_budget(512).sizing.ubtb, 384);
        assert_eq!(ShotgunConfig::for_budget(8192).sizing.cbtb, 4096);
    }

    #[test]
    fn no_bit_vector_gains_entries() {
        let c = ShotgunConfig::default().with_policy(RegionPolicy::NoBitVector);
        assert_eq!(c.sizing.ubtb, 1809, "freed footprint bits buy entries");
        assert_eq!(c.sizing.cbtb, 128);
    }

    #[test]
    fn cbtb_sensitivity_override() {
        let c = ShotgunConfig::default().with_cbtb_entries(1024);
        assert_eq!(c.sizing.cbtb, 1024);
        assert_eq!(c.sizing.ubtb, ShotgunSizing::PAPER.ubtb);
    }
}
