//! Spatial footprints: compact bit-vector encodings of a code region's
//! cache-line working set (§4.2.2).
//!
//! A footprint records which lines around a region's entry point were
//! touched during the region's last execution — one bit per line,
//! positioned by signed distance from the entry (target) line. The
//! paper's production design uses 8 bits: 6 for lines *after* the
//! target and 2 for lines *before* it (loop headers reached by backward
//! branches shortly after entry). The §6.3 sensitivity study also
//! evaluates a 32-bit variant (24 after / 8 before), encoded by the
//! same machinery via [`FootprintLayout`].

use fe_model::LineAddr;

/// Geometry of a footprint bit-vector: how many line slots before and
/// after the region entry line it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FootprintLayout {
    /// Slots for lines at negative distances (-1 ..= -before).
    pub before: u8,
    /// Slots for lines at positive distances (+1 ..= +after).
    pub after: u8,
}

impl FootprintLayout {
    /// The paper's 8-bit production layout: 6 after + 2 before (§5.2).
    pub const BITS8: FootprintLayout = FootprintLayout {
        before: 2,
        after: 6,
    };
    /// The §6.3 sensitivity layout: 32 bits as 24 after + 8 before.
    pub const BITS32: FootprintLayout = FootprintLayout {
        before: 8,
        after: 24,
    };

    /// Total vector width in bits.
    pub const fn bits(&self) -> u32 {
        self.before as u32 + self.after as u32
    }

    /// Bit index encoding `delta` (signed line distance from the entry
    /// line), or `None` when the distance falls outside the window.
    /// Distance 0 (the entry line itself) is implicit — it is always
    /// prefetched and consumes no bit, matching Fig. 5b's example.
    pub fn bit_for(&self, delta: i64) -> Option<u32> {
        if delta >= 1 && delta <= self.after as i64 {
            Some(delta as u32 - 1)
        } else if delta <= -1 && delta >= -(self.before as i64) {
            Some(self.after as u32 + (-delta) as u32 - 1)
        } else {
            None
        }
    }

    /// Inverse of [`FootprintLayout::bit_for`].
    pub fn delta_for(&self, bit: u32) -> i64 {
        if bit < self.after as u32 {
            bit as i64 + 1
        } else {
            -((bit - self.after as u32) as i64 + 1)
        }
    }
}

/// A recorded spatial footprint (up to 32 bits of line presence).
///
/// ```
/// use fe_model::LineAddr;
/// use shotgun::footprint::{FootprintLayout, SpatialFootprint};
///
/// let layout = FootprintLayout::BITS8;
/// let mut fp = SpatialFootprint::EMPTY;
/// fp.record(2, layout);
/// fp.record(5, layout);
/// fp.record(9, layout); // outside the 6-after window: dropped
/// let entry = LineAddr::from_index(100);
/// let lines: Vec<u64> = fp.lines(entry, layout).map(|l| l.get()).collect();
/// assert_eq!(lines, vec![102, 105]);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpatialFootprint(u32);

impl SpatialFootprint {
    /// No lines recorded.
    pub const EMPTY: SpatialFootprint = SpatialFootprint(0);

    /// Constructs from raw bits (for tests and serialization).
    pub const fn from_raw(bits: u32) -> Self {
        SpatialFootprint(bits)
    }

    /// Raw bit-vector value.
    pub const fn raw(&self) -> u32 {
        self.0
    }

    /// Records an access at signed line distance `delta` from the
    /// region entry line. Returns `false` when the distance falls
    /// outside the layout's window (the access goes unrecorded — the
    /// precision/storage trade-off of §4.2.2).
    pub fn record(&mut self, delta: i64, layout: FootprintLayout) -> bool {
        match layout.bit_for(delta) {
            Some(bit) => {
                self.0 |= 1 << bit;
                true
            }
            None => false,
        }
    }

    /// `true` when the line at `delta` was recorded.
    pub fn contains(&self, delta: i64, layout: FootprintLayout) -> bool {
        layout
            .bit_for(delta)
            .is_some_and(|bit| self.0 & (1 << bit) != 0)
    }

    /// Number of recorded lines.
    pub const fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// `true` when no lines are recorded.
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// The recorded signed distances, nearest-forward first.
    pub fn deltas(&self, layout: FootprintLayout) -> impl Iterator<Item = i64> + '_ {
        (0..layout.bits())
            .filter(|b| self.0 & (1 << b) != 0)
            .map(move |b| layout.delta_for(b))
    }

    /// The absolute lines to prefetch around `entry` (§4.2.3 step 1 —
    /// the entry line itself is not included; callers prefetch it
    /// unconditionally).
    pub fn lines(
        &self,
        entry: LineAddr,
        layout: FootprintLayout,
    ) -> impl Iterator<Item = LineAddr> + '_ {
        self.deltas(layout).map(move |d| entry.offset(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_round_trips() {
        // Fig. 5b: footprint selecting target+2 and target+5.
        let layout = FootprintLayout::BITS8;
        let mut fp = SpatialFootprint::EMPTY;
        assert!(fp.record(2, layout));
        assert!(fp.record(5, layout));
        let entry = LineAddr::from_index(0x40);
        let lines: Vec<_> = fp.lines(entry, layout).map(|l| l.get()).collect();
        assert_eq!(lines, vec![0x42, 0x45]);
    }

    #[test]
    fn window_bounds_8bit() {
        let layout = FootprintLayout::BITS8;
        let mut fp = SpatialFootprint::EMPTY;
        assert!(fp.record(1, layout));
        assert!(fp.record(6, layout));
        assert!(!fp.record(7, layout), "beyond +6 must drop");
        assert!(fp.record(-1, layout));
        assert!(fp.record(-2, layout));
        assert!(!fp.record(-3, layout), "beyond -2 must drop");
        assert!(!fp.record(0, layout), "entry line is implicit");
        assert_eq!(fp.count(), 4);
    }

    #[test]
    fn window_bounds_32bit() {
        let layout = FootprintLayout::BITS32;
        let mut fp = SpatialFootprint::EMPTY;
        assert!(fp.record(24, layout));
        assert!(!fp.record(25, layout));
        assert!(fp.record(-8, layout));
        assert!(!fp.record(-9, layout));
        assert_eq!(layout.bits(), 32);
    }

    #[test]
    fn bit_positions_are_unique() {
        for layout in [FootprintLayout::BITS8, FootprintLayout::BITS32] {
            let mut seen = fe_uarch::FastSet::default();
            for delta in -(layout.before as i64)..=(layout.after as i64) {
                if delta == 0 {
                    continue;
                }
                let bit = layout.bit_for(delta).expect("delta inside window");
                assert!(bit < layout.bits());
                assert!(seen.insert(bit), "bit {bit} assigned twice");
                assert_eq!(layout.delta_for(bit), delta, "round trip");
            }
        }
    }

    #[test]
    fn contains_matches_record() {
        let layout = FootprintLayout::BITS8;
        let mut fp = SpatialFootprint::EMPTY;
        fp.record(3, layout);
        fp.record(-1, layout);
        assert!(fp.contains(3, layout));
        assert!(fp.contains(-1, layout));
        assert!(!fp.contains(2, layout));
        assert!(!fp.contains(0, layout));
    }

    #[test]
    fn negative_deltas_enumerate() {
        let layout = FootprintLayout::BITS8;
        let mut fp = SpatialFootprint::EMPTY;
        fp.record(-2, layout);
        fp.record(4, layout);
        let deltas: Vec<_> = fp.deltas(layout).collect();
        assert_eq!(deltas, vec![4, -2]);
        let lines: Vec<_> = fp
            .lines(LineAddr::from_index(10), layout)
            .map(|l| l.get())
            .collect();
        assert_eq!(lines, vec![14, 8]);
    }

    #[test]
    fn empty_footprint() {
        let fp = SpatialFootprint::EMPTY;
        assert!(fp.is_empty());
        assert_eq!(fp.deltas(FootprintLayout::BITS8).count(), 0);
    }
}
