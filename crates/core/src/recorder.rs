//! Retire-stream spatial-footprint recording (§4.2.2).
//!
//! Shotgun monitors retired instructions: an unconditional branch opens
//! a new code region (its target is the entry point), subsequent
//! accesses accumulate into a footprint, and the *next* unconditional
//! branch closes the region — at which point the footprint is stored
//! into the U-BTB entry of the branch that opened it.
//!
//! Return regions are the subtle case: a return's target region is the
//! fall-through of the *corresponding call*, so its footprint belongs in
//! that call's U-BTB entry (the Return Footprint field). The recorder
//! mirrors the retire-side call stack to make that association, keeping
//! the full call block descriptor so a recording can allocate the U-BTB
//! entry if it was evicted.

use std::collections::VecDeque;

use fe_model::{BasicBlock, LineAddr, RetiredBlock};

use crate::footprint::{FootprintLayout, SpatialFootprint};

/// Whose U-BTB entry a finished region's footprint belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionOwner {
    /// Region entered via call/jump/trap: footprint goes to the
    /// branch's own entry (Call Footprint field).
    CallLike {
        /// The unconditional branch block that opened the region.
        block: BasicBlock,
    },
    /// Region entered via return: footprint goes to the corresponding
    /// call's entry (Return Footprint field).
    ReturnLike {
        /// The call block whose fall-through region this is.
        call_block: BasicBlock,
    },
}

/// A completed region recording, ready to store into the U-BTB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionRecord {
    /// Destination entry.
    pub owner: RegionOwner,
    /// Lines accessed, relative to the entry line.
    pub footprint: SpatialFootprint,
    /// Farthest forward line touched (entry = 0), saturating at 255 —
    /// the extent the §6.3 "Entire Region" design point prefetches.
    pub extent: u8,
}

/// The retire-stream monitor.
///
/// Feed every retired block to [`FootprintRecorder::observe`]; a
/// `Some(RegionRecord)` pops out each time a region closes.
#[derive(Clone, Debug)]
pub struct FootprintRecorder {
    layout: FootprintLayout,
    /// Retire-side call stack mirror: call blocks awaiting their
    /// return, bounded like the RAS.
    calls: VecDeque<BasicBlock>,
    call_depth_limit: usize,
    owner: Option<RegionOwner>,
    entry_line: LineAddr,
    acc: SpatialFootprint,
    extent: u8,
    last_line: Option<LineAddr>,
    /// Accesses that fell outside the footprint window (diagnostic for
    /// the window-sizing experiments).
    overflow_accesses: u64,
    regions_recorded: u64,
}

impl FootprintRecorder {
    /// Creates a recorder using `layout` for footprints and mirroring a
    /// call stack of `ras_entries`.
    pub fn new(layout: FootprintLayout, ras_entries: usize) -> Self {
        FootprintRecorder {
            layout,
            calls: VecDeque::with_capacity(ras_entries),
            call_depth_limit: ras_entries.max(1),
            owner: None,
            entry_line: LineAddr::from_index(0),
            acc: SpatialFootprint::EMPTY,
            extent: 0,
            last_line: None,
            overflow_accesses: 0,
            regions_recorded: 0,
        }
    }

    /// Footprint geometry in use.
    pub fn layout(&self) -> FootprintLayout {
        self.layout
    }

    /// Regions completed so far.
    pub fn regions_recorded(&self) -> u64 {
        self.regions_recorded
    }

    /// Accesses that missed the footprint window (precision loss of the
    /// chosen encoding).
    pub fn overflow_accesses(&self) -> u64 {
        self.overflow_accesses
    }

    /// Observes one retired block; returns a finished region record
    /// when this block's unconditional branch closes the current region.
    pub fn observe(&mut self, rb: &RetiredBlock) -> Option<RegionRecord> {
        // Accumulate this block's lines into the current region —
        // including the region-closing branch's own lines, which are
        // executed before control transfers. Ownerless regions (before
        // the first unconditional, or after an unmatched return) have
        // nowhere to store a footprint, so they are not measured.
        if self.owner.is_some() {
            for line in rb.block.lines() {
                if self.last_line == Some(line) {
                    continue;
                }
                self.last_line = Some(line);
                let delta = line.get() as i64 - self.entry_line.get() as i64;
                if delta != 0 && !self.acc.record(delta, self.layout) {
                    self.overflow_accesses += 1;
                }
                if delta > 0 {
                    self.extent = self.extent.max(delta.min(255) as u8);
                }
            }
        }

        if !rb.block.kind.is_unconditional() {
            return None;
        }

        // Region closes: emit the record for the current owner.
        let record = self.owner.map(|owner| RegionRecord {
            owner,
            footprint: self.acc,
            extent: self.extent,
        });
        if record.is_some() {
            self.regions_recorded += 1;
        }

        // The new region is owned by this unconditional branch.
        use fe_model::BranchKind::*;
        self.owner = match rb.block.kind {
            Call | Trap => {
                if self.calls.len() == self.call_depth_limit {
                    self.calls.pop_front();
                }
                self.calls.push_back(rb.block);
                Some(RegionOwner::CallLike { block: rb.block })
            }
            Jump => Some(RegionOwner::CallLike { block: rb.block }),
            Return | TrapReturn => self
                .calls
                .pop_back()
                .map(|call_block| RegionOwner::ReturnLike { call_block }),
            Conditional => unreachable!("conditional cannot close a region"),
        };
        self.entry_line = rb.next_pc.line();
        self.acc = SpatialFootprint::EMPTY;
        self.extent = 0;
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_model::{Addr, BranchKind};

    fn block(start: u64, instrs: u8, kind: BranchKind, target: u64) -> BasicBlock {
        BasicBlock::new(Addr::new(start), instrs, kind, Addr::new(target))
    }

    fn retired(b: BasicBlock, taken: bool, next: u64) -> RetiredBlock {
        RetiredBlock {
            block: b,
            taken,
            next_pc: Addr::new(next),
        }
    }

    fn recorder() -> FootprintRecorder {
        FootprintRecorder::new(FootprintLayout::BITS8, 32)
    }

    #[test]
    fn call_region_footprint_lands_on_the_call() {
        let mut r = recorder();
        // Call at 0x1000 targeting 0x8000 opens a region.
        let call = block(0x1000, 4, BranchKind::Call, 0x8000);
        assert!(r.observe(&retired(call, true, 0x8000)).is_none());
        // Region touches entry line (0x8000), +1 (0x8040) and +3 (0x80c0).
        let c1 = block(0x8000, 8, BranchKind::Conditional, 0x80c0);
        assert!(r.observe(&retired(c1, true, 0x80c0)).is_none());
        let c2 = block(0x80c0, 4, BranchKind::Conditional, 0x8040);
        assert!(r.observe(&retired(c2, true, 0x8040)).is_none());
        // Next unconditional (a jump in line +1) closes the region.
        let jump = block(0x8040, 4, BranchKind::Jump, 0x9000);
        let rec = r
            .observe(&retired(jump, true, 0x9000))
            .expect("region closed");
        match rec.owner {
            RegionOwner::CallLike { block } => assert_eq!(block, call),
            other => panic!("wrong owner {other:?}"),
        }
        assert!(rec.footprint.contains(3, FootprintLayout::BITS8));
        assert!(rec.footprint.contains(1, FootprintLayout::BITS8));
        assert!(!rec.footprint.contains(2, FootprintLayout::BITS8));
        assert_eq!(rec.extent, 3);
    }

    #[test]
    fn return_region_lands_on_matching_call() {
        let mut r = recorder();
        let call = block(0x1000, 4, BranchKind::Call, 0x8000);
        r.observe(&retired(call, true, 0x8000));
        // Callee body: straight to return.
        let ret = block(0x8000, 4, BranchKind::Return, 0);
        let rec = r
            .observe(&retired(ret, true, 0x1010))
            .expect("callee region closes");
        assert!(matches!(rec.owner, RegionOwner::CallLike { block } if block == call));
        // Return region: touch fall-through lines, then a jump closes it.
        let body = block(0x1010, 12, BranchKind::Conditional, 0x1040);
        r.observe(&retired(body, false, 0x1040));
        let jump = block(0x1040, 4, BranchKind::Jump, 0x2000);
        let rec2 = r
            .observe(&retired(jump, true, 0x2000))
            .expect("return region closes");
        match rec2.owner {
            RegionOwner::ReturnLike { call_block } => assert_eq!(call_block, call),
            other => panic!("expected return owner, got {other:?}"),
        }
    }

    #[test]
    fn nested_calls_pair_correctly() {
        let mut r = recorder();
        let outer = block(0x1000, 4, BranchKind::Call, 0x8000);
        let inner = block(0x8000, 4, BranchKind::Call, 0x9000);
        r.observe(&retired(outer, true, 0x8000));
        r.observe(&retired(inner, true, 0x9000));
        // Inner returns first.
        let ret1 = block(0x9000, 2, BranchKind::Return, 0);
        r.observe(&retired(ret1, true, 0x8010));
        // Region after inner return is owned by `inner` (ReturnLike).
        let ret2 = block(0x8010, 2, BranchKind::Return, 0);
        let rec = r.observe(&retired(ret2, true, 0x1010)).unwrap();
        assert!(matches!(rec.owner, RegionOwner::ReturnLike { call_block } if call_block == inner));
    }

    #[test]
    fn trap_behaves_like_call() {
        let mut r = recorder();
        let trap = block(0x1000, 4, BranchKind::Trap, 0x4000_0000);
        r.observe(&retired(trap, true, 0x4000_0000));
        let tret = block(0x4000_0000, 4, BranchKind::TrapReturn, 0);
        let rec = r.observe(&retired(tret, true, 0x1010)).unwrap();
        assert!(matches!(rec.owner, RegionOwner::CallLike { block } if block == trap));
    }

    #[test]
    fn backward_access_recorded_in_before_bits() {
        let mut r = recorder();
        let jump = block(0x1000, 4, BranchKind::Jump, 0x8080); // entry at line 0x8080
        r.observe(&retired(jump, true, 0x8080));
        // Loop head one line before the entry.
        let body = block(0x8080, 4, BranchKind::Conditional, 0x8040);
        r.observe(&retired(body, true, 0x8040));
        let head = block(0x8040, 4, BranchKind::Conditional, 0x8080);
        r.observe(&retired(head, true, 0x8080));
        let close = block(0x8080, 4, BranchKind::Jump, 0x9000);
        let rec = r.observe(&retired(close, true, 0x9000)).unwrap();
        assert!(rec.footprint.contains(-1, FootprintLayout::BITS8));
    }

    #[test]
    fn overflow_accesses_counted() {
        let mut r = recorder();
        let jump = block(0x1000, 4, BranchKind::Jump, 0x8000);
        r.observe(&retired(jump, true, 0x8000));
        // Access 20 lines forward: outside the 6-line window.
        let far = block(0x8000 + 20 * 64, 4, BranchKind::Conditional, 0x8000);
        r.observe(&retired(far, true, 0x8000));
        assert_eq!(r.overflow_accesses(), 1);
    }

    #[test]
    fn extent_tracks_farthest_forward_line() {
        let mut r = recorder();
        let jump = block(0x1000, 4, BranchKind::Jump, 0x8000);
        r.observe(&retired(jump, true, 0x8000));
        let far = block(0x8000 + 12 * 64, 4, BranchKind::Conditional, 0x8000);
        r.observe(&retired(far, true, 0x8000));
        let close = block(0x8000, 4, BranchKind::Jump, 0x9000);
        let rec = r.observe(&retired(close, true, 0x9000)).unwrap();
        assert_eq!(
            rec.extent, 12,
            "extent survives even outside the bit window"
        );
    }

    #[test]
    fn unmatched_return_yields_no_owner() {
        let mut r = recorder();
        let ret = block(0x1000, 2, BranchKind::Return, 0);
        assert!(
            r.observe(&retired(ret, true, 0x2000)).is_none(),
            "no prior region"
        );
        // Next region has no owner (the return had no matching call).
        let jump = block(0x2000, 4, BranchKind::Jump, 0x3000);
        assert!(r.observe(&retired(jump, true, 0x3000)).is_none());
    }

    #[test]
    fn first_region_has_no_owner() {
        let mut r = recorder();
        let jump = block(0x1000, 4, BranchKind::Jump, 0x2000);
        assert!(
            r.observe(&retired(jump, true, 0x2000)).is_none(),
            "nothing before entry"
        );
    }
}
