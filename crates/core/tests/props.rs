//! Property tests for Shotgun's footprint machinery: the encode/decode
//! round trip and the recorder's region bookkeeping.

use fe_model::{Addr, BasicBlock, BranchKind, LineAddr, RetiredBlock};
use proptest::prelude::*;
use shotgun::footprint::{FootprintLayout, SpatialFootprint};
use shotgun::recorder::{FootprintRecorder, RegionOwner};
use shotgun::RegionPolicy;

fn layouts() -> impl Strategy<Value = FootprintLayout> {
    prop_oneof![Just(FootprintLayout::BITS8), Just(FootprintLayout::BITS32)]
}

proptest! {
    #[test]
    fn footprint_roundtrip_within_window(
        layout in layouts(),
        deltas in prop::collection::vec(-10i64..=30, 0..20),
    ) {
        let mut fp = SpatialFootprint::EMPTY;
        let mut kept: std::collections::BTreeSet<i64> = Default::default();
        for &d in &deltas {
            if d == 0 {
                continue;
            }
            let in_window =
                (1..=layout.after as i64).contains(&d) || (-(layout.before as i64)..=-1).contains(&d);
            prop_assert_eq!(fp.record(d, layout), in_window);
            if in_window {
                kept.insert(d);
            }
        }
        // Decoded deltas = exactly the in-window recorded set.
        let decoded: std::collections::BTreeSet<i64> = fp.deltas(layout).collect();
        prop_assert_eq!(decoded, kept);
    }

    #[test]
    fn footprint_lines_offset_correctly(
        layout in layouts(),
        entry in 64u64..(1 << 30),
        deltas in prop::collection::vec(1i64..=6, 1..6),
    ) {
        let mut fp = SpatialFootprint::EMPTY;
        for &d in &deltas {
            fp.record(d, layout);
        }
        let entry_line = LineAddr::from_index(entry);
        for line in fp.lines(entry_line, layout) {
            let delta = line.get() as i64 - entry as i64;
            prop_assert!(fp.contains(delta, layout));
        }
    }

    #[test]
    fn policies_always_include_entry_line(
        entry in 64u64..(1 << 30),
        raw in any::<u32>(),
        extent in 0u8..40,
    ) {
        let fp = SpatialFootprint::from_raw(raw & 0xff);
        let entry_line = LineAddr::from_index(entry);
        for policy in RegionPolicy::ALL {
            let lines = policy.prefetch_lines(entry_line, fp, extent);
            prop_assert_eq!(lines[0], entry_line, "{} must fetch the target first", policy);
            // No policy fetches an absurd amount.
            prop_assert!(lines.len() <= 1 + extent.max(32) as usize);
        }
    }

    #[test]
    fn recorder_calls_own_their_target_regions(
        call_targets in prop::collection::vec(1u64..1000, 1..20),
    ) {
        // Build a chain: call -> (region body) -> return, repeatedly.
        let mut rec = FootprintRecorder::new(FootprintLayout::BITS8, 64);
        let mut expected_owner: Option<BasicBlock> = None;
        for (i, &t) in call_targets.iter().enumerate() {
            let call_addr = 0x10_0000 + (i as u64) * 0x100;
            let target = 0x80_0000 + t * 64;
            let call = BasicBlock::new(Addr::new(call_addr), 4, BranchKind::Call, Addr::new(target));
            let record = rec.observe(&RetiredBlock {
                block: call,
                taken: true,
                next_pc: Addr::new(target),
            });
            // The record closed the previous call's region.
            match (record, expected_owner) {
                (Some(r), Some(prev)) => match r.owner {
                    RegionOwner::CallLike { block } => prop_assert_eq!(block, prev),
                    other => prop_assert!(false, "wrong owner {:?}", other),
                },
                (None, None) => {}
                (r, e) => prop_assert!(false, "record {:?} vs expected {:?}", r, e),
            }
            // Body: one conditional block inside the region.
            let body = BasicBlock::new(
                Addr::new(target),
                6,
                BranchKind::Conditional,
                Addr::new(target + 0x40),
            );
            let rb = RetiredBlock { block: body, taken: false, next_pc: body.fall_through() };
            let body_record = rec.observe(&rb);
            prop_assert!(body_record.is_none());
            expected_owner = Some(call);
        }
    }

    #[test]
    fn recorder_extent_bounds_footprint(
        forward_lines in prop::collection::vec(0i64..12, 1..10),
    ) {
        let mut rec = FootprintRecorder::new(FootprintLayout::BITS8, 16);
        let entry = 0x40_0000u64;
        let opener =
            BasicBlock::new(Addr::new(0x1000), 4, BranchKind::Jump, Addr::new(entry));
        rec.observe(&RetiredBlock { block: opener, taken: true, next_pc: Addr::new(entry) });
        for &d in &forward_lines {
            let addr = entry + (d as u64) * 64;
            let b = BasicBlock::new(Addr::new(addr), 4, BranchKind::Conditional, Addr::new(entry));
            rec.observe(&RetiredBlock { block: b, taken: false, next_pc: b.fall_through() });
        }
        let closer = BasicBlock::new(
            Addr::new(entry + 63 * 64),
            4,
            BranchKind::Jump,
            Addr::new(0x1000),
        );
        let record = rec
            .observe(&RetiredBlock { block: closer, taken: true, next_pc: Addr::new(0x1000) })
            .expect("region closes");
        let max_fwd = *forward_lines.iter().max().unwrap() as u8;
        prop_assert!(record.extent >= max_fwd, "extent covers the farthest access");
        // Every decoded footprint delta lies within the observed span.
        for d in record.footprint.deltas(FootprintLayout::BITS8) {
            prop_assert!(d <= max_fwd as i64 && d >= -2);
        }
    }
}
