//! Shared memory path: queued mesh NoC, NUCA LLC, and main memory.
//!
//! The paper's CMP (Table 3) is a 16-tile 4x4 mesh with an
//! address-interleaved shared LLC (512 KB/tile) and 45 ns memory. We
//! simulate one core in detail; the other fifteen run the same
//! homogeneous workload (§5.1), so their traffic is modeled as
//! *background load proportional to the detailed core's own injection
//! rate* — each foreground message brings `background_factor`
//! link-occupancy equivalents with it.
//!
//! The mesh is collapsed into a single aggregate link server with
//! capacity `link_bandwidth` messages/cycle: messages queue FIFO, so
//! queueing delay grows superlinearly with load. This is the mechanism
//! behind Fig. 11 — indiscriminate region prefetching (Entire Region /
//! 5-Blocks) inflates front-end traffic, which delays *data* fills for
//! everyone.
//!
//! Latency of a request = queue wait + mesh round trip (2 x mean hops x
//! cycles/hop) + LLC slice access, plus memory latency on an LLC miss.
//!
//! ## Sharing across simulated contexts
//!
//! [`MemorySystem`] is a *handle*: the LLC contents, the link queue, and
//! the data-miss RNG live in a core shared by every handle created from
//! the same [`MemorySystem::shared_group`] call, while per-context
//! counters ([`MemStats`]) stay in the handle. A single-context
//! simulation ([`MemorySystem::new`]) is simply a group of one and
//! behaves exactly as an owning memory system would. Consolidated
//! multi-context simulations hand one handle to each pipeline: they
//! contend on the link queue and LLC capacity, and each handle's
//! counters report that context's own traffic and the interference it
//! suffered ([`MemStats::cross_evictions`]).
//!
//! Contexts model distinct consolidated *processes*: their (synthetic)
//! virtual address ranges overlap but their physical pages do not, so
//! LLC keys are tagged with the owning context id. The LLC is shared
//! as a resource — capacity and bandwidth — not as a page cache;
//! context 0's keys are untagged, keeping single-context timing
//! bit-identical to a private memory system.

use std::cell::RefCell;
use std::rc::Rc;

use fe_model::config::MachineConfig;
use fe_model::LineAddr;

use crate::setmap::SetAssocMap;

/// Traffic class of a memory request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemClass {
    /// Demand instruction fetch (L1-I miss).
    InstrDemand,
    /// Instruction prefetch probe that missed the L1-I.
    InstrPrefetch,
    /// Data fill (L1-D miss).
    Data,
    /// Prefetcher metadata access (Confluence's LLC-resident history).
    Metadata,
}

/// The chip-level state shared by every context of a group: the
/// aggregate link server, the LLC array (lines tagged with the context
/// that installed them), and the data-miss RNG.
#[derive(Clone, Debug)]
struct ChipCore {
    /// Link occupancy per foreground message, background included.
    service_per_msg: f64,
    /// Cycle at which the aggregate link next frees up.
    queue_free: f64,
    /// One-way uncontended mesh traversal.
    one_way: u32,
    llc_latency: u32,
    memory_cycles: u32,
    llc_data_miss_rate: f64,
    /// LLC contents for instruction lines, keyed by [`llc_key`] and
    /// holding the installing context's id.
    llc: SetAssocMap<u8>,
    /// Deterministic generator for probabilistic data-side LLC misses.
    lcg: u64,
    /// Per-context count of resident lines evicted by a *different*
    /// context's install — the direct cross-context interference
    /// signal. Indexed by victim context id.
    evicted_by_other: Vec<u64>,
}

/// LLC key for `line` in `ctx`'s address space: distinct processes'
/// equal virtual lines must not alias. Synthetic line indices stay far
/// below 2^48, so the tag never collides with the index bits, and
/// context 0 (every single-context run) keys exactly by line index.
fn llc_key(ctx: u8, line: LineAddr) -> u64 {
    ((ctx as u64) << 48) | line.get()
}

impl ChipCore {
    fn new(cfg: &MachineConfig, contexts: usize) -> Self {
        let llc_lines = cfg.llc_total_kib() * 1024 / fe_model::LINE_BYTES;
        ChipCore {
            service_per_msg: (1.0 + cfg.noc.background_factor) / cfg.noc.link_bandwidth,
            queue_free: 0.0,
            one_way: cfg.noc_base_latency(),
            llc_latency: cfg.llc.latency,
            memory_cycles: cfg.memory_cycles(),
            llc_data_miss_rate: cfg.backend.llc_data_miss_rate,
            llc: SetAssocMap::new(llc_lines as usize, cfg.llc.ways as usize),
            lcg: fe_model::rng::SPLITMIX64_GOLDEN,
            evicted_by_other: vec![0; contexts],
        }
    }

    fn llc_round_trip(&self) -> u32 {
        2 * self.one_way + self.llc_latency
    }

    fn draw(&mut self) -> f64 {
        // SplitMix64 counter stream; plenty for a Bernoulli draw.
        fe_model::rng::splitmix64_unit(&mut self.lcg)
    }
}

/// Counters exposed for reports and tests. With a shared group, each
/// handle's stats cover only its own context's traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Foreground messages injected.
    pub messages: u64,
    /// Total cycles foreground messages spent queued for the link.
    pub queue_wait: u64,
    /// Instruction requests that missed the LLC and paid memory latency.
    pub instr_llc_misses: u64,
    /// Data requests that missed the LLC.
    pub data_llc_misses: u64,
    /// This context's resident LLC lines evicted by another context's
    /// install — zero in single-context groups.
    pub cross_evictions: u64,
}

/// Aggregate NoC + LLC + memory timing model — a per-context handle
/// onto chip state that may be shared with other contexts (see the
/// module docs). Deliberately not `Clone`: a copy of a handle would
/// alias the shared chip state, not snapshot it — create additional
/// contexts through [`MemorySystem::shared_group`] instead.
///
/// ```
/// use fe_model::MachineConfig;
/// use fe_model::LineAddr;
/// use fe_uarch::{MemClass, MemorySystem};
///
/// let mut mem = MemorySystem::new(&MachineConfig::table3());
/// let done = mem.request_instr(100, LineAddr::containing(0x1000), MemClass::InstrDemand);
/// assert!(done > 100);
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    core: Rc<RefCell<ChipCore>>,
    /// This handle's context id (the LLC owner tag it installs with).
    ctx: u8,
    stats: MemStats,
    /// `evicted_by_other[ctx]` at the last stats reset.
    evicted_base: u64,
}

impl MemorySystem {
    /// Builds a private memory path (a group of one context).
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut group = Self::shared_group(cfg, 1);
        group.pop().expect("group of one")
    }

    /// Builds `contexts` handles onto one shared LLC/NoC: handle `i`
    /// is context id `i`. All handles contend on the same link queue
    /// and LLC array.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero or exceeds 255.
    pub fn shared_group(cfg: &MachineConfig, contexts: usize) -> Vec<MemorySystem> {
        assert!(
            (1..=255).contains(&contexts),
            "shared group needs 1..=255 contexts"
        );
        let core = Rc::new(RefCell::new(ChipCore::new(cfg, contexts)));
        (0..contexts)
            .map(|i| MemorySystem {
                core: Rc::clone(&core),
                ctx: i as u8,
                stats: MemStats::default(),
                evicted_base: 0,
            })
            .collect()
    }

    /// This handle's context id within its group.
    pub fn context_id(&self) -> u8 {
        self.ctx
    }

    /// Uncontended LLC round trip (mesh + slice), the latency floor of
    /// any request.
    pub fn llc_round_trip(&self) -> u32 {
        self.core.borrow().llc_round_trip()
    }

    /// Requests an instruction line; returns the completion cycle.
    pub fn request_instr(&mut self, now: u64, line: LineAddr, class: MemClass) -> u64 {
        debug_assert!(matches!(
            class,
            MemClass::InstrDemand | MemClass::InstrPrefetch
        ));
        let core = &mut *self.core.borrow_mut();
        let issued = enqueue(core, &mut self.stats, now);
        let mut latency = core.llc_round_trip() as u64;
        let key = llc_key(self.ctx, line);
        if core.llc.get(key).is_none() {
            self.stats.instr_llc_misses += 1;
            latency += core.memory_cycles as u64;
            if let Some((_, owner)) = core.llc.insert(key, self.ctx) {
                if owner != self.ctx {
                    core.evicted_by_other[owner as usize] += 1;
                }
            }
        }
        issued + latency
    }

    /// Functional warming of the LLC: brings `line` (in this context's
    /// address space) resident and promotes its recency *without*
    /// queueing a NoC message, advancing the link clock, or counting
    /// request statistics — the sampled-simulation update-only path
    /// for the memory hierarchy. Cross-context evictions still count:
    /// capacity displacement is real whichever path installed the line.
    pub fn warm_instr(&mut self, line: LineAddr) {
        let core = &mut *self.core.borrow_mut();
        let key = llc_key(self.ctx, line);
        if core.llc.get(key).is_none() {
            if let Some((_, owner)) = core.llc.insert(key, self.ctx) {
                if owner != self.ctx {
                    core.evicted_by_other[owner as usize] += 1;
                }
            }
        }
    }

    /// Requests a data line fill; returns the completion cycle. Data
    /// addresses are abstracted: LLC hit/miss is drawn at the
    /// configured rate (the paper's data working sets are not part of
    /// the front-end study — only the *latency* of these fills under
    /// NoC load matters, Fig. 11).
    pub fn request_data(&mut self, now: u64) -> u64 {
        let core = &mut *self.core.borrow_mut();
        let issued = enqueue(core, &mut self.stats, now);
        let mut latency = core.llc_round_trip() as u64;
        if core.draw() < core.llc_data_miss_rate {
            self.stats.data_llc_misses += 1;
            latency += core.memory_cycles as u64;
        }
        issued + latency
    }

    /// Reads prefetcher metadata pinned in the LLC (Confluence/SHIFT);
    /// always an LLC hit, but subject to NoC queueing like any message.
    pub fn request_metadata(&mut self, now: u64) -> u64 {
        let core = &mut *self.core.borrow_mut();
        let issued = enqueue(core, &mut self.stats, now);
        issued + core.llc_round_trip() as u64
    }

    /// Counters accumulated since construction or the last reset —
    /// this context's traffic only.
    pub fn stats(&self) -> MemStats {
        MemStats {
            cross_evictions: self.core.borrow().evicted_by_other[self.ctx as usize]
                - self.evicted_base,
            ..self.stats
        }
    }

    /// Resets this handle's counters (e.g. at the end of warmup)
    /// without disturbing LLC contents, queue state, or other
    /// contexts' counters.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.evicted_base = self.core.borrow().evicted_by_other[self.ctx as usize];
    }

    /// Current queue backlog in cycles relative to `now` — how congested
    /// the mesh is.
    pub fn backlog(&self, now: u64) -> f64 {
        (self.core.borrow().queue_free - now as f64).max(0.0)
    }

    /// Deep snapshot of a **private** memory system — LLC contents,
    /// link-queue clock, RNG stream, and this handle's counters.
    /// Returns `None` for handles in a shared group (`Rc` count > 1):
    /// one context's copy of shared chip state would neither capture
    /// nor restore its groupmates, so shared groups are simply not
    /// snapshottable. This is why `MemorySystem` itself is not `Clone`
    /// — snapshotting is the explicit, checked path.
    pub fn snapshot(&self) -> Option<MemSnapshot> {
        if Rc::strong_count(&self.core) != 1 {
            return None;
        }
        Some(MemSnapshot {
            core: self.core.borrow().clone(),
            ctx: self.ctx,
            stats: self.stats,
            evicted_base: self.evicted_base,
        })
    }
}

/// A deep, owned copy of a private [`MemorySystem`]'s entire state,
/// detached from any `Rc` sharing — safe to hold across threads and
/// [thaw](MemSnapshot::thaw) any number of times.
#[derive(Clone, Debug)]
pub struct MemSnapshot {
    core: ChipCore,
    ctx: u8,
    stats: MemStats,
    evicted_base: u64,
}

impl MemSnapshot {
    /// Rebuilds a private memory system in exactly the snapshotted
    /// state (a fresh group of one; timing continues bit-identically).
    pub fn thaw(&self) -> MemorySystem {
        MemorySystem {
            core: Rc::new(RefCell::new(self.core.clone())),
            ctx: self.ctx,
            stats: self.stats,
            evicted_base: self.evicted_base,
        }
    }
}

fn enqueue(core: &mut ChipCore, stats: &mut MemStats, now: u64) -> u64 {
    stats.messages += 1;
    let start = core.queue_free.max(now as f64);
    let wait = (start - now as f64) as u64;
    stats.queue_wait += wait;
    core.queue_free = start + core.service_per_msg;
    start.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_model::MachineConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(&MachineConfig::table3())
    }

    #[test]
    fn round_trip_floor() {
        let mut m = mem();
        // Cold LLC: first touch pays memory latency.
        let line = LineAddr::containing(0x1000);
        let t1 = m.request_instr(0, line, MemClass::InstrDemand);
        assert_eq!(t1, (21 + 90), "cold miss = LLC round trip + memory");
        // Warm: LLC hit.
        let t2 = m.request_instr(1000, line, MemClass::InstrDemand);
        assert_eq!(t2, 1000 + 21);
    }

    #[test]
    fn queueing_delays_bursts() {
        let mut m = mem();
        let line = LineAddr::containing(0x2000);
        m.request_instr(0, line, MemClass::InstrDemand); // warm the line

        // A burst of requests at the same cycle must serialize on the
        // link: completion times strictly increase.
        let mut last = 0;
        for i in 0..16 {
            let done = m.request_instr(
                500,
                LineAddr::containing(0x2000 + i * 64),
                MemClass::InstrPrefetch,
            );
            assert!(done >= last, "burst must not reorder");
            last = done;
        }
        let stats = m.stats();
        assert!(stats.queue_wait > 0, "burst must queue");
    }

    #[test]
    fn idle_gaps_drain_the_queue() {
        let mut m = mem();
        for i in 0..8 {
            m.request_data(i);
        }
        let backlog_hot = m.backlog(8);
        assert!(backlog_hot > 0.0);
        assert_eq!(m.backlog(100_000), 0.0, "queue drains when idle");
    }

    #[test]
    fn data_misses_follow_configured_rate() {
        let mut cfg = MachineConfig::table3();
        cfg.backend.llc_data_miss_rate = 0.3;
        let mut m = MemorySystem::new(&cfg);
        let n = 20_000;
        for i in 0..n {
            m.request_data(i * 1000); // spaced: no queue interference
        }
        let rate = m.stats().data_llc_misses as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed data miss rate {rate}");
    }

    #[test]
    fn metadata_is_llc_round_trip() {
        let mut m = mem();
        assert_eq!(m.request_metadata(50), 50 + 21);
    }

    #[test]
    fn llc_capacity_evicts_instruction_lines() {
        let mut cfg = MachineConfig::table3();
        cfg.llc.kib_per_core = 4; // 64 KiB total = 1024 lines
        let mut m = MemorySystem::new(&cfg);
        // Touch far more lines than fit, spaced to avoid queue noise.
        for i in 0..4096u64 {
            m.request_instr(i * 1000, LineAddr::from_index(i), MemClass::InstrDemand);
        }
        let before = m.stats().instr_llc_misses;
        // Line 0 must have been evicted by now.
        m.request_instr(10_000_000, LineAddr::from_index(0), MemClass::InstrDemand);
        assert_eq!(m.stats().instr_llc_misses, before + 1);
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut m = mem();
        let line = LineAddr::containing(0x1000);
        m.request_instr(0, line, MemClass::InstrDemand);
        m.reset_stats();
        assert_eq!(m.stats().messages, 0);
        // Still warm in LLC after reset.
        let t = m.request_instr(5000, line, MemClass::InstrDemand);
        assert_eq!(t, 5000 + 21);
    }

    // ---- shared-group behavior ---------------------------------------

    #[test]
    fn address_spaces_are_private_in_the_shared_llc() {
        let cfg = MachineConfig::table3();
        let mut group = MemorySystem::shared_group(&cfg, 2);
        let line = LineAddr::containing(0x4000);
        // Context 0 pays the cold miss and is warm afterwards.
        let t0 = group[0].request_instr(0, line, MemClass::InstrDemand);
        assert_eq!(t0, 21 + 90);
        // Context 1's *same virtual line* is a different physical page:
        // it pays its own cold miss rather than aliasing context 0's.
        let t1 = group[1].request_instr(1000, line, MemClass::InstrDemand);
        assert_eq!(t1, 1000 + 21 + 90, "no cross-process aliasing");
        // Both copies now coexist; each context hits its own.
        assert_eq!(
            group[0].request_instr(5000, line, MemClass::InstrDemand),
            5000 + 21
        );
        assert_eq!(
            group[1].request_instr(6000, line, MemClass::InstrDemand),
            6000 + 21
        );
        assert_eq!(group[0].stats().instr_llc_misses, 1);
        assert_eq!(group[1].stats().instr_llc_misses, 1);
    }

    #[test]
    fn shared_link_queue_carries_cross_context_contention() {
        let cfg = MachineConfig::table3();
        let mut group = MemorySystem::shared_group(&cfg, 2);
        // Context 0 floods the link at cycle 0.
        for i in 0..64u64 {
            group[0].request_instr(0, LineAddr::from_index(i), MemClass::InstrPrefetch);
        }
        // Context 1's lone request at the same cycle waits behind it.
        group[1].request_instr(0, LineAddr::from_index(1000), MemClass::InstrDemand);
        assert!(
            group[1].stats().queue_wait > 0,
            "shared queue must delay the other context"
        );
        // A private system sees no such wait for a single request.
        let mut solo = MemorySystem::new(&cfg);
        solo.request_instr(0, LineAddr::from_index(1000), MemClass::InstrDemand);
        assert_eq!(solo.stats().queue_wait, 0);
    }

    #[test]
    fn cross_evictions_attributed_to_victim() {
        let mut cfg = MachineConfig::table3();
        cfg.llc.kib_per_core = 4; // tiny shared LLC: 1024 lines
        let mut group = MemorySystem::shared_group(&cfg, 2);
        // Context 0 installs a working set...
        for i in 0..1024u64 {
            group[0].request_instr(i * 1000, LineAddr::from_index(i), MemClass::InstrDemand);
        }
        // ...context 1 blows it away with disjoint lines.
        for i in 0..1024u64 {
            group[1].request_instr(
                2_000_000 + i * 1000,
                LineAddr::from_index(100_000 + i),
                MemClass::InstrDemand,
            );
        }
        assert!(
            group[0].stats().cross_evictions > 0,
            "victim context must observe cross-context evictions"
        );
        assert_eq!(
            group[1].stats().cross_evictions,
            0,
            "aggressor suffered none"
        );
        // Same-context evictions never count.
        let mut solo = MemorySystem::new(&cfg);
        for i in 0..4096u64 {
            solo.request_instr(i * 1000, LineAddr::from_index(i), MemClass::InstrDemand);
        }
        assert_eq!(solo.stats().cross_evictions, 0);
    }

    #[test]
    fn reset_isolates_per_context_counters() {
        let cfg = MachineConfig::table3();
        let mut group = MemorySystem::shared_group(&cfg, 2);
        group[0].request_instr(0, LineAddr::from_index(1), MemClass::InstrDemand);
        group[1].request_instr(0, LineAddr::from_index(2), MemClass::InstrDemand);
        group[0].reset_stats();
        assert_eq!(group[0].stats().messages, 0);
        assert_eq!(group[1].stats().messages, 1, "other context unaffected");
    }
}
