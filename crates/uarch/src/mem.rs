//! Shared memory path: queued mesh NoC, NUCA LLC, and main memory.
//!
//! The paper's CMP (Table 3) is a 16-tile 4x4 mesh with an
//! address-interleaved shared LLC (512 KB/tile) and 45 ns memory. We
//! simulate one core in detail; the other fifteen run the same
//! homogeneous workload (§5.1), so their traffic is modeled as
//! *background load proportional to the detailed core's own injection
//! rate* — each foreground message brings `background_factor`
//! link-occupancy equivalents with it.
//!
//! The mesh is collapsed into a single aggregate link server with
//! capacity `link_bandwidth` messages/cycle: messages queue FIFO, so
//! queueing delay grows superlinearly with load. This is the mechanism
//! behind Fig. 11 — indiscriminate region prefetching (Entire Region /
//! 5-Blocks) inflates front-end traffic, which delays *data* fills for
//! everyone.
//!
//! Latency of a request = queue wait + mesh round trip (2 x mean hops x
//! cycles/hop) + LLC slice access, plus memory latency on an LLC miss.

use fe_model::config::MachineConfig;
use fe_model::LineAddr;

use crate::setmap::SetAssocMap;

/// Traffic class of a memory request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemClass {
    /// Demand instruction fetch (L1-I miss).
    InstrDemand,
    /// Instruction prefetch probe that missed the L1-I.
    InstrPrefetch,
    /// Data fill (L1-D miss).
    Data,
    /// Prefetcher metadata access (Confluence's LLC-resident history).
    Metadata,
}

/// Aggregate NoC + LLC + memory timing model.
///
/// ```
/// use fe_model::MachineConfig;
/// use fe_model::LineAddr;
/// use fe_uarch::{MemClass, MemorySystem};
///
/// let mut mem = MemorySystem::new(&MachineConfig::table3());
/// let done = mem.request_instr(100, LineAddr::containing(0x1000), MemClass::InstrDemand);
/// assert!(done > 100);
/// ```
#[derive(Clone, Debug)]
pub struct MemorySystem {
    /// Link occupancy per foreground message, background included.
    service_per_msg: f64,
    /// Cycle at which the aggregate link next frees up.
    queue_free: f64,
    /// One-way uncontended mesh traversal.
    one_way: u32,
    llc_latency: u32,
    memory_cycles: u32,
    llc_data_miss_rate: f64,
    /// LLC contents for instruction lines (code is shared across the
    /// homogeneous cores, so one copy serves all).
    llc: SetAssocMap<()>,
    /// Deterministic generator for probabilistic data-side LLC misses.
    lcg: u64,
    stats: MemStats,
}

/// Counters exposed for reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Foreground messages injected.
    pub messages: u64,
    /// Total cycles foreground messages spent queued for the link.
    pub queue_wait: u64,
    /// Instruction requests that missed the LLC and paid memory latency.
    pub instr_llc_misses: u64,
    /// Data requests that missed the LLC.
    pub data_llc_misses: u64,
}

impl MemorySystem {
    /// Builds the memory path from a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let llc_lines = cfg.llc_total_kib() * 1024 / fe_model::LINE_BYTES;
        MemorySystem {
            service_per_msg: (1.0 + cfg.noc.background_factor) / cfg.noc.link_bandwidth,
            queue_free: 0.0,
            one_way: cfg.noc_base_latency(),
            llc_latency: cfg.llc.latency,
            memory_cycles: cfg.memory_cycles(),
            llc_data_miss_rate: cfg.backend.llc_data_miss_rate,
            llc: SetAssocMap::new(llc_lines as usize, cfg.llc.ways as usize),
            lcg: 0x9E3779B97F4A7C15,
            stats: MemStats::default(),
        }
    }

    /// Uncontended LLC round trip (mesh + slice), the latency floor of
    /// any request.
    pub fn llc_round_trip(&self) -> u32 {
        2 * self.one_way + self.llc_latency
    }

    /// Requests an instruction line; returns the completion cycle.
    pub fn request_instr(&mut self, now: u64, line: LineAddr, class: MemClass) -> u64 {
        debug_assert!(matches!(
            class,
            MemClass::InstrDemand | MemClass::InstrPrefetch
        ));
        let issued = self.enqueue(now);
        let mut latency = self.llc_round_trip() as u64;
        if self.llc.get(line.get()).is_none() {
            self.stats.instr_llc_misses += 1;
            latency += self.memory_cycles as u64;
            self.llc.insert(line.get(), ());
        }
        issued + latency
    }

    /// Requests a data line fill; returns the completion cycle. Data
    /// addresses are abstracted: LLC hit/miss is drawn at the
    /// configured rate (the paper's data working sets are not part of
    /// the front-end study — only the *latency* of these fills under
    /// NoC load matters, Fig. 11).
    pub fn request_data(&mut self, now: u64) -> u64 {
        let issued = self.enqueue(now);
        let mut latency = self.llc_round_trip() as u64;
        if self.draw() < self.llc_data_miss_rate {
            self.stats.data_llc_misses += 1;
            latency += self.memory_cycles as u64;
        }
        issued + latency
    }

    /// Reads prefetcher metadata pinned in the LLC (Confluence/SHIFT);
    /// always an LLC hit, but subject to NoC queueing like any message.
    pub fn request_metadata(&mut self, now: u64) -> u64 {
        let issued = self.enqueue(now);
        issued + self.llc_round_trip() as u64
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Resets counters (e.g. at the end of warmup) without disturbing
    /// LLC contents or queue state.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Current queue backlog in cycles relative to `now` — how congested
    /// the mesh is.
    pub fn backlog(&self, now: u64) -> f64 {
        (self.queue_free - now as f64).max(0.0)
    }

    fn enqueue(&mut self, now: u64) -> u64 {
        self.stats.messages += 1;
        let start = self.queue_free.max(now as f64);
        let wait = (start - now as f64) as u64;
        self.stats.queue_wait += wait;
        self.queue_free = start + self.service_per_msg;
        start.round() as u64
    }

    fn draw(&mut self) -> f64 {
        // SplitMix-style step; plenty for a Bernoulli draw.
        self.lcg = self.lcg.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.lcg;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_model::MachineConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(&MachineConfig::table3())
    }

    #[test]
    fn round_trip_floor() {
        let mut m = mem();
        // Cold LLC: first touch pays memory latency.
        let line = LineAddr::containing(0x1000);
        let t1 = m.request_instr(0, line, MemClass::InstrDemand);
        assert_eq!(t1, (21 + 90), "cold miss = LLC round trip + memory");
        // Warm: LLC hit.
        let t2 = m.request_instr(1000, line, MemClass::InstrDemand);
        assert_eq!(t2, 1000 + 21);
    }

    #[test]
    fn queueing_delays_bursts() {
        let mut m = mem();
        let line = LineAddr::containing(0x2000);
        m.request_instr(0, line, MemClass::InstrDemand); // warm the line

        // A burst of requests at the same cycle must serialize on the
        // link: completion times strictly increase.
        let mut last = 0;
        for i in 0..16 {
            let done = m.request_instr(
                500,
                LineAddr::containing(0x2000 + i * 64),
                MemClass::InstrPrefetch,
            );
            assert!(done >= last, "burst must not reorder");
            last = done;
        }
        let stats = m.stats();
        assert!(stats.queue_wait > 0, "burst must queue");
    }

    #[test]
    fn idle_gaps_drain_the_queue() {
        let mut m = mem();
        for i in 0..8 {
            m.request_data(i);
        }
        let backlog_hot = m.backlog(8);
        assert!(backlog_hot > 0.0);
        assert_eq!(m.backlog(100_000), 0.0, "queue drains when idle");
    }

    #[test]
    fn data_misses_follow_configured_rate() {
        let mut cfg = MachineConfig::table3();
        cfg.backend.llc_data_miss_rate = 0.3;
        let mut m = MemorySystem::new(&cfg);
        let n = 20_000;
        for i in 0..n {
            m.request_data(i * 1000); // spaced: no queue interference
        }
        let rate = m.stats().data_llc_misses as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed data miss rate {rate}");
    }

    #[test]
    fn metadata_is_llc_round_trip() {
        let mut m = mem();
        assert_eq!(m.request_metadata(50), 50 + 21);
    }

    #[test]
    fn llc_capacity_evicts_instruction_lines() {
        let mut cfg = MachineConfig::table3();
        cfg.llc.kib_per_core = 4; // 64 KiB total = 1024 lines
        let mut m = MemorySystem::new(&cfg);
        // Touch far more lines than fit, spaced to avoid queue noise.
        for i in 0..4096u64 {
            m.request_instr(i * 1000, LineAddr::from_index(i), MemClass::InstrDemand);
        }
        let before = m.stats().instr_llc_misses;
        // Line 0 must have been evicted by now.
        m.request_instr(10_000_000, LineAddr::from_index(0), MemClass::InstrDemand);
        assert_eq!(m.stats().instr_llc_misses, before + 1);
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut m = mem();
        let line = LineAddr::containing(0x1000);
        m.request_instr(0, line, MemClass::InstrDemand);
        m.reset_stats();
        assert_eq!(m.stats().messages, 0);
        // Still warm in LLC after reset.
        let t = m.request_instr(5000, line, MemClass::InstrDemand);
        assert_eq!(t, 5000 + 21);
    }
}
