//! A fast, deterministic hasher for hot point-lookup maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed per map for
//! HashDoS resistance and costs tens of nanoseconds per probe — the
//! MSHR file is probed several times per simulated cycle (every
//! prefetch probe and demand access checks "is this line in flight?"),
//! so that cost shows up directly in simulator throughput. The keys
//! here are line indices the simulator itself generates; there is no
//! adversarial input, so a fixed SplitMix64-finalizer hash is both
//! safe and several times faster.
//!
//! Determinism note: the hash is a pure function of the key (no random
//! per-process state), so map behavior is reproducible run to run —
//! and the structures using it never iterate their maps anyway, which
//! is what keeps simulated timing independent of hash order.

use std::hash::{BuildHasherDefault, Hasher};

/// Hasher applying the SplitMix64 finalizer to integer keys. Falls
/// back to FNV-1a for byte-stream input (unused by the hot maps, but
/// required by the `Hasher` contract).
#[derive(Default)]
pub struct SplitMix64Hasher {
    state: u64,
}

/// `BuildHasher` for [`SplitMix64Hasher`] — plug into `HashMap` /
/// `HashSet` as the third type parameter.
pub type BuildSplitMix64 = BuildHasherDefault<SplitMix64Hasher>;

/// Hash map with the deterministic SplitMix64 hasher — the sanctioned
/// replacement for a default-hasher map in engine crates, where
/// SipHash's per-process random keying would make iteration order (and
/// probe cost) vary run to run. Enforced by the `no-siphash` rule of
/// `fe-audit`; where iteration order is *observable*, use `BTreeMap`
/// instead.
// audit-allow(no-siphash): alias definition site — this line is what the rule points everyone else at
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildSplitMix64>;

/// Hash set twin of [`FastMap`]; same determinism argument.
// audit-allow(no-siphash): alias definition site — this line is what the rule points everyone else at
pub type FastSet<K> = std::collections::HashSet<K, BuildSplitMix64>;

impl Hasher for SplitMix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a over arbitrary bytes; point-lookup maps never take
        // this path (their keys are integers).
        let mut h = self.state ^ 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.state = h;
    }

    #[inline]
    fn write_u64(&mut self, key: u64) {
        // SplitMix64 finalizer: full avalanche in three multiplies.
        let mut z = self.state ^ key;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    #[inline]
    fn write_u32(&mut self, key: u32) {
        self.write_u64(key as u64);
    }

    #[inline]
    fn write_usize(&mut self, key: usize) {
        self.write_u64(key as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |key: u64| {
            let mut h = SplitMix64Hasher::default();
            h.write_u64(key);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn avalanche_spreads_adjacent_keys() {
        let hash = |key: u64| {
            let mut h = SplitMix64Hasher::default();
            h.write_u64(key);
            h.finish()
        };
        // Adjacent line indices must not cluster in low bits (the map
        // uses the low bits for bucket selection).
        let mut low_bits = FastSet::default();
        for key in 0..64u64 {
            low_bits.insert(hash(key) & 0x3F);
        }
        assert!(low_bits.len() > 32, "low bits cluster: {}", low_bits.len());
    }

    #[test]
    fn works_as_a_hashmap_hasher() {
        let mut map: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000 {
            map.insert(i, (i * 2) as u32);
        }
        for i in 0..1000 {
            assert_eq!(map.get(&i), Some(&((i * 2) as u32)));
        }
    }
}
