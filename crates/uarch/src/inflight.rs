//! In-flight fill tracking (MSHRs) for the L1-I.
//!
//! Every outstanding line fetch — demand or prefetch — occupies a miss
//! status holding register until its fill arrives. Demand accesses that
//! find their line already in flight *merge* with the pending fill; when
//! the original requester was a prefetcher, that merge is a **late**
//! prefetch (issued, but not early enough to hide the full latency),
//! which is exactly the in-flight case the paper's stall-cycle-coverage
//! metric is designed to capture (§6.1).

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;

use fe_model::LineAddr;

use crate::fasthash::FastMap;

/// State of one outstanding fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillInfo {
    /// Cycle the line arrives at the L1-I.
    pub ready: u64,
    /// `true` when the original request was a prefetch.
    pub prefetch: bool,
    /// `true` when a demand access merged while the fill was in flight.
    pub demand_merged: bool,
}

/// MSHR file: bounded set of outstanding line fills.
///
/// ```
/// use fe_model::LineAddr;
/// use fe_uarch::inflight::InflightFills;
///
/// let mut mshrs = InflightFills::new(4);
/// let line = LineAddr::containing(0x1000);
/// assert!(mshrs.request(line, 50, true));
/// assert!(mshrs.contains(line));
/// let done: Vec<_> = mshrs.pop_ready(50).collect();
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct InflightFills {
    // Keyed with the deterministic SplitMix64 hasher: the map is
    // probed several times per simulated cycle, and SipHash was a
    // measurable slice of total simulator runtime.
    by_line: FastMap<u64, FillInfo>,
    ready_heap: BinaryHeap<Reverse<(u64, u64)>>,
    capacity: usize,
}

impl InflightFills {
    /// Creates an MSHR file with `capacity` outstanding fills.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        InflightFills {
            by_line: FastMap::with_capacity_and_hasher(capacity * 2, Default::default()),
            ready_heap: BinaryHeap::with_capacity(capacity * 2),
            capacity,
        }
    }

    /// Registers a new outstanding fill completing at `ready`.
    ///
    /// Returns `false` — and records nothing — when the MSHR file is
    /// full or the line is already in flight (callers should check
    /// [`InflightFills::contains`] first to merge instead).
    #[must_use]
    pub fn request(&mut self, line: LineAddr, ready: u64, prefetch: bool) -> bool {
        if self.by_line.len() >= self.capacity {
            return false;
        }
        match self.by_line.entry(line.get()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(FillInfo {
                    ready,
                    prefetch,
                    demand_merged: false,
                });
                self.ready_heap.push(Reverse((ready, line.get())));
                true
            }
        }
    }

    /// `true` when `line` has an outstanding fill.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.by_line.contains_key(&line.get())
    }

    /// The outstanding fill for `line`, if any.
    pub fn lookup(&self, line: LineAddr) -> Option<&FillInfo> {
        self.by_line.get(&line.get())
    }

    /// Merges a demand access into an outstanding fill, returning the
    /// fill's ready cycle. Marks prefetch fills as demand-merged (late
    /// prefetch accounting).
    pub fn merge_demand(&mut self, line: LineAddr) -> Option<u64> {
        self.by_line.get_mut(&line.get()).map(|f| {
            f.demand_merged = true;
            f.ready
        })
    }

    /// Outstanding fill count.
    pub fn len(&self) -> usize {
        self.by_line.len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.by_line.is_empty()
    }

    /// `true` when no new fills can be accepted.
    pub fn is_full(&self) -> bool {
        self.by_line.len() >= self.capacity
    }

    /// Drains and yields every fill whose ready cycle is `<= now`, in
    /// ready order.
    pub fn pop_ready(&mut self, now: u64) -> PopReady<'_> {
        PopReady { fills: self, now }
    }

    /// Earliest cycle at which any outstanding fill *may* complete, or
    /// `None` when nothing is in flight. Stale heap entries (a line
    /// re-requested after completion) can make this earlier than the
    /// true next completion, never later — callers using it to skip
    /// quiet stretches simply wake once, find nothing ready, and ask
    /// again, exactly as a per-cycle poll would.
    pub fn next_ready_at(&self) -> Option<u64> {
        if self.by_line.is_empty() {
            return None;
        }
        self.ready_heap.peek().map(|&Reverse((ready, _))| ready)
    }
}

/// Iterator over completed fills; see [`InflightFills::pop_ready`].
#[derive(Debug)]
pub struct PopReady<'a> {
    fills: &'a mut InflightFills,
    now: u64,
}

impl Iterator for PopReady<'_> {
    type Item = (LineAddr, FillInfo);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let &Reverse((ready, line)) = self.fills.ready_heap.peek()?;
            if ready > self.now {
                return None;
            }
            self.fills.ready_heap.pop();
            // Heap entries may be stale if a line was re-requested after
            // completion; only lines still mapped are real completions.
            if let Some(info) = self.fills.by_line.remove(&line) {
                if info.ready <= self.now {
                    return Some((LineAddr::from_index(line), info));
                }
                // Not yet ready (stale heap entry from an older fill):
                // put it back and re-queue the real deadline.
                self.fills.by_line.insert(line, info);
                self.fills.ready_heap.push(Reverse((info.ready, line)));
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn request_and_complete() {
        let mut m = InflightFills::new(4);
        assert!(m.request(line(1), 10, false));
        assert!(m.contains(line(1)));
        assert_eq!(m.pop_ready(9).count(), 0);
        let done: Vec<_> = m.pop_ready(10).collect();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, line(1));
        assert!(!m.contains(line(1)));
    }

    #[test]
    fn duplicate_requests_rejected() {
        let mut m = InflightFills::new(4);
        assert!(m.request(line(1), 10, true));
        assert!(
            !m.request(line(1), 20, false),
            "second request must merge, not re-issue"
        );
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut m = InflightFills::new(2);
        assert!(m.request(line(1), 10, true));
        assert!(m.request(line(2), 10, true));
        assert!(m.is_full());
        assert!(!m.request(line(3), 10, true));
        m.pop_ready(10).count();
        assert!(
            m.request(line(3), 20, true),
            "capacity frees after completion"
        );
    }

    #[test]
    fn demand_merge_marks_late_prefetch() {
        let mut m = InflightFills::new(4);
        assert!(m.request(line(7), 30, true));
        assert_eq!(m.merge_demand(line(7)), Some(30));
        let (_, info) = m.pop_ready(30).next().unwrap();
        assert!(info.prefetch);
        assert!(info.demand_merged, "merge must be visible at completion");
    }

    #[test]
    fn completions_in_ready_order() {
        let mut m = InflightFills::new(8);
        assert!(m.request(line(1), 30, false));
        assert!(m.request(line(2), 10, false));
        assert!(m.request(line(3), 20, false));
        let order: Vec<_> = m.pop_ready(100).map(|(l, _)| l.get()).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn reuse_line_after_completion() {
        let mut m = InflightFills::new(4);
        assert!(m.request(line(5), 10, true));
        m.pop_ready(10).count();
        assert!(m.request(line(5), 40, false));
        assert_eq!(
            m.pop_ready(20).count(),
            0,
            "stale heap entry must not complete early"
        );
        assert_eq!(m.pop_ready(40).count(), 1);
    }
}
