#![forbid(unsafe_code)]
//! # fe-uarch — microarchitectural substrate
//!
//! Hardware building blocks shared by every control-flow-delivery scheme
//! in the Shotgun reproduction:
//!
//! * [`setmap::SetAssocMap`] — a generic set-associative, LRU-replaced
//!   structure; the storage substrate for every cache and BTB variant.
//! * [`cache::LineCache`] — instruction/data cache with per-line
//!   prefetch/first-use tracking (feeds Fig. 10's accuracy metric).
//! * [`mem::MemorySystem`] — the shared NoC + NUCA LLC + memory path
//!   with queueing and background traffic from the 15 undetailed cores
//!   (Table 3's 4x4 mesh; feeds Fig. 11's fill-latency experiment).
//! * [`tage::Tage`] — the 8 KB TAGE conditional direction predictor.
//! * [`ras::ReturnAddressStack`] — checkpoint-free RAS extended, as
//!   §4.2.3 requires, with the call's basic-block address.
//! * [`btb::Btb`] — the conventional basic-block-oriented BTB used by
//!   the baselines (93-bit entries, §5.2).
//! * [`queue::BoundedQueue`] — FTQ / buffer primitive.
//! * [`predecode`] — branch-metadata extraction from fetched lines.

pub mod btb;
pub mod cache;
pub mod fasthash;
pub mod inflight;
pub mod mem;
pub mod predecode;
pub mod queue;
pub mod ras;
pub mod scheme;
pub mod setmap;
pub mod tage;

pub use btb::Btb;
pub use cache::{AccessOutcome, Evicted, LineCache};
pub use fasthash::{BuildSplitMix64, FastMap, FastSet, SplitMix64Hasher};
pub use inflight::InflightFills;
pub use mem::{MemClass, MemSnapshot, MemStats, MemorySystem};
pub use queue::BoundedQueue;
pub use ras::{RasEntry, ReturnAddressStack};
pub use scheme::{BpuOutcome, ControlFlowDelivery, FrontEndCtx, PredictedBlock};
pub use setmap::SetAssocMap;
pub use tage::{Tage, TageShare, TageShareCursor};
