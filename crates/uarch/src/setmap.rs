//! Generic set-associative storage with LRU replacement.
//!
//! Every lookup structure in the modeled front end — caches, the
//! conventional BTB, Shotgun's U-BTB/C-BTB/RIB, the LLC — is a
//! set-associative array differing only in geometry and payload.
//! [`SetAssocMap`] captures that shape once: keys map to a set by
//! modulo, ways within a set are replaced least-recently-used.

/// A set-associative map from `u64` keys to `V` payloads.
///
/// ```
/// use fe_uarch::SetAssocMap;
/// let mut m: SetAssocMap<&str> = SetAssocMap::new(8, 2);
/// m.insert(1, "one");
/// assert_eq!(m.get(1), Some(&"one"));
/// assert_eq!(m.get(2), None);
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocMap<V> {
    sets: Vec<Vec<Slot<V>>>,
    ways: usize,
    stamp: u64,
    /// `sets.len() - 1` when the set count is a power of two (every
    /// in-tree geometry), letting [`Self::set_of`] map keys with a
    /// mask instead of a 64-bit hardware division — one of the
    /// costliest single instructions on the per-access path. `None`
    /// falls back to the modulo that defines the mapping.
    set_mask: Option<u64>,
}

#[derive(Clone, Debug)]
struct Slot<V> {
    key: u64,
    last_use: u64,
    value: V,
}

impl<V> SetAssocMap<V> {
    /// Creates a map with `entries` total slots organized as sets of
    /// `ways`. `entries` is rounded up to a multiple of `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `ways` is zero.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            entries > 0 && ways > 0,
            "set-associative geometry must be non-zero"
        );
        let ways = ways.min(entries);
        let sets = entries.div_ceil(ways);
        SetAssocMap {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            stamp: 0,
            set_mask: (sets as u64).is_power_of_two().then(|| sets as u64 - 1),
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(|s| s.is_empty())
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        match self.set_mask {
            Some(mask) => (key & mask) as usize,
            None => (key % self.sets.len() as u64) as usize,
        }
    }

    /// Looks `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(key);
        self.sets[set]
            .iter_mut()
            .find(|s| s.key == key)
            .map(|slot| {
                slot.last_use = stamp;
                &slot.value
            })
    }

    /// Mutable lookup, promoting on hit.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(key);
        self.sets[set]
            .iter_mut()
            .find(|s| s.key == key)
            .map(|slot| {
                slot.last_use = stamp;
                &mut slot.value
            })
    }

    /// Non-promoting probe (a coherence-style lookup that must not
    /// disturb replacement state).
    pub fn peek(&self, key: u64) -> Option<&V> {
        let set = self.set_of(key);
        self.sets[set]
            .iter()
            .find(|s| s.key == key)
            .map(|s| &s.value)
    }

    /// Non-promoting mutable probe.
    pub fn peek_mut(&mut self, key: u64) -> Option<&mut V> {
        let set = self.set_of(key);
        self.sets[set]
            .iter_mut()
            .find(|s| s.key == key)
            .map(|s| &mut s.value)
    }

    /// Inserts (or overwrites) `key`, returning the evicted victim if
    /// the set was full.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        if let Some(slot) = set.iter_mut().find(|s| s.key == key) {
            slot.last_use = stamp;
            slot.value = value;
            return None;
        }
        if set.len() < self.ways {
            set.push(Slot {
                key,
                last_use: stamp,
                value,
            });
            return None;
        }
        // Evict the least recently used way.
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        let old = std::mem::replace(
            &mut set[victim],
            Slot {
                key,
                last_use: stamp,
                value,
            },
        );
        Some((old.key, old.value))
    }

    /// Removes `key`, returning its payload.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|s| s.key == key)?;
        Some(set.swap_remove(pos).value)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.sets.iter().flatten().map(|s| (s.key, &s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut m: SetAssocMap<u32> = SetAssocMap::new(16, 4);
        assert!(m.is_empty());
        m.insert(100, 1);
        m.insert(200, 2);
        assert_eq!(m.get(100), Some(&1));
        assert_eq!(m.get(200), Some(&2));
        assert_eq!(m.get(300), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_keeps_capacity() {
        let mut m: SetAssocMap<u32> = SetAssocMap::new(4, 2);
        m.insert(0, 1);
        assert!(m.insert(0, 2).is_none());
        assert_eq!(m.get(0), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set x 2 ways: keys all collide.
        let mut m: SetAssocMap<&str> = SetAssocMap::new(2, 2);
        m.insert(0, "a");
        m.insert(1, "b");
        m.get(0); // promote a
        let evicted = m.insert(2, "c").expect("set is full");
        assert_eq!(evicted, (1, "b"), "LRU way must be the victim");
        assert_eq!(m.get(0), Some(&"a"));
        assert_eq!(m.get(2), Some(&"c"));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut m: SetAssocMap<&str> = SetAssocMap::new(2, 2);
        m.insert(0, "a");
        m.insert(1, "b");
        m.peek(0); // would save "a" if it promoted
        let evicted = m.insert(2, "c").unwrap();
        assert_eq!(evicted.0, 0, "peek must not refresh LRU");
    }

    #[test]
    fn keys_spread_across_sets() {
        let mut m: SetAssocMap<u64> = SetAssocMap::new(8, 2);
        // 4 sets; keys 0..8 fill every set's both ways without eviction.
        for k in 0..8 {
            assert!(m.insert(k, k).is_none());
        }
        assert_eq!(m.len(), 8);
        assert!(m.insert(8, 8).is_some(), "ninth key must evict");
    }

    #[test]
    fn remove_and_clear() {
        let mut m: SetAssocMap<u32> = SetAssocMap::new(8, 2);
        m.insert(5, 50);
        assert_eq!(m.remove(5), Some(50));
        assert_eq!(m.remove(5), None);
        m.insert(1, 1);
        m.insert(2, 2);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_ways() {
        let m: SetAssocMap<u8> = SetAssocMap::new(10, 4);
        assert_eq!(m.capacity(), 12);
    }

    #[test]
    fn ways_clamped_to_entries() {
        let mut m: SetAssocMap<u8> = SetAssocMap::new(2, 16);
        m.insert(1, 1);
        m.insert(2, 2);
        assert!(
            m.insert(3, 3).is_some(),
            "fully associative 2-entry map evicts third"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_rejected() {
        let _: SetAssocMap<u8> = SetAssocMap::new(0, 1);
    }

    #[test]
    fn iter_visits_everything() {
        let mut m: SetAssocMap<u32> = SetAssocMap::new(8, 2);
        for k in 0..6 {
            m.insert(k, k as u32 * 10);
        }
        let mut seen: Vec<_> = m.iter().map(|(k, &v)| (k, v)).collect();
        seen.sort();
        assert_eq!(seen, (0..6).map(|k| (k, k as u32 * 10)).collect::<Vec<_>>());
    }
}
