//! Line-granularity caches with prefetch effectiveness tracking.
//!
//! [`LineCache`] models the L1-I and L1-D of Table 3 (32 KB, 2-way,
//! 64 B lines). Each resident line remembers whether it arrived via a
//! prefetch and whether a demand access has touched it since — exactly
//! the bookkeeping needed for the paper's Fig. 10 prefetch accuracy
//! metric (useful vs. wasted prefetches) without any out-of-band state.

use fe_model::config::CacheConfig;
use fe_model::LineAddr;

use crate::setmap::SetAssocMap;

/// Per-line residency metadata.
#[derive(Clone, Copy, Debug, Default)]
struct LineMeta {
    prefetched: bool,
    demand_used: bool,
}

/// Result of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line resident. `first_use_of_prefetch` is `true` when this is
    /// the first demand touch of a prefetched line — a *useful*
    /// prefetch.
    Hit {
        /// First demand touch of a line a prefetcher brought in.
        first_use_of_prefetch: bool,
    },
    /// Line absent.
    Miss,
}

/// A line evicted by [`LineCache::install`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineAddr,
    /// `true` when the line was prefetched and never demand-touched —
    /// a *wasted* prefetch (Fig. 10's complement).
    pub wasted_prefetch: bool,
}

/// Set-associative, LRU, line-granularity cache.
///
/// ```
/// use fe_model::config::CacheConfig;
/// use fe_model::LineAddr;
/// use fe_uarch::{AccessOutcome, LineCache};
///
/// let mut c = LineCache::new(CacheConfig { kib: 1, ways: 2, latency: 2 });
/// let line = LineAddr::containing(0x4000);
/// assert_eq!(c.demand_access(line), AccessOutcome::Miss);
/// c.install(line, false);
/// assert_eq!(c.demand_access(line), AccessOutcome::Hit { first_use_of_prefetch: false });
/// ```
#[derive(Clone, Debug)]
pub struct LineCache {
    map: SetAssocMap<LineMeta>,
    latency: u32,
}

impl LineCache {
    /// Builds a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        LineCache {
            map: SetAssocMap::new(cfg.lines() as usize, cfg.ways as usize),
            latency: cfg.latency,
        }
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Demand lookup: promotes the line and marks prefetched lines as
    /// used.
    pub fn demand_access(&mut self, line: LineAddr) -> AccessOutcome {
        match self.map.get_mut(line.get()) {
            Some(meta) => {
                let first = meta.prefetched && !meta.demand_used;
                meta.demand_used = true;
                AccessOutcome::Hit {
                    first_use_of_prefetch: first,
                }
            }
            None => AccessOutcome::Miss,
        }
    }

    /// Residency probe that does not disturb LRU or usage bits — what a
    /// prefetch probe does before deciding to fetch (§4.2.3 step 1).
    pub fn probe(&self, line: LineAddr) -> bool {
        self.map.peek(line.get()).is_some()
    }

    /// Installs a fill. `prefetched` tags lines brought in by a
    /// prefetcher rather than a demand miss.
    pub fn install(&mut self, line: LineAddr, prefetched: bool) -> Option<Evicted> {
        let meta = LineMeta {
            prefetched,
            demand_used: false,
        };
        self.map.insert(line.get(), meta).map(|(key, old)| Evicted {
            line: LineAddr::from_index(key),
            wasted_prefetch: old.prefetched && !old.demand_used,
        })
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.map.capacity()
    }

    /// Empties the cache (used between warmup configurations in tests).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LineCache {
        // 1 KiB, 2-way, 64 B lines -> 16 lines, 8 sets.
        LineCache::new(CacheConfig {
            kib: 1,
            ways: 2,
            latency: 2,
        })
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.demand_access(line(3)), AccessOutcome::Miss);
        assert!(c.install(line(3), false).is_none());
        assert_eq!(
            c.demand_access(line(3)),
            AccessOutcome::Hit {
                first_use_of_prefetch: false
            }
        );
    }

    #[test]
    fn prefetch_first_use_reported_once() {
        let mut c = tiny();
        c.install(line(5), true);
        assert_eq!(
            c.demand_access(line(5)),
            AccessOutcome::Hit {
                first_use_of_prefetch: true
            }
        );
        assert_eq!(
            c.demand_access(line(5)),
            AccessOutcome::Hit {
                first_use_of_prefetch: false
            }
        );
    }

    #[test]
    fn wasted_prefetch_detected_on_eviction() {
        let mut c = tiny();
        // Same set: 8 sets, lines 0, 8, 16 collide.
        c.install(line(0), true);
        c.install(line(8), false);
        let evicted = c.install(line(16), false).expect("two-way set overflows");
        assert_eq!(evicted.line, line(0));
        assert!(
            evicted.wasted_prefetch,
            "untouched prefetched line is wasted"
        );
    }

    #[test]
    fn used_prefetch_not_wasted() {
        let mut c = tiny();
        c.install(line(0), true);
        c.demand_access(line(0));
        c.install(line(8), false);
        let evicted = c.install(line(16), false).unwrap();
        assert!(!evicted.wasted_prefetch);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut c = tiny();
        c.install(line(0), true);
        c.install(line(8), false);
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(16)));
        // Probe must not promote line 0: inserting a conflicting line
        // still evicts it (LRU order unchanged).
        let evicted = c.install(line(16), false).unwrap();
        assert_eq!(evicted.line, line(0));
    }

    #[test]
    fn capacity_matches_geometry() {
        let c = tiny();
        assert_eq!(c.capacity(), 16);
        let big = LineCache::new(CacheConfig {
            kib: 32,
            ways: 2,
            latency: 2,
        });
        assert_eq!(big.capacity(), 512);
    }

    #[test]
    fn demand_fill_never_flags_waste() {
        let mut c = tiny();
        c.install(line(0), false);
        c.install(line(8), false);
        let evicted = c.install(line(16), false).unwrap();
        assert!(
            !evicted.wasted_prefetch,
            "demand lines are never wasted prefetches"
        );
    }
}
