//! The control-flow-delivery scheme interface.
//!
//! Every front end the paper evaluates — no-prefetch, FDIP, Boomerang,
//! Confluence, Shotgun — is a [`ControlFlowDelivery`]: a branch
//! prediction unit with its own BTB organization and prefetch policy,
//! driven one basic block at a time by the simulator's decoupled BPU
//! loop. The shared hardware (L1-I, memory path, TAGE, speculative RAS,
//! MSHRs) is passed in through [`FrontEndCtx`] so schemes differ *only*
//! in what the paper varies: BTB organization, miss policy, and
//! prefetch generation.

use fe_cfg::Program;
use fe_model::{Addr, BasicBlock, BranchKind, LineAddr, RetiredBlock};

use crate::btb::Btb;
use crate::cache::LineCache;
use crate::inflight::InflightFills;
use crate::mem::{MemClass, MemorySystem};
use crate::ras::{RasEntry, ReturnAddressStack};
use crate::tage::Tage;

/// A direction prediction in flight, recorded so its retirement update
/// trains TAGE at exactly the history the prediction used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredRecord {
    /// Start address of the predicted conditional block.
    pub block_start: Addr,
    /// Predicted direction.
    pub taken: bool,
    /// Speculative history snapshot the prediction indexed with.
    pub hist: u128,
}

/// Shared front-end hardware handed to a scheme on every hook.
#[derive(Debug)]
pub struct FrontEndCtx<'a> {
    /// Current cycle.
    pub now: u64,
    /// L1 instruction cache.
    pub l1i: &'a mut LineCache,
    /// NoC + LLC + memory path.
    pub mem: &'a mut MemorySystem,
    /// Direction predictor (shared across schemes for fairness).
    pub tage: &'a mut Tage,
    /// Speculative return address stack (repaired by the sim on
    /// redirect).
    pub spec_ras: &'a mut ReturnAddressStack,
    /// L1-I miss status registers.
    pub inflight: &'a mut InflightFills,
    /// Static program, used exclusively as the predecode oracle (what a
    /// hardware predecoder reads out of fetched lines).
    pub program: &'a Program,
    /// Prefetches issued this run (accounting handled by the sim; the
    /// counter lives here so schemes can issue without owning stats).
    pub prefetches_issued: &'a mut u64,
    /// In-flight direction predictions, oldest first (owned and drained
    /// by the simulator at retire/flush).
    pub pred_trace: &'a mut std::collections::VecDeque<PredRecord>,
}

impl FrontEndCtx<'_> {
    /// Issues a prefetch probe for `line` (§4.2.3 step 1–2): checks the
    /// L1-I and the MSHRs, and requests the line from the memory
    /// hierarchy when absent. Returns `true` if a new fill was started.
    pub fn prefetch_line(&mut self, line: LineAddr) -> bool {
        if self.l1i.probe(line) || self.inflight.contains(line) || self.inflight.is_full() {
            return false;
        }
        let ready = self
            .mem
            .request_instr(self.now, line, MemClass::InstrPrefetch);
        if self.inflight.request(line, ready, true) {
            *self.prefetches_issued += 1;
            true
        } else {
            false
        }
    }

    /// Fetches `line` for a reactive BTB fill: returns the cycle the
    /// line's content is available to the predecoder. Fast path when the
    /// line is already resident or in flight.
    ///
    /// The resolution path also prefetches the next sequential line:
    /// the predecoder scans forward (blocks straddle lines), and in the
    /// cascades of misses through cold regions (§2.2) the very next
    /// line is needed a few blocks later — overlapping its fetch with
    /// the current resolution keeps the cascade pipelined instead of
    /// fully serialized.
    pub fn fetch_for_fill(&mut self, line: LineAddr) -> u64 {
        self.prefetch_line(line.offset(1));
        if self.l1i.probe(line) {
            return self.now + self.l1i.latency() as u64;
        }
        if let Some(fill) = self.inflight.lookup(line) {
            return fill.ready;
        }
        let ready = self
            .mem
            .request_instr(self.now, line, MemClass::InstrDemand);
        // Track it like a prefetch so the fill also lands in the L1-I
        // (Boomerang reuses the fetched block for the cache too).
        let _ = self.inflight.request(line, ready, true);
        ready
    }
}

/// What the BPU produced this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BpuOutcome {
    /// A predicted basic block: fetch `block`'s byte range, continue
    /// predicting at `next_pc`.
    Predicted(PredictedBlock),
    /// BTB miss speculated through as straight-line code (FDIP): fetch
    /// `[pc, end)` sequentially and continue at `end`.
    StraightLine {
        /// First byte to fetch.
        pc: Addr,
        /// One past the last byte to fetch (line boundary).
        end: Addr,
    },
    /// The BPU is stalled (e.g. a reactive BTB fill in flight).
    Stall,
}

/// A BTB-predicted fetch block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictedBlock {
    /// The basic block, as described by the BTB.
    pub block: BasicBlock,
    /// Predicted direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// Predicted next fetch address.
    pub next_pc: Addr,
}

/// A control-flow-delivery scheme: BTB organization + miss policy +
/// prefetch generation.
pub trait ControlFlowDelivery {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// One BPU step at speculative `pc`.
    fn predict(&mut self, pc: Addr, ctx: &mut FrontEndCtx) -> BpuOutcome;

    /// A line arrived at the L1-I (demand or prefetch fill) — the
    /// predecode hook (§4.2.3 steps 4–5).
    fn on_fill(&mut self, _line: LineAddr, _was_prefetch: bool, _ctx: &mut FrontEndCtx) {}

    /// A demand fetch missed the L1-I (Confluence's replay trigger).
    fn on_demand_miss(&mut self, _line: LineAddr, _ctx: &mut FrontEndCtx) {}

    /// Every demand L1-I access (hit or miss), in fetch order —
    /// the access stream temporal prefetchers observe to keep their
    /// replay aligned.
    fn on_demand_access(&mut self, _line: LineAddr, _ctx: &mut FrontEndCtx) {}

    /// A basic block retired (training hook).
    fn on_retire(&mut self, _rb: &RetiredBlock, _ctx: &mut FrontEndCtx) {}

    /// Functional-warming update for one retired block: bring the
    /// scheme's predictive state (BTB organization, footprints,
    /// temporal history) up to date *without any timing side effects* —
    /// no prefetch probes, no memory requests, no stalls. Sampled
    /// simulation drains fast-forwarded instructions through this hook
    /// so measurement intervals start with warm structures.
    ///
    /// The default forwards to [`Self::on_retire`], which is
    /// update-only for every in-tree scheme; schemes whose structures
    /// are also filled from the prefetch path (Shotgun's predecode-fed
    /// C-BTB) override it to warm those too.
    fn warm_block(&mut self, rb: &RetiredBlock, ctx: &mut FrontEndCtx) {
        self.on_retire(rb, ctx);
    }

    /// The pipeline redirected to `pc`; in-flight resolution state must
    /// be dropped. TAGE and RAS repair is performed by the simulator.
    fn on_redirect(&mut self, _pc: Addr, _ctx: &mut FrontEndCtx) {}

    /// Whether the simulator should issue FDIP-style L1-I prefetch
    /// probes for fetch ranges as they enter the FTQ.
    fn ftq_prefetch(&self) -> bool {
        true
    }

    /// Architectural BTB misses: retired branches whose block was
    /// absent from the scheme's BTB structures at retirement — the
    /// Table 1 MPKI metric, immune to wrong-path lookup noise.
    fn btb_misses(&self) -> u64;

    /// BTB lookups performed by the BPU (diagnostic).
    fn btb_lookups(&self) -> u64;

    /// Scheme-specific named counters for diagnostics and reports
    /// (e.g. reactive fills, replay activations).
    fn debug_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// Shared hit-path logic for schemes with a conventional basic-block
/// BTB: on a hit, predict the direction (TAGE), maintain the speculative
/// RAS, and produce the fetch block. Returns `None` on a BTB miss — the
/// caller applies its miss policy.
pub fn predict_conventional(
    btb: &mut Btb,
    pc: Addr,
    ctx: &mut FrontEndCtx,
) -> Option<PredictedBlock> {
    let block = btb.lookup(pc)?;
    Some(follow_block(&block, ctx))
}

/// Direction prediction + RAS maintenance for a known basic block; the
/// common tail of every scheme's hit path.
pub fn follow_block(block: &BasicBlock, ctx: &mut FrontEndCtx) -> PredictedBlock {
    match block.kind {
        BranchKind::Conditional => {
            let hist = ctx.tage.spec_snapshot();
            let taken = ctx.tage.predict(block.branch_pc());
            ctx.pred_trace.push_back(PredRecord {
                block_start: block.start,
                taken,
                hist,
            });
            ctx.tage.push_spec(taken);
            let next_pc = if taken {
                block.target
            } else {
                block.fall_through()
            };
            PredictedBlock {
                block: *block,
                taken,
                next_pc,
            }
        }
        BranchKind::Call | BranchKind::Trap => {
            ctx.spec_ras.push(RasEntry {
                ret: block.fall_through(),
                call_block: block.start,
            });
            PredictedBlock {
                block: *block,
                taken: true,
                next_pc: block.target,
            }
        }
        BranchKind::Return | BranchKind::TrapReturn => {
            // An empty RAS yields no target; predict the fall-through,
            // which will misfetch and redirect.
            let next_pc = ctx.spec_ras.pop().map_or(block.fall_through(), |e| e.ret);
            PredictedBlock {
                block: *block,
                taken: true,
                next_pc,
            }
        }
        BranchKind::Jump => PredictedBlock {
            block: *block,
            taken: true,
            next_pc: block.target,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cfg::{LayerSpec, WorkloadSpec};
    use fe_model::config::{CacheConfig, TageConfig};
    use fe_model::MachineConfig;

    struct Rig {
        l1i: LineCache,
        mem: MemorySystem,
        tage: Tage,
        ras: ReturnAddressStack,
        inflight: InflightFills,
        program: Program,
        issued: u64,
        pred_trace: std::collections::VecDeque<PredRecord>,
    }

    impl Rig {
        fn new() -> Self {
            let cfg = MachineConfig::table3();
            Rig {
                l1i: LineCache::new(CacheConfig::default()),
                mem: MemorySystem::new(&cfg),
                tage: Tage::new(TageConfig::default()),
                ras: ReturnAddressStack::new(32),
                inflight: InflightFills::new(16),
                program: WorkloadSpec {
                    name: "scheme".into(),
                    seed: 3,
                    layers: vec![LayerSpec::grouped(2, 2.0), LayerSpec::shared(8, 0.5)],
                    kernel_entries: 2,
                    kernel_helpers: 2,
                    ..WorkloadSpec::default()
                }
                .build(),
                issued: 0,
                pred_trace: std::collections::VecDeque::new(),
            }
        }

        fn ctx(&mut self) -> FrontEndCtx<'_> {
            FrontEndCtx {
                now: 100,
                l1i: &mut self.l1i,
                mem: &mut self.mem,
                tage: &mut self.tage,
                spec_ras: &mut self.ras,
                inflight: &mut self.inflight,
                program: &self.program,
                prefetches_issued: &mut self.issued,
                pred_trace: &mut self.pred_trace,
            }
        }
    }

    #[test]
    fn prefetch_line_filters_resident_and_inflight() {
        let mut rig = Rig::new();
        let line = LineAddr::containing(0x1000);
        let mut ctx = rig.ctx();
        assert!(ctx.prefetch_line(line), "cold line must issue");
        assert!(!ctx.prefetch_line(line), "in-flight line must merge");
        let _ = ctx;
        rig.l1i.install(LineAddr::containing(0x2000), false);
        let mut ctx = rig.ctx();
        assert!(
            !ctx.prefetch_line(LineAddr::containing(0x2000)),
            "resident line filtered"
        );
        assert_eq!(*ctx.prefetches_issued, 1);
    }

    #[test]
    fn fetch_for_fill_fast_path_when_resident() {
        let mut rig = Rig::new();
        let line = LineAddr::containing(0x3000);
        rig.l1i.install(line, false);
        let mut ctx = rig.ctx();
        let ready = ctx.fetch_for_fill(line);
        assert_eq!(ready, 100 + 2, "L1-I hit: latency only");
    }

    #[test]
    fn fetch_for_fill_goes_to_memory_when_absent() {
        let mut rig = Rig::new();
        let line = LineAddr::containing(0x3000);
        let mut ctx = rig.ctx();
        let ready = ctx.fetch_for_fill(line);
        assert!(ready >= 100 + 21, "LLC round trip at least");
        assert!(ctx.inflight.contains(line), "fill also lands in the L1-I");
    }

    #[test]
    fn follow_block_pushes_and_pops_ras() {
        let mut rig = Rig::new();
        let call = BasicBlock::new(Addr::new(0x1000), 4, BranchKind::Call, Addr::new(0x8000));
        let ret = BasicBlock::new(Addr::new(0x8000), 2, BranchKind::Return, Addr::NULL);
        let mut ctx = rig.ctx();
        let p1 = follow_block(&call, &mut ctx);
        assert_eq!(p1.next_pc, Addr::new(0x8000));
        let p2 = follow_block(&ret, &mut ctx);
        assert_eq!(p2.next_pc, call.fall_through(), "return predicted via RAS");
    }

    #[test]
    fn follow_block_conditional_consults_tage() {
        let mut rig = Rig::new();
        let cond = BasicBlock::new(
            Addr::new(0x2000),
            4,
            BranchKind::Conditional,
            Addr::new(0x2100),
        );
        // Train TAGE strongly not-taken for this PC.
        for _ in 0..32 {
            rig.tage.retire(cond.branch_pc(), false);
        }
        let mut ctx = rig.ctx();
        let p = follow_block(&cond, &mut ctx);
        assert!(!p.taken);
        assert_eq!(p.next_pc, cond.fall_through());
    }

    #[test]
    fn empty_ras_return_predicts_fall_through() {
        let mut rig = Rig::new();
        let ret = BasicBlock::new(Addr::new(0x9000), 2, BranchKind::Return, Addr::NULL);
        let mut ctx = rig.ctx();
        let p = follow_block(&ret, &mut ctx);
        assert_eq!(
            p.next_pc,
            ret.fall_through(),
            "garbage prediction, will misfetch"
        );
    }
}
