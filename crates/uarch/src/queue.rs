//! Bounded FIFO queue: the fetch target queue and the various prefetch
//! buffers are all instances of this shape.

use std::collections::VecDeque;

/// Fixed-capacity FIFO.
///
/// ```
/// use fe_uarch::BoundedQueue;
/// let mut q: BoundedQueue<u32> = BoundedQueue::new(2);
/// assert!(q.push(1));
/// assert!(q.push(2));
/// assert!(!q.push(3), "full queue rejects");
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends `item`; returns `false` (dropping nothing) when full.
    #[must_use]
    pub fn push(&mut self, item: T) -> bool {
        if self.items.len() >= self.capacity {
            return false;
        }
        self.items.push_back(item);
        true
    }

    /// Removes the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Oldest item without removal.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Newest item.
    pub fn back(&self) -> Option<&T> {
        self.items.back()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all items (pipeline squash).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(q.is_full());
        assert!(!q.push(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clear_squashes_everything() {
        let mut q = BoundedQueue::new(3);
        let _ = q.push(1);
        let _ = q.push(2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.push(9));
        assert_eq!(q.front(), Some(&9));
    }

    #[test]
    fn front_back_views() {
        let mut q = BoundedQueue::new(3);
        let _ = q.push(10);
        let _ = q.push(20);
        assert_eq!(q.front(), Some(&10));
        assert_eq!(q.back(), Some(&20));
        if let Some(f) = q.front_mut() {
            *f = 11;
        }
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }
}
