//! Conventional basic-block-oriented BTB (Yeh & Patt), as used by the
//! no-prefetch baseline, FDIP, Boomerang and Confluence.
//!
//! Entries are keyed by basic-block start address and hold the §5.2
//! payload: block size, branch type and taken target (93 bits per entry
//! including the 2-bit direction hysteresis, which this model delegates
//! to TAGE). A lookup hit reconstructs the full [`BasicBlock`]
//! descriptor, which is everything the branch-prediction unit needs to
//! form the next fetch range.

use fe_model::{Addr, BasicBlock, BranchKind};

use crate::setmap::SetAssocMap;

#[derive(Clone, Copy, Debug)]
struct BtbPayload {
    instr_count: u8,
    kind: BranchKind,
    target: Addr,
}

/// Set-associative basic-block BTB.
///
/// ```
/// use fe_model::{Addr, BasicBlock, BranchKind};
/// use fe_uarch::Btb;
///
/// let mut btb = Btb::new(2048, 4);
/// let bb = BasicBlock::new(Addr::new(0x1000), 5, BranchKind::Call, Addr::new(0x8000));
/// btb.insert(&bb);
/// assert_eq!(btb.lookup(Addr::new(0x1000)), Some(bb));
/// assert_eq!(btb.lookup(Addr::new(0x1004)), None);
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    map: SetAssocMap<BtbPayload>,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways`
    /// associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        Btb {
            map: SetAssocMap::new(entries, ways),
        }
    }

    /// Looks up the basic block starting at `pc`, promoting it in the
    /// replacement order.
    pub fn lookup(&mut self, pc: Addr) -> Option<BasicBlock> {
        self.map.get(key(pc)).map(|p| BasicBlock {
            start: pc,
            instr_count: p.instr_count,
            kind: p.kind,
            target: p.target,
        })
    }

    /// Residency probe without LRU promotion.
    pub fn contains(&self, pc: Addr) -> bool {
        self.map.peek(key(pc)).is_some()
    }

    /// Installs (or refreshes) the entry for `block`. Returns the start
    /// address of an evicted victim, if any.
    pub fn insert(&mut self, block: &BasicBlock) -> Option<Addr> {
        let payload = BtbPayload {
            instr_count: block.instr_count,
            kind: block.kind,
            target: block.target,
        };
        self.map
            .insert(key(block.start), payload)
            .map(|(k, _)| Addr::new(k << 2))
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the BTB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.map.capacity()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[inline]
fn key(pc: Addr) -> u64 {
    // Instructions are 4-byte aligned; drop the always-zero bits so
    // consecutive blocks spread across sets.
    pc.get() >> 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(start: u64, target: u64) -> BasicBlock {
        BasicBlock::new(
            Addr::new(start),
            4,
            BranchKind::Conditional,
            Addr::new(target),
        )
    }

    #[test]
    fn lookup_reconstructs_block() {
        let mut btb = Btb::new(64, 4);
        let b = bb(0x1000, 0x2000);
        btb.insert(&b);
        assert_eq!(btb.lookup(Addr::new(0x1000)), Some(b));
    }

    #[test]
    fn miss_on_absent_and_non_start() {
        let mut btb = Btb::new(64, 4);
        btb.insert(&bb(0x1000, 0x2000));
        assert_eq!(btb.lookup(Addr::new(0x1010)), None);
        assert!(!btb.contains(Addr::new(0x1010)));
    }

    #[test]
    fn capacity_evictions_report_victim() {
        // Fully associative 2-entry BTB.
        let mut btb = Btb::new(2, 2);
        btb.insert(&bb(0x1000, 0x2000));
        btb.insert(&bb(0x2000, 0x3000));
        let victim = btb.insert(&bb(0x3000, 0x4000));
        assert_eq!(victim, Some(Addr::new(0x1000)));
        assert!(btb.lookup(Addr::new(0x1000)).is_none());
    }

    #[test]
    fn reinsert_updates_payload() {
        let mut btb = Btb::new(64, 4);
        btb.insert(&bb(0x1000, 0x2000));
        let updated = BasicBlock::new(Addr::new(0x1000), 7, BranchKind::Jump, Addr::new(0x5000));
        assert!(btb.insert(&updated).is_none(), "overwrite must not evict");
        assert_eq!(btb.lookup(Addr::new(0x1000)), Some(updated));
    }

    #[test]
    fn capacity_matches_request() {
        let btb = Btb::new(2048, 4);
        assert_eq!(btb.capacity(), 2048);
    }
}
