//! TAGE conditional-branch direction predictor (Seznec & Michaud),
//! sized to Table 3's 8 KB budget.
//!
//! A bimodal base table backs six partially-tagged components indexed
//! with geometrically increasing global-history lengths. The predictor
//! keeps two history registers: a *speculative* one advanced by the
//! branch-prediction unit as it runs ahead, and a *retired* one advanced
//! at commit. On a pipeline redirect the speculative history is repaired
//! from the retired one — the standard recovery scheme. Table state is
//! only ever updated at retirement, with indices recomputed from retired
//! history (identical to the speculative indices on the correct path).

use fe_model::config::TageConfig;
use fe_model::Addr;

/// Saturating 3-bit signed counter range.
const CTR_MAX: i8 = 3;
const CTR_MIN: i8 = -4;
/// 2-bit useful counter ceiling.
const U_MAX: u8 = 3;
/// Updates between graceful useful-bit resets.
const U_RESET_PERIOD: u64 = 256 * 1024;
/// Upper bound on tagged components, so per-lookup index/tag caches can
/// live in fixed arrays instead of heap allocations (the predictor is
/// the hottest structure in the whole simulator). Enforced with a clear
/// error at configuration build time by `MachineConfig::validate`.
const MAX_TAGGED_TABLES: usize = TageConfig::MAX_TAGGED_TABLES as usize;

/// One tagged-component entry packed into a single `u32`: the tag in
/// bits 0..16, the valid flag at bit 16, the 3-bit signed counter
/// stored offset-by-4 (`[-4, 3]` → `0..8`) in bits 17..20, and the
/// 2-bit useful counter in bits 20..22. The unpacked field form padded
/// to six bytes; at four, a 512-entry table drops from 3 KiB to 2 KiB,
/// so a whole six-table predictor sits in a third less cache — entry
/// loads are ~25% of whole-simulation time, and a batch sweep keeps
/// one predictor *per cell* contending for the same L2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TaggedEntry(u32);

impl TaggedEntry {
    const VALID_SHIFT: u32 = 16;
    const CTR_SHIFT: u32 = 17;
    const CTR_MASK: u32 = 0b111;
    /// Stored bias that makes the `[-4, 3]` counter range non-negative.
    const CTR_BIAS: i8 = 4;
    const U_SHIFT: u32 = 20;
    const U_MASK: u32 = 0b11;

    #[inline]
    fn new(valid: bool, tag: u16, ctr: i8, u: u8) -> Self {
        debug_assert!((CTR_MIN..=CTR_MAX).contains(&ctr));
        debug_assert!(u <= U_MAX);
        TaggedEntry(
            tag as u32
                | (valid as u32) << Self::VALID_SHIFT
                | (((ctr + Self::CTR_BIAS) as u32) << Self::CTR_SHIFT)
                | ((u as u32) << Self::U_SHIFT),
        )
    }

    /// Invalid all-zero entry (scratch-scan placeholder; never read as
    /// a real entry).
    #[inline]
    fn empty() -> Self {
        TaggedEntry(0)
    }

    #[inline]
    fn valid(self) -> bool {
        self.0 & (1 << Self::VALID_SHIFT) != 0
    }

    #[inline]
    fn tag(self) -> u16 {
        self.0 as u16
    }

    #[inline]
    fn ctr(self) -> i8 {
        ((self.0 >> Self::CTR_SHIFT) & Self::CTR_MASK) as i8 - Self::CTR_BIAS
    }

    #[inline]
    fn u(self) -> u8 {
        ((self.0 >> Self::U_SHIFT) & Self::U_MASK) as u8
    }

    #[inline]
    fn set_ctr(&mut self, ctr: i8) {
        debug_assert!((CTR_MIN..=CTR_MAX).contains(&ctr));
        self.0 = (self.0 & !(Self::CTR_MASK << Self::CTR_SHIFT))
            | (((ctr + Self::CTR_BIAS) as u32) << Self::CTR_SHIFT);
    }

    #[inline]
    fn set_u(&mut self, u: u8) {
        debug_assert!(u <= U_MAX);
        self.0 = (self.0 & !(Self::U_MASK << Self::U_SHIFT)) | ((u as u32) << Self::U_SHIFT);
    }
}

impl Default for TaggedEntry {
    fn default() -> Self {
        TaggedEntry::new(false, 0, 0, 0)
    }
}

#[derive(Clone, Debug)]
struct TaggedTable {
    entries: Vec<TaggedEntry>,
    hist_len: u32,
    index_mask: u64,
}

/// Where a prediction came from, carried to the update path — along
/// with the table indices the lookup already folded, so the update and
/// allocation paths never re-fold the history.
#[derive(Clone, Copy, Debug)]
struct Lookup {
    provider: Option<usize>,
    provider_index: usize,
    provider_pred: bool,
    provider_weak: bool,
    alt_pred: bool,
    bimodal_index: usize,
    /// Entry index per tagged table under the lookup's history. Valid
    /// for every table whose history is at least as long as the
    /// provider's — exactly the range the update's allocation path
    /// touches; the longest-first scan may stop before reaching the
    /// shorter tables. `u16` suffices: `tagged_bits` is capped at 16
    /// by `MachineConfig::validate`.
    indices: [u16; MAX_TAGGED_TABLES],
}

/// Incrementally-maintained folded histories — the "fold scratch".
///
/// A lookup folds the masked history into three widths per tagged
/// table (index, tag, tag−1). Folding is XOR over `w`-wide chunks,
/// which is reduction of the history polynomial mod `x^w + 1` in
/// GF(2) — a linear map, so pushing one bit updates the fold in O(1):
///
/// ```text
/// fold' = rotl_w(fold) ^ inserted ^ (evicted << (len mod w))
/// ```
///
/// where `evicted` is bit `len−1` of the pre-shift history. One
/// register set tracks the speculative history, one the retired; a
/// redirect copies retired over speculative, mirroring the history
/// registers themselves. Derived state: rebuildable from the history
/// registers at any time (that is exactly what [`Tage::
/// enable_fold_scratch`] does), so it needs no serialization.
#[derive(Clone, Debug)]
struct FoldState {
    /// Push-invariant constants, precomputed once at enable time.
    meta: FoldMeta,
    /// Per tagged table, per width: fold of the spec-history mask.
    spec: [[u64; 3]; MAX_TAGGED_TABLES],
    /// Per tagged table, per width: fold of the retired-history mask.
    retired: [[u64; 3]; MAX_TAGGED_TABLES],
}

/// The push-invariant constants of a [`FoldState`]: the per-width
/// rotate masks and — critically — the `len mod w` evicted-bit
/// positions. The modulo is a hardware divide, and a push runs it
/// 3 × tables times for *every* retired branch (spec push at predict,
/// retired push at commit); hoisting it out of the loop is worth
/// several percent of whole-simulation wall clock.
#[derive(Clone, Debug)]
struct FoldMeta {
    /// The three fold widths: `[tagged_bits, tag_width, tag_width-1]`.
    widths: [u32; 3],
    /// `(1 << w) − 1` per width.
    masks: [u64; 3],
    /// `tag_width == tagged_bits` (the default geometry): plane 1 of
    /// every register would equal plane 0 at all times, so pushes skip
    /// maintaining it and readers take plane 0 instead — the scratch
    /// counterpart of the classic path reusing the index fold as the
    /// first tag fold.
    same_width: bool,
    /// Tagged-table count (fold registers beyond it stay zero).
    n_tables: usize,
    /// Per table: history length, hoisted out of the table structs so
    /// the push loop walks three flat arrays and nothing else.
    lens: [u32; MAX_TAGGED_TABLES],
    /// Per table, per width: `hist_len mod w`.
    evict_shift: [[u32; 3]; MAX_TAGGED_TABLES],
}

impl FoldMeta {
    fn new(widths: [u32; 3], tables: &[TaggedTable]) -> Self {
        let mut masks = [0u64; 3];
        for (m, &w) in masks.iter_mut().zip(widths.iter()) {
            if w > 0 {
                *m = (1u64 << w) - 1;
            }
        }
        let mut lens = [0u32; MAX_TAGGED_TABLES];
        let mut evict_shift = [[0u32; 3]; MAX_TAGGED_TABLES];
        for (t, table) in tables.iter().enumerate() {
            lens[t] = table.hist_len;
            for (s, &w) in evict_shift[t].iter_mut().zip(widths.iter()) {
                if w > 0 {
                    *s = table.hist_len % w;
                }
            }
        }
        FoldMeta {
            widths,
            masks,
            same_width: widths[1] == widths[0],
            n_tables: tables.len(),
            lens,
            evict_shift,
        }
    }
}

/// Advances one register set for a history push of `bit`, where `hist`
/// is the register value *before* the shift. This runs 2+ times per
/// retired conditional (spec push at predict, retired push at commit)
/// and is the fold scratch's entire maintenance cost, so it is tuned:
/// the evicted history bit comes from a pre-split 64-bit half (a
/// variable `u128` shift per table costs several instructions), the
/// width planes are unrolled with their loop-invariant guards hoisted,
/// and `same_width` geometries skip the redundant plane-1 update
/// entirely (readers take plane 0; see [`FoldMeta::same_width`]).
#[inline]
fn push_folds(regs: &mut [[u64; 3]; MAX_TAGGED_TABLES], meta: &FoldMeta, hist: u128, bit: bool) {
    let bit = bit as u64;
    let lo = hist as u64;
    let hi = (hist >> 64) as u64;
    let [w0, w1, w2] = meta.widths;
    let [m0, m1, m2] = meta.masks;
    let do0 = w0 != 0;
    let do1 = w1 != 0 && !meta.same_width;
    let do2 = w2 != 0;
    for ((regs_t, &len), shifts) in regs
        .iter_mut()
        .zip(meta.lens.iter())
        .zip(meta.evict_shift.iter())
        .take(meta.n_tables)
    {
        if len == 0 {
            continue;
        }
        // Histories are capped at 128 bits, so bit `len-1` lives in the
        // low half when `len <= 64` and at `(len-1) & 63` of the high
        // half otherwise.
        let evicted = (if len > 64 { hi } else { lo } >> ((len - 1) & 63)) & 1;
        if do0 {
            let r = regs_t[0];
            regs_t[0] = (((r << 1) | (r >> (w0 - 1))) & m0) ^ bit ^ (evicted << shifts[0]);
        }
        if do1 {
            let r = regs_t[1];
            regs_t[1] = (((r << 1) | (r >> (w1 - 1))) & m1) ^ bit ^ (evicted << shifts[1]);
        }
        if do2 {
            let r = regs_t[2];
            regs_t[2] = (((r << 1) | (r >> (w2 - 1))) & m2) ^ bit ^ (evicted << shifts[2]);
        }
    }
}

/// Rebuilds one register set from scratch for the given history.
fn init_folds(
    widths: &[u32; 3],
    tables: &[TaggedTable],
    hist: u128,
) -> [[u64; 3]; MAX_TAGGED_TABLES] {
    let mut regs = [[0u64; 3]; MAX_TAGGED_TABLES];
    for (t, table) in tables.iter().enumerate() {
        let h = MaskedHist::new(hist, table.hist_len);
        for (reg, &w) in regs[t].iter_mut().zip(widths.iter()) {
            *reg = h.fold(w);
        }
    }
    regs
}

/// The TAGE predictor.
///
/// ```
/// use fe_model::config::TageConfig;
/// use fe_model::Addr;
/// use fe_uarch::Tage;
///
/// let mut tage = Tage::new(TageConfig::default());
/// let pc = Addr::new(0x1000);
/// // Train a strongly taken branch.
/// for _ in 0..64 {
///     tage.retire(pc, true);
/// }
/// assert!(tage.predict(pc));
/// ```
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    bimodal: Vec<u8>,
    tables: Vec<TaggedTable>,
    spec_hist: u128,
    retired_hist: u128,
    use_alt: u8,
    lfsr: u32,
    updates: u64,
    tag_mask: u16,
    /// Opt-in incremental fold registers (see [`FoldState`]); `None`
    /// keeps the classic fold-per-lookup path byte-for-byte intact.
    fold: Option<Box<FoldState>>,
}

impl Tage {
    /// Builds the predictor for the given configuration.
    pub fn new(cfg: TageConfig) -> Self {
        assert!(
            (cfg.tagged_tables as usize) <= MAX_TAGGED_TABLES,
            "TAGE supports at most {MAX_TAGGED_TABLES} tagged tables, got {}",
            cfg.tagged_tables,
        );
        assert!(
            cfg.tagged_bits <= TageConfig::MAX_COMPONENT_BITS
                && cfg.tag_width <= TageConfig::MAX_COMPONENT_BITS,
            "TAGE indices and tags are cached 16-bit; got tagged_bits={} tag_width={}",
            cfg.tagged_bits,
            cfg.tag_width,
        );
        let tables = (0..cfg.tagged_tables)
            .map(|t| {
                let hist_len = geometric_length(&cfg, t);
                TaggedTable {
                    entries: vec![TaggedEntry::default(); 1 << cfg.tagged_bits],
                    hist_len,
                    index_mask: (1u64 << cfg.tagged_bits) - 1,
                }
            })
            .collect();
        Tage {
            // Weakly not-taken start: compilers lay out the common path
            // as fall-through, so a cold branch is best guessed
            // not-taken (the classic static heuristic).
            bimodal: vec![1; 1 << cfg.base_bits],
            tables,
            spec_hist: 0,
            retired_hist: 0,
            use_alt: 8,
            lfsr: 0xACE1,
            updates: 0,
            tag_mask: ((1u32 << cfg.tag_width) - 1) as u16,
            fold: None,
            cfg,
        }
    }

    /// Switches lookups to incrementally-maintained folded histories
    /// (see the private `FoldState`): O(1) per history push instead of O(len/w)
    /// folds per table per lookup. Predictions and state remain
    /// bit-identical — the registers are a cached form of the same
    /// folds. The batch sweep engine enables this per cell; the serial
    /// path stays on the classic folds as the reference.
    pub fn enable_fold_scratch(&mut self) {
        let widths = [
            self.cfg.tagged_bits,
            self.cfg.tag_width,
            self.cfg.tag_width.saturating_sub(1),
        ];
        self.fold = Some(Box::new(FoldState {
            meta: FoldMeta::new(widths, &self.tables),
            spec: init_folds(&widths, &self.tables, self.spec_hist),
            retired: init_folds(&widths, &self.tables, self.retired_hist),
        }));
    }

    /// Predicts the direction of the conditional branch at `pc` using
    /// the *speculative* history (branch-prediction-unit path). With
    /// fold scratch armed this takes the prediction-only path: the
    /// `Lookup`'s table-index cache exists for the retire-time update
    /// and a prediction discards it, so none of it is materialized.
    pub fn predict(&self, pc: Addr) -> bool {
        match &self.fold {
            Some(f) => self.predict_scratch(pc, &f.spec),
            None => {
                let l = self.lookup(pc, self.spec_hist, None);
                self.resolve(&l)
            }
        }
    }

    /// Fold-scratch prediction: same provider/alternate scan as
    /// [`Tage::lookup_scratch`] but resolving straight to a direction,
    /// with no `Lookup` materialized.
    fn predict_scratch(&self, pc: Addr, regs: &[[u64; 3]; MAX_TAGGED_TABLES]) -> bool {
        let pc_bits = pc.get() >> 2;
        let plane1 = if self.cfg.tag_width == self.cfg.tagged_bits {
            0
        } else {
            1
        };
        let n = self.tables.len();
        let mut entries = [TaggedEntry::empty(); MAX_TAGGED_TABLES];
        let mut tags = [0u16; MAX_TAGGED_TABLES];
        for t in 0..n {
            let idx =
                ((pc_bits ^ (pc_bits >> (self.cfg.tagged_bits as u64 + t as u64)) ^ regs[t][0])
                    & self.tables[t].index_mask) as usize;
            entries[t] = self.tables[t].entries[idx];
            tags[t] = ((pc_bits ^ regs[t][plane1] ^ (regs[t][2] << 1)) as u16) & self.tag_mask;
        }
        let mut provider: Option<TaggedEntry> = None;
        let mut alt: Option<bool> = None;
        for t in (0..n).rev() {
            if entries[t].valid() && entries[t].tag() == tags[t] {
                if provider.is_none() {
                    provider = Some(entries[t]);
                } else {
                    alt = Some(entries[t].ctr() >= 0);
                    break;
                }
            }
        }
        match provider {
            Some(e) => {
                let weak = e.ctr() == 0 || e.ctr() == -1;
                if weak && self.use_alt >= 8 {
                    alt.unwrap_or_else(|| self.bimodal_pred(pc_bits))
                } else {
                    e.ctr() >= 0
                }
            }
            None => self.bimodal_pred(pc_bits),
        }
    }

    #[inline]
    fn bimodal_pred(&self, pc_bits: u64) -> bool {
        self.bimodal[(pc_bits & ((1 << self.cfg.base_bits) - 1)) as usize] >= 2
    }

    /// Advances the speculative history with a predicted outcome.
    pub fn push_spec(&mut self, taken: bool) {
        if let Some(f) = self.fold.as_deref_mut() {
            push_folds(&mut f.spec, &f.meta, self.spec_hist, taken);
        }
        self.spec_hist = (self.spec_hist << 1) | taken as u128;
    }

    /// Repairs the speculative history from retired state after a
    /// pipeline redirect.
    pub fn redirect(&mut self) {
        if let Some(f) = self.fold.as_deref_mut() {
            f.spec = f.retired;
        }
        self.spec_hist = self.retired_hist;
    }

    /// The speculative history value a prediction at this moment uses.
    /// Carried alongside the predicted branch so its retirement update
    /// trains exactly the entries the prediction consulted.
    pub fn spec_snapshot(&self) -> u128 {
        self.spec_hist
    }

    /// Retires a conditional branch: updates tables with the actual
    /// outcome and advances the retired history. Returns the prediction
    /// the retired-history lookup produced (used by callers for
    /// training-time bookkeeping).
    pub fn retire(&mut self, pc: Addr, taken: bool) -> bool {
        self.retire_with(pc, taken, self.retired_hist)
    }

    /// Retires a conditional branch whose prediction was made under the
    /// history snapshot `hist` (see [`Tage::spec_snapshot`]): the table
    /// update indexes with that same history, keeping training and
    /// prediction coherent in a decoupled front end.
    pub fn retire_with(&mut self, pc: Addr, taken: bool, hist: u128) -> bool {
        self.retire_with_delta(pc, taken, hist, None)
    }

    /// The retired-history snapshot a prediction-free retirement trains
    /// under — the key callers pass to [`Tage::retire_shared`] for the
    /// [`Tage::retire`] case.
    pub fn retired_snapshot(&self) -> u128 {
        self.retired_hist
    }

    fn retire_with_delta(
        &mut self,
        pc: Addr,
        taken: bool,
        hist: u128,
        mut delta: Option<&mut RetireDelta>,
    ) -> bool {
        // Take the fold state out so its registers can be read while
        // `update` mutates the tables. The retired register set is only
        // valid for `hist == retired_hist` (the common case: in-order
        // retirement trains under the retired history, and decoupled
        // snapshots match it on the correct path); any other snapshot
        // falls back to folding from scratch.
        let fold = self.fold.take();
        let scratch = match fold.as_deref() {
            Some(f) if hist == self.retired_hist => Some(&f.retired),
            _ => None,
        };
        let lookup = self.lookup(pc, hist, scratch);
        let predicted = self.resolve(&lookup);
        self.update(
            pc,
            taken,
            &lookup,
            predicted,
            hist,
            scratch,
            delta.as_deref_mut(),
        );
        if let Some(mut f) = fold {
            push_folds(&mut f.retired, &f.meta, self.retired_hist, taken);
            self.fold = Some(f);
        }
        self.retired_hist = (self.retired_hist << 1) | taken as u128;
        if let Some(d) = delta {
            d.pc = pc;
            d.taken = taken;
            d.hist = hist;
            d.predicted = predicted;
            d.use_alt = self.use_alt;
            d.lfsr = self.lfsr;
        }
        predicted
    }

    /// Replays a recorded retirement: stores the delta's final values
    /// instead of recomputing the lookup and allocation draw. The fold
    /// registers advance locally — their push depends only on this
    /// predictor's own retired history, which matches the recorder's.
    /// Valid only when this predictor's retire-side state equals the
    /// recording predictor's at recording time — the caller
    /// ([`Tage::retire_shared`]) guarantees it inductively by verifying
    /// every delta's input key.
    fn apply_delta(&mut self, d: &RetireDelta) -> bool {
        self.updates += 1;
        if d.u_reset {
            for table in &mut self.tables {
                for e in &mut table.entries {
                    e.set_u(e.u() >> 1);
                }
            }
        }
        for &(t, idx, bits) in &d.writes[..d.n_writes as usize] {
            self.tables[t as usize].entries[idx as usize] = TaggedEntry(bits);
        }
        if let Some((bi, v)) = d.bimodal {
            self.bimodal[bi as usize] = v;
        }
        self.use_alt = d.use_alt;
        self.lfsr = d.lfsr;
        if let Some(f) = self.fold.as_deref_mut() {
            push_folds(&mut f.retired, &f.meta, self.retired_hist, d.taken);
        }
        self.retired_hist = (self.retired_hist << 1) | d.taken as u128;
        d.predicted
    }

    /// Retirement through a [`TageShareCursor`]: the first group member
    /// to reach a given retirement computes the update and records the
    /// writes; the rest replay them. Every delta carries its full input
    /// key `(pc, taken, hist)` — since a TAGE retirement is a pure
    /// function of that key and the retire-side state, and all members
    /// start identical, matching keys keep member states bit-identical
    /// by induction. On the first mismatch the member falls back to
    /// computing locally and permanently leaves the share, so sharing
    /// can never corrupt a cell — only stop helping it.
    pub fn retire_shared(
        &mut self,
        pc: Addr,
        taken: bool,
        hist: u128,
        cur: &mut TageShareCursor,
    ) -> bool {
        if !cur.active {
            return self.retire_with(pc, taken, hist);
        }
        let seq = cur.seq;
        let mut inner = cur.inner.borrow_mut();
        // A synced cursor can sit past an empty log: the group's warm
        // retirements were computed outside the share (by a warm leader
        // without a cursor) and the members were all repositioned past
        // them. Re-anchor the log at the first post-sync retirement —
        // but only once every member is at or past it, so nobody gets
        // stranded behind the new base.
        if inner.deltas.is_empty() && seq > inner.base && inner.pos.iter().all(|&p| p >= seq) {
            inner.base = seq;
        }
        let off = match seq.checked_sub(inner.base) {
            Some(off) if (off as usize) <= inner.deltas.len() => off as usize,
            // Behind a pruned log, or ahead of it with recordings
            // missing: this cursor lost sync with its group. Leave the
            // share and compute locally — sharing only ever degrades to
            // the serial computation, never to a wrong one.
            _ => {
                inner.pos[cur.id] = u64::MAX;
                inner.prune();
                drop(inner);
                cur.active = false;
                return self.retire_with(pc, taken, hist);
            }
        };
        if off < inner.deltas.len() {
            let d = &inner.deltas[off];
            if d.pc == pc && d.taken == taken && d.hist == hist {
                // An overflowed delta's write list is incomplete: the
                // key still matched, so compute this one locally — the
                // same pure function of the same inputs — and stay in
                // the share.
                let predicted = if d.overflow {
                    self.retire_with(pc, taken, hist)
                } else {
                    self.apply_delta(d)
                };
                cur.seq += 1;
                inner.pos[cur.id] = cur.seq;
                inner.maybe_prune();
                predicted
            } else {
                inner.pos[cur.id] = u64::MAX;
                inner.prune();
                drop(inner);
                cur.active = false;
                self.retire_with(pc, taken, hist)
            }
        } else {
            // `off == deltas.len()` by the guard above: this member is
            // the first to reach the retirement — compute and record.
            drop(inner);
            let mut d = RetireDelta::default();
            let predicted = self.retire_with_delta(pc, taken, hist, Some(&mut d));
            let mut inner = cur.inner.borrow_mut();
            inner.deltas.push_back(d);
            cur.seq += 1;
            inner.pos[cur.id] = cur.seq;
            inner.maybe_prune();
            predicted
        }
    }

    /// Approximate storage use in bits (see `TageConfig::storage_bits`).
    pub fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }

    /// Final direction choice: newly-allocated (weak) providers defer
    /// to the alternate prediction while the use-alt counter says
    /// alternates have been doing better.
    fn resolve(&self, l: &Lookup) -> bool {
        if l.provider.is_some() && l.provider_weak && self.use_alt >= 8 {
            l.alt_pred
        } else {
            l.provider_pred
        }
    }

    fn lookup(
        &self,
        pc: Addr,
        hist: u128,
        scratch: Option<&[[u64; 3]; MAX_TAGGED_TABLES]>,
    ) -> Lookup {
        if let Some(regs) = scratch {
            return self.lookup_scratch(pc, regs);
        }
        let pc_bits = pc.get() >> 2;
        let bimodal_index = (pc_bits & ((1 << self.cfg.base_bits) - 1)) as usize;
        let bimodal_pred = self.bimodal[bimodal_index] >= 2;

        let mut indices = [0u16; MAX_TAGGED_TABLES];
        let mut provider = None;
        let mut provider_index = 0;
        let mut alt: Option<bool> = None;
        let same_width = self.cfg.tag_width == self.cfg.tagged_bits;
        // Scan longest history first. The history is masked and folded
        // once per table (the index fold doubles as the first tag fold
        // in the default geometry); tags are only folded for valid
        // entries, exactly as the tag comparison needs them.
        for t in (0..self.tables.len()).rev() {
            let table = &self.tables[t];
            let h = MaskedHist::new(hist, table.hist_len);
            let f_idx = h.fold(self.cfg.tagged_bits);
            let idx = ((pc_bits ^ (pc_bits >> (self.cfg.tagged_bits as u64 + t as u64)) ^ f_idx)
                & table.index_mask) as usize;
            indices[t] = idx as u16;
            let entry = table.entries[idx];
            if entry.valid() {
                let f1 = if same_width {
                    f_idx
                } else {
                    h.fold(self.cfg.tag_width)
                };
                let f2 = h.fold(self.cfg.tag_width.saturating_sub(1)) << 1;
                let tag = ((pc_bits ^ f1 ^ f2) as u16) & self.tag_mask;
                if entry.tag() == tag {
                    if provider.is_none() {
                        provider = Some(t);
                        provider_index = idx;
                    } else {
                        alt = Some(entry.ctr() >= 0);
                        break;
                    }
                }
            }
        }
        self.finish_lookup(
            bimodal_index,
            bimodal_pred,
            provider,
            provider_index,
            alt,
            indices,
        )
    }

    /// Fold-scratch fast path of [`Tage::lookup`]: every fold is a
    /// register read, so all table indices, tags, and entry loads are
    /// computed up front with no cross-table dependencies (the serial
    /// scan's load→compare→branch chain is what dominates lookup cost),
    /// then a compare-only scan picks provider and alternate. Produces
    /// bit-identical lookups: the only difference from the classic scan
    /// is that `indices` below the early break are filled with their
    /// true values instead of staying zero, and the update path never
    /// reads those slots (allocation only touches tables above the
    /// provider).
    fn lookup_scratch(&self, pc: Addr, regs: &[[u64; 3]; MAX_TAGGED_TABLES]) -> Lookup {
        let pc_bits = pc.get() >> 2;
        let bimodal_index = (pc_bits & ((1 << self.cfg.base_bits) - 1)) as usize;
        let bimodal_pred = self.bimodal[bimodal_index] >= 2;

        // Pushes skip plane 1 when the widths agree (it would always
        // mirror plane 0), so read plane 0 in its place.
        let plane1 = if self.cfg.tag_width == self.cfg.tagged_bits {
            0
        } else {
            1
        };
        let n = self.tables.len();
        let mut indices = [0u16; MAX_TAGGED_TABLES];
        let mut entries = [TaggedEntry::empty(); MAX_TAGGED_TABLES];
        let mut tags = [0u16; MAX_TAGGED_TABLES];
        for t in 0..n {
            let idx =
                ((pc_bits ^ (pc_bits >> (self.cfg.tagged_bits as u64 + t as u64)) ^ regs[t][0])
                    & self.tables[t].index_mask) as usize;
            indices[t] = idx as u16;
            entries[t] = self.tables[t].entries[idx];
            tags[t] = ((pc_bits ^ regs[t][plane1] ^ (regs[t][2] << 1)) as u16) & self.tag_mask;
        }

        let mut provider = None;
        let mut provider_index = 0;
        let mut alt: Option<bool> = None;
        for t in (0..n).rev() {
            if entries[t].valid() && entries[t].tag() == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                    provider_index = indices[t] as usize;
                } else {
                    alt = Some(entries[t].ctr() >= 0);
                    break;
                }
            }
        }
        self.finish_lookup(
            bimodal_index,
            bimodal_pred,
            provider,
            provider_index,
            alt,
            indices,
        )
    }

    fn finish_lookup(
        &self,
        bimodal_index: usize,
        bimodal_pred: bool,
        provider: Option<usize>,
        provider_index: usize,
        alt: Option<bool>,
        indices: [u16; MAX_TAGGED_TABLES],
    ) -> Lookup {
        let alt_pred = alt.unwrap_or(bimodal_pred);
        match provider {
            Some(t) => {
                let e = self.tables[t].entries[provider_index];
                Lookup {
                    provider: Some(t),
                    provider_index,
                    provider_pred: e.ctr() >= 0,
                    provider_weak: e.ctr() == 0 || e.ctr() == -1,
                    alt_pred,
                    bimodal_index,
                    indices,
                }
            }
            None => Lookup {
                provider: None,
                provider_index: 0,
                provider_pred: bimodal_pred,
                provider_weak: false,
                alt_pred: bimodal_pred,
                bimodal_index,
                indices,
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn update(
        &mut self,
        pc: Addr,
        taken: bool,
        l: &Lookup,
        final_pred: bool,
        hist: u128,
        scratch: Option<&[[u64; 3]; MAX_TAGGED_TABLES]>,
        mut delta: Option<&mut RetireDelta>,
    ) {
        self.updates += 1;
        if self.updates.is_multiple_of(U_RESET_PERIOD) {
            for table in &mut self.tables {
                for e in &mut table.entries {
                    e.set_u(e.u() >> 1);
                }
            }
            if let Some(d) = delta.as_deref_mut() {
                d.u_reset = true;
            }
        }

        match l.provider {
            Some(t) => {
                // Track whether weak providers beat their alternates.
                if l.provider_weak && l.provider_pred != l.alt_pred {
                    if l.provider_pred == taken {
                        self.use_alt = self.use_alt.saturating_sub(1);
                    } else if self.use_alt < 15 {
                        self.use_alt += 1;
                    }
                }
                let entry = &mut self.tables[t].entries[l.provider_index];
                if l.provider_pred != l.alt_pred {
                    if l.provider_pred == taken {
                        entry.set_u((entry.u() + 1).min(U_MAX));
                    } else {
                        entry.set_u(entry.u().saturating_sub(1));
                    }
                }
                entry.set_ctr(bump(entry.ctr(), taken));
                let bits = entry.0;
                if let Some(d) = delta.as_deref_mut() {
                    d.push_write(t, l.provider_index, bits);
                }
                // Also train the bimodal when the provider is weak, so
                // the base stays a usable fallback.
                if l.provider_weak {
                    self.bump_bimodal(l.bimodal_index, taken);
                    if let Some(d) = delta.as_deref_mut() {
                        d.bimodal = Some((l.bimodal_index as u32, self.bimodal[l.bimodal_index]));
                    }
                }
            }
            None => {
                self.bump_bimodal(l.bimodal_index, taken);
                if let Some(d) = delta.as_deref_mut() {
                    d.bimodal = Some((l.bimodal_index as u32, self.bimodal[l.bimodal_index]));
                }
            }
        }

        // Allocate a longer-history entry on a misprediction. Table
        // indices come from the lookup's cache (the allocation range —
        // tables above the provider — is always populated); only the
        // picked table's tag is folded fresh.
        let provider_rank = l.provider.map_or(0, |t| t + 1);
        if final_pred != taken && provider_rank < self.tables.len() {
            let start = l.provider.map_or(0, |t| t + 1);
            let mut candidates = [0usize; MAX_TAGGED_TABLES];
            let mut found = 0usize;
            for t in start..self.tables.len() {
                if self.tables[t].entries[l.indices[t] as usize].u() == 0 {
                    candidates[found] = t;
                    found += 1;
                }
            }
            if found == 0 {
                for t in start..self.tables.len() {
                    let e = &mut self.tables[t].entries[l.indices[t] as usize];
                    e.set_u(e.u().saturating_sub(1));
                    let bits = e.0;
                    if let Some(d) = delta.as_deref_mut() {
                        d.push_write(t, l.indices[t] as usize, bits);
                    }
                }
            } else {
                // Prefer the shortest candidate with probability 2/3,
                // otherwise pick pseudo-randomly among the rest.
                let pick = if found == 1 || self.lfsr_bits(2) != 0 {
                    candidates[0]
                } else {
                    candidates[1 + self.lfsr_bits(8) as usize % (found - 1)]
                };
                let tag = self.tag(pick, pc.get() >> 2, hist, scratch);
                let e = TaggedEntry::new(true, tag, if taken { 0 } else { -1 }, 0);
                self.tables[pick].entries[l.indices[pick] as usize] = e;
                if let Some(d) = delta {
                    d.push_write(pick, l.indices[pick] as usize, e.0);
                }
            }
        }
    }

    fn bump_bimodal(&mut self, index: usize, taken: bool) {
        let c = &mut self.bimodal[index];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Tag of `pc` in table `t` under `hist` — the allocation path's
    /// one-table fold (the lookup folds tags inline, sharing the index
    /// fold).
    fn tag(
        &self,
        t: usize,
        pc_bits: u64,
        hist: u128,
        scratch: Option<&[[u64; 3]; MAX_TAGGED_TABLES]>,
    ) -> u16 {
        let (f1, f2) = match scratch {
            // Same-width pushes keep only plane 0 (see `push_folds`).
            Some(regs) => {
                let plane1 = if self.cfg.tag_width == self.cfg.tagged_bits {
                    0
                } else {
                    1
                };
                (regs[t][plane1], regs[t][2] << 1)
            }
            None => {
                let h = MaskedHist::new(hist, self.tables[t].hist_len);
                (
                    h.fold(self.cfg.tag_width),
                    h.fold(self.cfg.tag_width.saturating_sub(1)) << 1,
                )
            }
        };
        ((pc_bits ^ f1 ^ f2) as u16) & self.tag_mask
    }

    fn lfsr_bits(&mut self, bits: u32) -> u32 {
        let mut out = 0;
        for _ in 0..bits {
            let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
            self.lfsr = (self.lfsr >> 1) | (bit << 15);
            out = (out << 1) | bit;
        }
        out
    }
}

/// Everything one [`Tage::retire_with`] call writes, recorded by the
/// first batch-group member to retire a branch and replayed by the
/// rest (see [`Tage::retire_shared`]). The input key `(pc, taken,
/// hist)` rides along so a replaying member can verify the recording
/// is the exact call it was about to make.
/// Inline table-write slots per delta. The common retirement writes at
/// most two tagged entries (provider training + one allocation); the
/// rare failed-allocation decrement sweep touches up to one entry per
/// table and overflows — replayers then recompute that retirement
/// locally. Kept small on purpose: the log streams through the cache
/// between staggered cells, and every byte of delta evicts a byte of
/// the predictor tables the batch engine is trying to keep resident.
const MAX_SHARE_WRITES: usize = 4;

#[derive(Clone, Debug)]
struct RetireDelta {
    pc: Addr,
    taken: bool,
    hist: u128,
    /// `retire_with`'s return value.
    predicted: bool,
    /// A periodic useful-counter halving fired during this update.
    u_reset: bool,
    /// The inline write slots ran out: `writes` is incomplete and the
    /// replayer computes the retirement locally instead.
    overflow: bool,
    use_alt: u8,
    lfsr: u32,
    n_writes: u8,
    /// `(table, index, packed entry)` — final values, applied in order.
    writes: [(u8, u16, u32); MAX_SHARE_WRITES],
    /// `(index, final value)` of the bimodal counter trained, if any.
    bimodal: Option<(u32, u8)>,
}

impl Default for RetireDelta {
    fn default() -> Self {
        RetireDelta {
            pc: Addr::new(0),
            taken: false,
            hist: 0,
            predicted: false,
            u_reset: false,
            overflow: false,
            use_alt: 0,
            lfsr: 0,
            n_writes: 0,
            writes: [(0, 0, 0); MAX_SHARE_WRITES],
            bimodal: None,
        }
    }
}

impl RetireDelta {
    #[inline]
    fn push_write(&mut self, table: usize, index: usize, bits: u32) {
        if (self.n_writes as usize) < MAX_SHARE_WRITES {
            self.writes[self.n_writes as usize] = (table as u8, index as u16, bits);
            self.n_writes += 1;
        } else {
            self.overflow = true;
        }
    }
}

/// Delta log entries consumed between prunes.
const SHARE_PRUNE_PERIOD: u32 = 8_192;

struct ShareInner {
    /// `deltas[0]` is retirement sequence number `base`.
    deltas: std::collections::VecDeque<RetireDelta>,
    base: u64,
    /// Per-member next-unconsumed sequence number (`u64::MAX` =
    /// released or opted out).
    pos: Vec<u64>,
    since_prune: u32,
}

impl ShareInner {
    #[inline]
    fn maybe_prune(&mut self) {
        self.since_prune += 1;
        if self.since_prune >= SHARE_PRUNE_PERIOD {
            self.prune();
        }
    }

    fn prune(&mut self) {
        self.since_prune = 0;
        let min = self.pos.iter().copied().min().unwrap_or(self.base);
        while self.base < min && !self.deltas.is_empty() {
            self.deltas.pop_front();
            self.base += 1;
        }
    }
}

/// A retirement-delta log shared by batch cells whose TAGE retire
/// streams are identical — cells simulating the same trace with the
/// same predictor configuration. One member computes each retirement;
/// the rest replay the recorded writes (see [`Tage::retire_shared`]).
pub struct TageShare {
    inner: std::rc::Rc<std::cell::RefCell<ShareInner>>,
}

impl TageShare {
    /// An empty log with no members.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        TageShare {
            inner: std::rc::Rc::new(std::cell::RefCell::new(ShareInner {
                deltas: std::collections::VecDeque::with_capacity(1024),
                base: 0,
                pos: Vec::new(),
                since_prune: 0,
            })),
        }
    }

    /// Registers a member at the start of the retirement stream.
    pub fn cursor(&self) -> TageShareCursor {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.base, 0,
            "members must register before retirement starts"
        );
        inner.pos.push(0);
        TageShareCursor {
            inner: std::rc::Rc::clone(&self.inner),
            id: inner.pos.len() - 1,
            seq: 0,
            active: true,
        }
    }
}

/// One member's position in a [`TageShare`] log.
pub struct TageShareCursor {
    inner: std::rc::Rc<std::cell::RefCell<ShareInner>>,
    id: usize,
    /// This member's next retirement sequence number.
    seq: u64,
    /// Cleared on the first key mismatch: the member computes locally
    /// from then on (its stream diverged from the group's).
    active: bool,
}

impl TageShareCursor {
    /// This member's next retirement sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Repositions the member at `seq` — used after a shared warm
    /// installs the leader's predictor state, which stands at the
    /// leader's retirement count.
    pub fn sync_to(&mut self, seq: u64) {
        self.seq = seq;
        let mut inner = self.inner.borrow_mut();
        inner.pos[self.id] = seq;
        inner.prune();
    }

    /// Marks the member finished so the log no longer retains deltas
    /// for it.
    pub fn release(&mut self) {
        self.active = false;
        let mut inner = self.inner.borrow_mut();
        inner.pos[self.id] = u64::MAX;
        inner.prune();
    }
}

/// Geometric history-length series from `min_history` to `max_history`.
fn geometric_length(cfg: &TageConfig, t: u32) -> u32 {
    if cfg.tagged_tables == 1 {
        return cfg.min_history.min(127);
    }
    let ratio = cfg.max_history as f64 / cfg.min_history as f64;
    let exp = t as f64 / (cfg.tagged_tables - 1) as f64;
    ((cfg.min_history as f64 * ratio.powf(exp)).round() as u32).min(127)
}

/// The low `len` bits of a history register, pre-masked and pre-split
/// so folding runs in 64-bit arithmetic wherever the length allows —
/// `u128` shifts cost several instructions each, and folding is the
/// single hottest operation in the simulator (3 folds x 6 tables per
/// TAGE lookup, 2+ lookups per conditional branch).
#[derive(Clone, Copy)]
enum MaskedHist {
    /// History of 64 bits or fewer: pure `u64` folding.
    Small(u64, u32),
    /// Longer history: folded with `u128` chunk extraction.
    Large(u128, u32),
}

impl MaskedHist {
    #[inline]
    fn new(hist: u128, len: u32) -> Self {
        if len <= 64 {
            let mask = if len == 64 {
                u64::MAX
            } else {
                (1u64 << len) - 1
            };
            MaskedHist::Small(hist as u64 & mask, len)
        } else if len >= 128 {
            MaskedHist::Large(hist, 128)
        } else {
            MaskedHist::Large(hist & ((1u128 << len) - 1), len)
        }
    }

    /// XOR-folds the masked history into `bits` bits. Bit-for-bit
    /// identical to the chunked shift loop of the pre-refactor
    /// implementation (kept as `fold_reference` for the parity tests):
    /// every `bits`-wide chunk position over the masked length is
    /// XORed, and all-zero high chunks contribute nothing, exactly as
    /// the original `while h != 0` termination. Extracting each chunk
    /// from the *original* value breaks the original loop's serial
    /// shift dependency — the chunks fold in instruction-level
    /// parallel, which matters enormously for a 127-bit history folded
    /// three times per table per prediction.
    #[inline]
    fn fold(self, bits: u32) -> u64 {
        if bits == 0 {
            return 0;
        }
        let mask = (1u64 << bits) - 1;
        let mut acc = 0u64;
        match self {
            MaskedHist::Small(h, len) => {
                let mut sh = 0;
                while sh < len {
                    acc ^= (h >> sh) & mask;
                    sh += bits;
                }
            }
            MaskedHist::Large(h, len) => {
                let mut sh = 0;
                while sh < len {
                    acc ^= (h >> sh) as u64 & mask;
                    sh += bits;
                }
            }
        }
        acc
    }
}

/// The original from-scratch fold, kept as the semantic reference the
/// optimized [`MaskedHist::fold`] is checked against.
#[cfg(test)]
fn fold_reference(hist: u128, len: u32, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    let mut h = if len >= 128 {
        hist
    } else {
        hist & ((1u128 << len) - 1)
    };
    let mask = (1u64 << bits) - 1;
    let mut acc = 0u64;
    while h != 0 {
        acc ^= (h as u64) & mask;
        h >>= bits;
    }
    acc
}

fn bump(ctr: i8, taken: bool) -> i8 {
    if taken {
        (ctr + 1).min(CTR_MAX)
    } else {
        (ctr - 1).max(CTR_MIN)
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    fn tage() -> Tage {
        Tage::new(TageConfig::default())
    }

    /// A faithful unpacked re-implementation of the predictor —
    /// struct-of-fields entries, from-scratch reference folds, no
    /// incremental scratch registers — kept as the semantic baseline
    /// the packed, fold-cached `Tage` is driven against.
    mod reference {
        use super::*;

        #[derive(Clone, Copy, Default)]
        struct Entry {
            valid: bool,
            tag: u16,
            ctr: i8,
            u: u8,
        }

        struct Table {
            entries: Vec<Entry>,
            hist_len: u32,
            index_mask: u64,
        }

        struct Lookup {
            provider: Option<usize>,
            provider_index: usize,
            provider_pred: bool,
            provider_weak: bool,
            alt_pred: bool,
            bimodal_index: usize,
            indices: Vec<usize>,
        }

        pub struct RefTage {
            cfg: TageConfig,
            bimodal: Vec<u8>,
            tables: Vec<Table>,
            spec_hist: u128,
            pub retired_hist: u128,
            use_alt: u8,
            lfsr: u32,
            updates: u64,
            tag_mask: u16,
        }

        impl RefTage {
            pub fn new(cfg: TageConfig) -> Self {
                let tables = (0..cfg.tagged_tables)
                    .map(|t| Table {
                        entries: vec![Entry::default(); 1 << cfg.tagged_bits],
                        hist_len: geometric_length(&cfg, t),
                        index_mask: (1u64 << cfg.tagged_bits) - 1,
                    })
                    .collect();
                RefTage {
                    bimodal: vec![1; 1 << cfg.base_bits],
                    tables,
                    spec_hist: 0,
                    retired_hist: 0,
                    use_alt: 8,
                    lfsr: 0xACE1,
                    updates: 0,
                    tag_mask: ((1u32 << cfg.tag_width) - 1) as u16,
                    cfg,
                }
            }

            pub fn predict(&self, pc: Addr) -> bool {
                let l = self.lookup(pc, self.spec_hist);
                self.resolve(&l)
            }

            pub fn push_spec(&mut self, taken: bool) {
                self.spec_hist = (self.spec_hist << 1) | taken as u128;
            }

            pub fn redirect(&mut self) {
                self.spec_hist = self.retired_hist;
            }

            pub fn spec_snapshot(&self) -> u128 {
                self.spec_hist
            }

            pub fn retire_with(&mut self, pc: Addr, taken: bool, hist: u128) -> bool {
                let l = self.lookup(pc, hist);
                let predicted = self.resolve(&l);
                self.update(pc, taken, &l, predicted, hist);
                self.retired_hist = (self.retired_hist << 1) | taken as u128;
                predicted
            }

            fn resolve(&self, l: &Lookup) -> bool {
                if l.provider.is_some() && l.provider_weak && self.use_alt >= 8 {
                    l.alt_pred
                } else {
                    l.provider_pred
                }
            }

            fn tag(&self, t: usize, pc_bits: u64, hist: u128) -> u16 {
                let len = self.tables[t].hist_len;
                let f1 = fold_reference(hist, len, self.cfg.tag_width);
                let f2 = fold_reference(hist, len, self.cfg.tag_width.saturating_sub(1)) << 1;
                ((pc_bits ^ f1 ^ f2) as u16) & self.tag_mask
            }

            fn lookup(&self, pc: Addr, hist: u128) -> Lookup {
                let pc_bits = pc.get() >> 2;
                let bimodal_index = (pc_bits & ((1 << self.cfg.base_bits) - 1)) as usize;
                let bimodal_pred = self.bimodal[bimodal_index] >= 2;

                let mut indices = vec![0usize; self.tables.len()];
                let mut provider = None;
                let mut provider_index = 0;
                let mut alt: Option<bool> = None;
                for t in (0..self.tables.len()).rev() {
                    let table = &self.tables[t];
                    let f_idx = fold_reference(hist, table.hist_len, self.cfg.tagged_bits);
                    let idx =
                        ((pc_bits ^ (pc_bits >> (self.cfg.tagged_bits as u64 + t as u64)) ^ f_idx)
                            & table.index_mask) as usize;
                    indices[t] = idx;
                    let entry = table.entries[idx];
                    if entry.valid && entry.tag == self.tag(t, pc_bits, hist) {
                        if provider.is_none() {
                            provider = Some(t);
                            provider_index = idx;
                        } else {
                            alt = Some(entry.ctr >= 0);
                            break;
                        }
                    }
                }
                let alt_pred = alt.unwrap_or(bimodal_pred);
                match provider {
                    Some(t) => {
                        let e = self.tables[t].entries[provider_index];
                        Lookup {
                            provider: Some(t),
                            provider_index,
                            provider_pred: e.ctr >= 0,
                            provider_weak: e.ctr == 0 || e.ctr == -1,
                            alt_pred,
                            bimodal_index,
                            indices,
                        }
                    }
                    None => Lookup {
                        provider: None,
                        provider_index: 0,
                        provider_pred: bimodal_pred,
                        provider_weak: false,
                        alt_pred: bimodal_pred,
                        bimodal_index,
                        indices,
                    },
                }
            }

            fn update(&mut self, pc: Addr, taken: bool, l: &Lookup, final_pred: bool, hist: u128) {
                self.updates += 1;
                if self.updates.is_multiple_of(U_RESET_PERIOD) {
                    for table in &mut self.tables {
                        for e in &mut table.entries {
                            e.u >>= 1;
                        }
                    }
                }
                match l.provider {
                    Some(t) => {
                        if l.provider_weak && l.provider_pred != l.alt_pred {
                            if l.provider_pred == taken {
                                self.use_alt = self.use_alt.saturating_sub(1);
                            } else if self.use_alt < 15 {
                                self.use_alt += 1;
                            }
                        }
                        let entry = &mut self.tables[t].entries[l.provider_index];
                        if l.provider_pred != l.alt_pred {
                            if l.provider_pred == taken {
                                entry.u = (entry.u + 1).min(U_MAX);
                            } else {
                                entry.u = entry.u.saturating_sub(1);
                            }
                        }
                        entry.ctr = bump(entry.ctr, taken);
                        if l.provider_weak {
                            self.bump_bimodal(l.bimodal_index, taken);
                        }
                    }
                    None => self.bump_bimodal(l.bimodal_index, taken),
                }
                let provider_rank = l.provider.map_or(0, |t| t + 1);
                if final_pred != taken && provider_rank < self.tables.len() {
                    let start = l.provider.map_or(0, |t| t + 1);
                    let mut candidates = Vec::new();
                    for t in start..self.tables.len() {
                        if self.tables[t].entries[l.indices[t]].u == 0 {
                            candidates.push(t);
                        }
                    }
                    if candidates.is_empty() {
                        for t in start..self.tables.len() {
                            let e = &mut self.tables[t].entries[l.indices[t]];
                            e.u = e.u.saturating_sub(1);
                        }
                    } else {
                        let pick = if candidates.len() == 1 || self.lfsr_bits(2) != 0 {
                            candidates[0]
                        } else {
                            candidates[1 + self.lfsr_bits(8) as usize % (candidates.len() - 1)]
                        };
                        let tag = self.tag(pick, pc.get() >> 2, hist);
                        self.tables[pick].entries[l.indices[pick]] = Entry {
                            valid: true,
                            tag,
                            ctr: if taken { 0 } else { -1 },
                            u: 0,
                        };
                    }
                }
            }

            fn bump_bimodal(&mut self, index: usize, taken: bool) {
                let c = &mut self.bimodal[index];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }

            fn lfsr_bits(&mut self, bits: u32) -> u32 {
                let mut out = 0;
                for _ in 0..bits {
                    let bit =
                        (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
                    self.lfsr = (self.lfsr >> 1) | (bit << 15);
                    out = (out << 1) | bit;
                }
                out
            }
        }
    }

    #[test]
    fn learns_strong_bias() {
        let mut t = tage();
        let pc = Addr::new(0x4000);
        for _ in 0..32 {
            t.retire(pc, true);
        }
        assert!(t.predict(pc));
        let pc2 = Addr::new(0x8000);
        for _ in 0..32 {
            t.retire(pc2, false);
        }
        assert!(!t.predict(pc2));
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // A strict alternation is unlearnable by bimodal but trivial
        // with one bit of history.
        let mut t = tage();
        let pc = Addr::new(0x1230);
        let mut outcome = false;
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            let pred = t.predict(pc);
            if i > total / 2 && pred == outcome {
                correct += 1;
            }
            t.retire(pc, outcome);
            t.push_spec(outcome); // keep spec history in sync
            outcome = !outcome;
        }
        let acc = correct as f64 / (total / 2 - 1) as f64;
        assert!(acc > 0.9, "alternation accuracy {acc}");
    }

    #[test]
    fn learns_loop_exit_pattern() {
        // taken x7 then not-taken, repeated: a history predictor should
        // reach high accuracy; bimodal alone would cap at 7/8.
        let mut t = tage();
        let pc = Addr::new(0x5550);
        let mut correct = 0;
        let mut total = 0;
        for iter in 0..4000 {
            let outcome = (iter % 8) != 7;
            let pred = t.predict(pc);
            if iter > 2000 {
                total += 1;
                if pred == outcome {
                    correct += 1;
                }
            }
            t.retire(pc, outcome);
            t.push_spec(outcome);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.93, "loop-exit accuracy {acc}");
    }

    #[test]
    fn redirect_repairs_speculative_history() {
        let mut t = tage();
        // Diverge spec from retired, then repair.
        t.push_spec(true);
        t.push_spec(true);
        t.retire(Addr::new(0x10), false);
        assert_ne!(t.spec_hist, t.retired_hist);
        t.redirect();
        assert_eq!(t.spec_hist, t.retired_hist);
    }

    #[test]
    fn distinct_branches_do_not_destructively_alias() {
        let mut t = tage();
        // Many branches with opposite biases; overall accuracy must
        // stay high despite sharing tables.
        let mut correct = 0;
        let mut total = 0;
        for round in 0..300 {
            for i in 0..64u64 {
                let pc = Addr::new(0x1_0000 + i * 0x40);
                let outcome = i % 2 == 0;
                let pred = t.predict(pc);
                if round > 150 {
                    total += 1;
                    if pred == outcome {
                        correct += 1;
                    }
                }
                t.retire(pc, outcome);
                t.push_spec(outcome);
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "aliasing accuracy {acc}");
    }

    #[test]
    fn storage_within_budget() {
        let t = tage();
        assert!(t.storage_bits() <= 8 * 1024 * 8);
    }

    #[test]
    fn geometric_series_spans_min_to_max() {
        let cfg = TageConfig::default();
        assert_eq!(geometric_length(&cfg, 0), cfg.min_history);
        let last = geometric_length(&cfg, cfg.tagged_tables - 1);
        assert!(last >= 120, "longest history {last}");
    }

    #[test]
    fn fold_is_stable_and_bounded() {
        let h = 0xDEAD_BEEF_CAFE_BABE_u128;
        let fold = |h, len, bits| MaskedHist::new(h, len).fold(bits);
        let a = fold(h, 33, 9);
        assert_eq!(a, fold(h, 33, 9));
        assert!(a < 512);
        assert_ne!(
            fold(h, 33, 9),
            fold(h >> 1, 33, 9),
            "history changes the fold"
        );
        assert_eq!(fold(h, 0, 9), 0);
    }

    #[test]
    fn optimized_fold_matches_reference_on_edge_geometries() {
        // The split 64-bit fast path must be bit-for-bit the reference
        // fold at every boundary the geometry can hit: lengths at and
        // around the u64 split, chunk widths that do and don't divide
        // the length, and the zero-width tag fold.
        let hists = [
            0u128,
            1,
            u64::MAX as u128,
            (u64::MAX as u128) + 1,
            u128::MAX,
            0xDEAD_BEEF_CAFE_BABE_0123_4567_89AB_CDEF,
        ];
        for &h in &hists {
            for len in [0, 1, 5, 9, 10, 19, 36, 63, 64, 65, 68, 127, 128] {
                for bits in [0, 1, 8, 9, 11, 16] {
                    assert_eq!(
                        MaskedHist::new(h, len).fold(bits),
                        fold_reference(h, len, bits),
                        "fold mismatch at hist={h:#x} len={len} bits={bits}",
                    );
                }
            }
        }
    }

    fn splitmix(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn incremental_folds_track_from_scratch_folds() {
        // Push random bits through a register set and check every
        // register against a from-scratch fold of the history after
        // each push — the O(1) update must be exact at every length
        // boundary the geometry produces.
        let t = tage();
        let widths = [t.cfg.tagged_bits, t.cfg.tag_width, 0];
        let meta = FoldMeta::new(widths, &t.tables);
        let mut hist: u128 = 0;
        let mut regs = init_folds(&widths, &t.tables, hist);
        let mut next = splitmix(0xF01D);
        for _ in 0..4_000 {
            let bit = next() & 1 == 1;
            push_folds(&mut regs, &meta, hist, bit);
            hist = (hist << 1) | bit as u128;
            let fresh = init_folds(&widths, &t.tables, hist);
            for (t, (got, want)) in regs.iter().zip(fresh.iter()).enumerate() {
                assert_eq!(got[0], want[0], "table {t} plane 0");
                assert_eq!(got[2], want[2], "table {t} plane 2");
                if meta.same_width {
                    // Pushes skip plane 1 because it would mirror
                    // plane 0; check the invariant that justifies it.
                    assert_eq!(want[1], want[0], "table {t} same-width mirror");
                } else {
                    assert_eq!(got[1], want[1], "table {t} plane 1");
                }
            }
        }
    }

    #[test]
    fn fold_scratch_is_bit_identical_to_classic_folding() {
        // Drive two predictors — one with scratch enabled mid-stream,
        // one without — through the decoupled-front-end idiom: predict
        // under spec history, snapshot it, retire under the snapshot,
        // with periodic redirects repairing spec from retired. Every
        // prediction and every retire-time result must agree.
        let mut classic = tage();
        let mut scratch = tage();
        let mut next = splitmix(0xBEEF);
        let mut pending: Vec<(Addr, bool, u128)> = Vec::new();
        for step in 0..30_000u32 {
            if step == 5_000 {
                scratch.enable_fold_scratch();
            }
            let pc = Addr::new(0x1000 + (next() % 512) * 0x10);
            let taken = !next().is_multiple_of(3);
            assert_eq!(classic.predict(pc), scratch.predict(pc), "step {step}");
            pending.push((pc, taken, classic.spec_snapshot()));
            assert_eq!(classic.spec_snapshot(), scratch.spec_snapshot());
            classic.push_spec(taken);
            scratch.push_spec(taken);
            // Retire with a lag, as the pipeline does.
            if pending.len() > 4 {
                let (rpc, rtaken, snap) = pending.remove(0);
                assert_eq!(
                    classic.retire_with(rpc, rtaken, snap),
                    scratch.retire_with(rpc, rtaken, snap),
                    "retire at step {step}"
                );
            }
            if next().is_multiple_of(64) {
                // A redirect drops the in-flight window, retires the
                // oldest under a stale snapshot (exercising the
                // fallback), and repairs spec history.
                if let Some((rpc, rtaken, snap)) = pending.pop() {
                    assert_eq!(
                        classic.retire_with(rpc, rtaken, snap),
                        scratch.retire_with(rpc, rtaken, snap),
                    );
                }
                pending.clear();
                classic.redirect();
                scratch.redirect();
            }
        }
        assert_eq!(classic.retired_hist, scratch.retired_hist);
        assert_eq!(classic.spec_hist, scratch.spec_hist);
        for pc in (0..256u64).map(|i| Addr::new(0x2000 + i * 0x20)) {
            assert_eq!(classic.predict(pc), scratch.predict(pc));
        }
    }

    #[test]
    fn optimized_fold_matches_reference_on_random_inputs() {
        // Deterministic pseudo-random sweep (SplitMix64 stream) across
        // the whole input space — the fast path has no excuse to differ
        // anywhere.
        let mut s = 0x5407_u64;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for _ in 0..20_000 {
            let h = ((next() as u128) << 64) | next() as u128;
            let len = (next() % 130) as u32;
            let bits = (next() % 17) as u32;
            assert_eq!(
                MaskedHist::new(h, len).fold(bits),
                fold_reference(h, len, bits),
                "fold mismatch at hist={h:#x} len={len} bits={bits}",
            );
        }
    }

    #[test]
    fn packed_entry_is_four_bytes() {
        // The point of the packing: the unpacked field form padded to 6.
        assert_eq!(std::mem::size_of::<TaggedEntry>(), 4);
    }

    proptest! {
        /// Pack/unpack round trip over the full field domain.
        #[test]
        fn packed_entry_round_trips(
            valid in any::<bool>(),
            tag in 0u16..=u16::MAX,
            ctr in CTR_MIN..=CTR_MAX,
            u in 0u8..=U_MAX,
        ) {
            let e = TaggedEntry::new(valid, tag, ctr, u);
            prop_assert_eq!(e.valid(), valid);
            prop_assert_eq!(e.tag(), tag);
            prop_assert_eq!(e.ctr(), ctr);
            prop_assert_eq!(e.u(), u);
        }

        /// Field setters must leave every other packed field alone.
        #[test]
        fn packed_entry_setters_touch_only_their_field(
            valid in any::<bool>(),
            tag in 0u16..=u16::MAX,
            ctr in CTR_MIN..=CTR_MAX,
            u in 0u8..=U_MAX,
            ctr2 in CTR_MIN..=CTR_MAX,
            u2 in 0u8..=U_MAX,
        ) {
            let mut e = TaggedEntry::new(valid, tag, ctr, u);
            e.set_ctr(ctr2);
            e.set_u(u2);
            prop_assert_eq!(e.valid(), valid);
            prop_assert_eq!(e.tag(), tag);
            prop_assert_eq!(e.ctr(), ctr2);
            prop_assert_eq!(e.u(), u2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The packed predictor — fold scratch enabled mid-run, so the
        /// whole optimized stack is under test — must be bit-identical
        /// to the unpacked, from-scratch-folding reference across
        /// random (workload, seed) pairs. The "workload" here is the
        /// branch-stream shape: working-set size, taken bias, and the
        /// redirect/lag pattern of a decoupled front end.
        #[test]
        fn packed_tage_matches_unpacked_reference(
            seed in 1u64..1 << 48,
            pc_count in 16u64..512,
            bias in 2u64..6,
        ) {
            let mut packed = tage();
            let mut unpacked = reference::RefTage::new(TageConfig::default());
            let mut next = splitmix(seed);
            let mut pending: Vec<(Addr, bool, u128)> = Vec::new();
            for step in 0..8_000u32 {
                if step == 1_000 {
                    packed.enable_fold_scratch();
                }
                let pc = Addr::new(0x1000 + (next() % pc_count) * 0x10);
                let taken = !next().is_multiple_of(bias);
                prop_assert_eq!(packed.predict(pc), unpacked.predict(pc));
                prop_assert_eq!(packed.spec_snapshot(), unpacked.spec_snapshot());
                pending.push((pc, taken, packed.spec_snapshot()));
                packed.push_spec(taken);
                unpacked.push_spec(taken);
                // Retire with a lag, as the pipeline does.
                if pending.len() > 4 {
                    let (rpc, rtaken, snap) = pending.remove(0);
                    prop_assert_eq!(
                        packed.retire_with(rpc, rtaken, snap),
                        unpacked.retire_with(rpc, rtaken, snap)
                    );
                }
                if next().is_multiple_of(64) {
                    // Redirect: retire the newest under a stale snapshot
                    // (exercising the scratch fallback), drop the rest,
                    // repair spec history.
                    if let Some((rpc, rtaken, snap)) = pending.pop() {
                        prop_assert_eq!(
                            packed.retire_with(rpc, rtaken, snap),
                            unpacked.retire_with(rpc, rtaken, snap)
                        );
                    }
                    pending.clear();
                    packed.redirect();
                    unpacked.redirect();
                }
            }
            prop_assert_eq!(packed.retired_hist, unpacked.retired_hist);
            for pc in (0..pc_count).map(|i| Addr::new(0x9000 + i * 0x20)) {
                prop_assert_eq!(packed.predict(pc), unpacked.predict(pc));
            }
        }
    }
}
