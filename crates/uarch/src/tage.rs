//! TAGE conditional-branch direction predictor (Seznec & Michaud),
//! sized to Table 3's 8 KB budget.
//!
//! A bimodal base table backs six partially-tagged components indexed
//! with geometrically increasing global-history lengths. The predictor
//! keeps two history registers: a *speculative* one advanced by the
//! branch-prediction unit as it runs ahead, and a *retired* one advanced
//! at commit. On a pipeline redirect the speculative history is repaired
//! from the retired one — the standard recovery scheme. Table state is
//! only ever updated at retirement, with indices recomputed from retired
//! history (identical to the speculative indices on the correct path).

use fe_model::config::TageConfig;
use fe_model::Addr;

/// Saturating 3-bit signed counter range.
const CTR_MAX: i8 = 3;
const CTR_MIN: i8 = -4;
/// 2-bit useful counter ceiling.
const U_MAX: u8 = 3;
/// Updates between graceful useful-bit resets.
const U_RESET_PERIOD: u64 = 256 * 1024;
/// Upper bound on tagged components, so per-lookup index/tag caches can
/// live in fixed arrays instead of heap allocations (the predictor is
/// the hottest structure in the whole simulator).
const MAX_TAGGED_TABLES: usize = 16;

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    valid: bool,
    tag: u16,
    ctr: i8,
    u: u8,
}

#[derive(Clone, Debug)]
struct TaggedTable {
    entries: Vec<TaggedEntry>,
    hist_len: u32,
    index_mask: u64,
}

/// Where a prediction came from, carried to the update path — along
/// with the table indices the lookup already folded, so the update and
/// allocation paths never re-fold the history.
#[derive(Clone, Copy, Debug)]
struct Lookup {
    provider: Option<usize>,
    provider_index: usize,
    provider_pred: bool,
    provider_weak: bool,
    alt_pred: bool,
    bimodal_index: usize,
    /// Entry index per tagged table under the lookup's history. Valid
    /// for every table whose history is at least as long as the
    /// provider's — exactly the range the update's allocation path
    /// touches; the longest-first scan may stop before reaching the
    /// shorter tables.
    indices: [u32; MAX_TAGGED_TABLES],
}

/// Incrementally-maintained folded histories — the "fold scratch".
///
/// A lookup folds the masked history into three widths per tagged
/// table (index, tag, tag−1). Folding is XOR over `w`-wide chunks,
/// which is reduction of the history polynomial mod `x^w + 1` in
/// GF(2) — a linear map, so pushing one bit updates the fold in O(1):
///
/// ```text
/// fold' = rotl_w(fold) ^ inserted ^ (evicted << (len mod w))
/// ```
///
/// where `evicted` is bit `len−1` of the pre-shift history. One
/// register set tracks the speculative history, one the retired; a
/// redirect copies retired over speculative, mirroring the history
/// registers themselves. Derived state: rebuildable from the history
/// registers at any time (that is exactly what [`Tage::
/// enable_fold_scratch`] does), so it needs no serialization.
#[derive(Clone, Debug)]
struct FoldState {
    /// Push-invariant constants, precomputed once at enable time.
    meta: FoldMeta,
    /// Per tagged table, per width: fold of the spec-history mask.
    spec: [[u64; 3]; MAX_TAGGED_TABLES],
    /// Per tagged table, per width: fold of the retired-history mask.
    retired: [[u64; 3]; MAX_TAGGED_TABLES],
}

/// The push-invariant constants of a [`FoldState`]: the per-width
/// rotate masks and — critically — the `len mod w` evicted-bit
/// positions. The modulo is a hardware divide, and a push runs it
/// 3 × tables times for *every* retired branch (spec push at predict,
/// retired push at commit); hoisting it out of the loop is worth
/// several percent of whole-simulation wall clock.
#[derive(Clone, Debug)]
struct FoldMeta {
    /// The three fold widths: `[tagged_bits, tag_width, tag_width-1]`.
    widths: [u32; 3],
    /// `(1 << w) − 1` per width.
    masks: [u64; 3],
    /// Tagged-table count (fold registers beyond it stay zero).
    n_tables: usize,
    /// Per table: history length, hoisted out of the table structs so
    /// the push loop walks three flat arrays and nothing else.
    lens: [u32; MAX_TAGGED_TABLES],
    /// Per table, per width: `hist_len mod w`.
    evict_shift: [[u32; 3]; MAX_TAGGED_TABLES],
}

impl FoldMeta {
    fn new(widths: [u32; 3], tables: &[TaggedTable]) -> Self {
        let mut masks = [0u64; 3];
        for (m, &w) in masks.iter_mut().zip(widths.iter()) {
            if w > 0 {
                *m = (1u64 << w) - 1;
            }
        }
        let mut lens = [0u32; MAX_TAGGED_TABLES];
        let mut evict_shift = [[0u32; 3]; MAX_TAGGED_TABLES];
        for (t, table) in tables.iter().enumerate() {
            lens[t] = table.hist_len;
            for (s, &w) in evict_shift[t].iter_mut().zip(widths.iter()) {
                if w > 0 {
                    *s = table.hist_len % w;
                }
            }
        }
        FoldMeta {
            widths,
            masks,
            n_tables: tables.len(),
            lens,
            evict_shift,
        }
    }
}

/// Advances one register set for a history push of `bit`, where `hist`
/// is the register value *before* the shift.
#[inline]
fn push_folds(regs: &mut [[u64; 3]; MAX_TAGGED_TABLES], meta: &FoldMeta, hist: u128, bit: bool) {
    let bit = bit as u64;
    for ((regs_t, &len), shifts) in regs
        .iter_mut()
        .zip(meta.lens.iter())
        .zip(meta.evict_shift.iter())
        .take(meta.n_tables)
    {
        if len == 0 {
            continue;
        }
        let evicted = ((hist >> (len - 1)) & 1) as u64;
        for ((reg, &shift), (&w, &mask)) in regs_t
            .iter_mut()
            .zip(shifts.iter())
            .zip(meta.widths.iter().zip(meta.masks.iter()))
        {
            if w == 0 {
                continue;
            }
            let rot = ((*reg << 1) | (*reg >> (w - 1))) & mask;
            *reg = rot ^ bit ^ (evicted << shift);
        }
    }
}

/// Rebuilds one register set from scratch for the given history.
fn init_folds(
    widths: &[u32; 3],
    tables: &[TaggedTable],
    hist: u128,
) -> [[u64; 3]; MAX_TAGGED_TABLES] {
    let mut regs = [[0u64; 3]; MAX_TAGGED_TABLES];
    for (t, table) in tables.iter().enumerate() {
        let h = MaskedHist::new(hist, table.hist_len);
        for (reg, &w) in regs[t].iter_mut().zip(widths.iter()) {
            *reg = h.fold(w);
        }
    }
    regs
}

/// The TAGE predictor.
///
/// ```
/// use fe_model::config::TageConfig;
/// use fe_model::Addr;
/// use fe_uarch::Tage;
///
/// let mut tage = Tage::new(TageConfig::default());
/// let pc = Addr::new(0x1000);
/// // Train a strongly taken branch.
/// for _ in 0..64 {
///     tage.retire(pc, true);
/// }
/// assert!(tage.predict(pc));
/// ```
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    bimodal: Vec<u8>,
    tables: Vec<TaggedTable>,
    spec_hist: u128,
    retired_hist: u128,
    use_alt: u8,
    lfsr: u32,
    updates: u64,
    tag_mask: u16,
    /// Opt-in incremental fold registers (see [`FoldState`]); `None`
    /// keeps the classic fold-per-lookup path byte-for-byte intact.
    fold: Option<Box<FoldState>>,
}

impl Tage {
    /// Builds the predictor for the given configuration.
    pub fn new(cfg: TageConfig) -> Self {
        assert!(
            (cfg.tagged_tables as usize) <= MAX_TAGGED_TABLES,
            "TAGE supports at most {MAX_TAGGED_TABLES} tagged tables, got {}",
            cfg.tagged_tables,
        );
        let tables = (0..cfg.tagged_tables)
            .map(|t| {
                let hist_len = geometric_length(&cfg, t);
                TaggedTable {
                    entries: vec![TaggedEntry::default(); 1 << cfg.tagged_bits],
                    hist_len,
                    index_mask: (1u64 << cfg.tagged_bits) - 1,
                }
            })
            .collect();
        Tage {
            // Weakly not-taken start: compilers lay out the common path
            // as fall-through, so a cold branch is best guessed
            // not-taken (the classic static heuristic).
            bimodal: vec![1; 1 << cfg.base_bits],
            tables,
            spec_hist: 0,
            retired_hist: 0,
            use_alt: 8,
            lfsr: 0xACE1,
            updates: 0,
            tag_mask: ((1u32 << cfg.tag_width) - 1) as u16,
            fold: None,
            cfg,
        }
    }

    /// Switches lookups to incrementally-maintained folded histories
    /// (see [`FoldState`]): O(1) per history push instead of O(len/w)
    /// folds per table per lookup. Predictions and state remain
    /// bit-identical — the registers are a cached form of the same
    /// folds. The batch sweep engine enables this per cell; the serial
    /// path stays on the classic folds as the reference.
    pub fn enable_fold_scratch(&mut self) {
        let widths = [
            self.cfg.tagged_bits,
            self.cfg.tag_width,
            self.cfg.tag_width.saturating_sub(1),
        ];
        self.fold = Some(Box::new(FoldState {
            meta: FoldMeta::new(widths, &self.tables),
            spec: init_folds(&widths, &self.tables, self.spec_hist),
            retired: init_folds(&widths, &self.tables, self.retired_hist),
        }));
    }

    /// Predicts the direction of the conditional branch at `pc` using
    /// the *speculative* history (branch-prediction-unit path).
    pub fn predict(&self, pc: Addr) -> bool {
        let scratch = self.fold.as_ref().map(|f| &f.spec);
        let l = self.lookup(pc, self.spec_hist, scratch);
        self.resolve(&l)
    }

    /// Advances the speculative history with a predicted outcome.
    pub fn push_spec(&mut self, taken: bool) {
        if let Some(f) = self.fold.as_deref_mut() {
            push_folds(&mut f.spec, &f.meta, self.spec_hist, taken);
        }
        self.spec_hist = (self.spec_hist << 1) | taken as u128;
    }

    /// Repairs the speculative history from retired state after a
    /// pipeline redirect.
    pub fn redirect(&mut self) {
        if let Some(f) = self.fold.as_deref_mut() {
            f.spec = f.retired;
        }
        self.spec_hist = self.retired_hist;
    }

    /// The speculative history value a prediction at this moment uses.
    /// Carried alongside the predicted branch so its retirement update
    /// trains exactly the entries the prediction consulted.
    pub fn spec_snapshot(&self) -> u128 {
        self.spec_hist
    }

    /// Retires a conditional branch: updates tables with the actual
    /// outcome and advances the retired history. Returns the prediction
    /// the retired-history lookup produced (used by callers for
    /// training-time bookkeeping).
    pub fn retire(&mut self, pc: Addr, taken: bool) -> bool {
        self.retire_with(pc, taken, self.retired_hist)
    }

    /// Retires a conditional branch whose prediction was made under the
    /// history snapshot `hist` (see [`Tage::spec_snapshot`]): the table
    /// update indexes with that same history, keeping training and
    /// prediction coherent in a decoupled front end.
    pub fn retire_with(&mut self, pc: Addr, taken: bool, hist: u128) -> bool {
        // Take the fold state out so its registers can be read while
        // `update` mutates the tables. The retired register set is only
        // valid for `hist == retired_hist` (the common case: in-order
        // retirement trains under the retired history, and decoupled
        // snapshots match it on the correct path); any other snapshot
        // falls back to folding from scratch.
        let fold = self.fold.take();
        let scratch = match fold.as_deref() {
            Some(f) if hist == self.retired_hist => Some(&f.retired),
            _ => None,
        };
        let lookup = self.lookup(pc, hist, scratch);
        let predicted = self.resolve(&lookup);
        self.update(pc, taken, &lookup, predicted, hist, scratch);
        if let Some(mut f) = fold {
            push_folds(&mut f.retired, &f.meta, self.retired_hist, taken);
            self.fold = Some(f);
        }
        self.retired_hist = (self.retired_hist << 1) | taken as u128;
        predicted
    }

    /// Approximate storage use in bits (see `TageConfig::storage_bits`).
    pub fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }

    /// Final direction choice: newly-allocated (weak) providers defer
    /// to the alternate prediction while the use-alt counter says
    /// alternates have been doing better.
    fn resolve(&self, l: &Lookup) -> bool {
        if l.provider.is_some() && l.provider_weak && self.use_alt >= 8 {
            l.alt_pred
        } else {
            l.provider_pred
        }
    }

    fn lookup(
        &self,
        pc: Addr,
        hist: u128,
        scratch: Option<&[[u64; 3]; MAX_TAGGED_TABLES]>,
    ) -> Lookup {
        let pc_bits = pc.get() >> 2;
        let bimodal_index = (pc_bits & ((1 << self.cfg.base_bits) - 1)) as usize;
        let bimodal_pred = self.bimodal[bimodal_index] >= 2;

        let mut indices = [0u32; MAX_TAGGED_TABLES];
        let mut provider = None;
        let mut provider_index = 0;
        let mut alt: Option<bool> = None;
        let same_width = self.cfg.tag_width == self.cfg.tagged_bits;
        // Scan longest history first. Without fold scratch the history
        // is masked and folded once per table (the index fold doubles as
        // the first tag fold in the default geometry); tags are only
        // folded for valid entries, exactly as the tag comparison needs
        // them. With scratch every fold is a register read.
        for t in (0..self.tables.len()).rev() {
            let table = &self.tables[t];
            let h = match scratch {
                Some(_) => None,
                None => Some(MaskedHist::new(hist, table.hist_len)),
            };
            let f_idx = match scratch {
                Some(regs) => regs[t][0],
                None => h.unwrap().fold(self.cfg.tagged_bits),
            };
            let idx = ((pc_bits ^ (pc_bits >> (self.cfg.tagged_bits as u64 + t as u64)) ^ f_idx)
                & table.index_mask) as usize;
            indices[t] = idx as u32;
            let entry = &table.entries[idx];
            if entry.valid {
                let (f1, f2) = match scratch {
                    Some(regs) => (regs[t][1], regs[t][2] << 1),
                    None => {
                        let h = h.unwrap();
                        let f1 = if same_width {
                            f_idx
                        } else {
                            h.fold(self.cfg.tag_width)
                        };
                        (f1, h.fold(self.cfg.tag_width.saturating_sub(1)) << 1)
                    }
                };
                let tag = ((pc_bits ^ f1 ^ f2) as u16) & self.tag_mask;
                if entry.tag == tag {
                    if provider.is_none() {
                        provider = Some(t);
                        provider_index = idx;
                    } else {
                        alt = Some(entry.ctr >= 0);
                        break;
                    }
                }
            }
        }
        let alt_pred = alt.unwrap_or(bimodal_pred);
        match provider {
            Some(t) => {
                let e = &self.tables[t].entries[provider_index];
                Lookup {
                    provider: Some(t),
                    provider_index,
                    provider_pred: e.ctr >= 0,
                    provider_weak: e.ctr == 0 || e.ctr == -1,
                    alt_pred,
                    bimodal_index,
                    indices,
                }
            }
            None => Lookup {
                provider: None,
                provider_index: 0,
                provider_pred: bimodal_pred,
                provider_weak: false,
                alt_pred: bimodal_pred,
                bimodal_index,
                indices,
            },
        }
    }

    fn update(
        &mut self,
        pc: Addr,
        taken: bool,
        l: &Lookup,
        final_pred: bool,
        hist: u128,
        scratch: Option<&[[u64; 3]; MAX_TAGGED_TABLES]>,
    ) {
        self.updates += 1;
        if self.updates.is_multiple_of(U_RESET_PERIOD) {
            for table in &mut self.tables {
                for e in &mut table.entries {
                    e.u >>= 1;
                }
            }
        }

        match l.provider {
            Some(t) => {
                // Track whether weak providers beat their alternates.
                if l.provider_weak && l.provider_pred != l.alt_pred {
                    if l.provider_pred == taken {
                        self.use_alt = self.use_alt.saturating_sub(1);
                    } else if self.use_alt < 15 {
                        self.use_alt += 1;
                    }
                }
                let entry = &mut self.tables[t].entries[l.provider_index];
                if l.provider_pred != l.alt_pred {
                    if l.provider_pred == taken {
                        entry.u = (entry.u + 1).min(U_MAX);
                    } else {
                        entry.u = entry.u.saturating_sub(1);
                    }
                }
                entry.ctr = bump(entry.ctr, taken);
                // Also train the bimodal when the provider is weak, so
                // the base stays a usable fallback.
                if l.provider_weak {
                    self.bump_bimodal(l.bimodal_index, taken);
                }
            }
            None => self.bump_bimodal(l.bimodal_index, taken),
        }

        // Allocate a longer-history entry on a misprediction. Table
        // indices come from the lookup's cache (the allocation range —
        // tables above the provider — is always populated); only the
        // picked table's tag is folded fresh.
        let provider_rank = l.provider.map_or(0, |t| t + 1);
        if final_pred != taken && provider_rank < self.tables.len() {
            let start = l.provider.map_or(0, |t| t + 1);
            let mut candidates = [0usize; MAX_TAGGED_TABLES];
            let mut found = 0usize;
            for t in start..self.tables.len() {
                if self.tables[t].entries[l.indices[t] as usize].u == 0 {
                    candidates[found] = t;
                    found += 1;
                }
            }
            if found == 0 {
                for t in start..self.tables.len() {
                    let e = &mut self.tables[t].entries[l.indices[t] as usize];
                    e.u = e.u.saturating_sub(1);
                }
            } else {
                // Prefer the shortest candidate with probability 2/3,
                // otherwise pick pseudo-randomly among the rest.
                let pick = if found == 1 || self.lfsr_bits(2) != 0 {
                    candidates[0]
                } else {
                    candidates[1 + self.lfsr_bits(8) as usize % (found - 1)]
                };
                let tag = self.tag(pick, pc.get() >> 2, hist, scratch);
                self.tables[pick].entries[l.indices[pick] as usize] = TaggedEntry {
                    valid: true,
                    tag,
                    ctr: if taken { 0 } else { -1 },
                    u: 0,
                };
            }
        }
    }

    fn bump_bimodal(&mut self, index: usize, taken: bool) {
        let c = &mut self.bimodal[index];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Tag of `pc` in table `t` under `hist` — the allocation path's
    /// one-table fold (the lookup folds tags inline, sharing the index
    /// fold).
    fn tag(
        &self,
        t: usize,
        pc_bits: u64,
        hist: u128,
        scratch: Option<&[[u64; 3]; MAX_TAGGED_TABLES]>,
    ) -> u16 {
        let (f1, f2) = match scratch {
            Some(regs) => (regs[t][1], regs[t][2] << 1),
            None => {
                let h = MaskedHist::new(hist, self.tables[t].hist_len);
                (
                    h.fold(self.cfg.tag_width),
                    h.fold(self.cfg.tag_width.saturating_sub(1)) << 1,
                )
            }
        };
        ((pc_bits ^ f1 ^ f2) as u16) & self.tag_mask
    }

    fn lfsr_bits(&mut self, bits: u32) -> u32 {
        let mut out = 0;
        for _ in 0..bits {
            let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
            self.lfsr = (self.lfsr >> 1) | (bit << 15);
            out = (out << 1) | bit;
        }
        out
    }
}

/// Geometric history-length series from `min_history` to `max_history`.
fn geometric_length(cfg: &TageConfig, t: u32) -> u32 {
    if cfg.tagged_tables == 1 {
        return cfg.min_history.min(127);
    }
    let ratio = cfg.max_history as f64 / cfg.min_history as f64;
    let exp = t as f64 / (cfg.tagged_tables - 1) as f64;
    ((cfg.min_history as f64 * ratio.powf(exp)).round() as u32).min(127)
}

/// The low `len` bits of a history register, pre-masked and pre-split
/// so folding runs in 64-bit arithmetic wherever the length allows —
/// `u128` shifts cost several instructions each, and folding is the
/// single hottest operation in the simulator (3 folds x 6 tables per
/// TAGE lookup, 2+ lookups per conditional branch).
#[derive(Clone, Copy)]
enum MaskedHist {
    /// History of 64 bits or fewer: pure `u64` folding.
    Small(u64, u32),
    /// Longer history: folded with `u128` chunk extraction.
    Large(u128, u32),
}

impl MaskedHist {
    #[inline]
    fn new(hist: u128, len: u32) -> Self {
        if len <= 64 {
            let mask = if len == 64 {
                u64::MAX
            } else {
                (1u64 << len) - 1
            };
            MaskedHist::Small(hist as u64 & mask, len)
        } else if len >= 128 {
            MaskedHist::Large(hist, 128)
        } else {
            MaskedHist::Large(hist & ((1u128 << len) - 1), len)
        }
    }

    /// XOR-folds the masked history into `bits` bits. Bit-for-bit
    /// identical to the chunked shift loop of the pre-refactor
    /// implementation (kept as `fold_reference` for the parity tests):
    /// every `bits`-wide chunk position over the masked length is
    /// XORed, and all-zero high chunks contribute nothing, exactly as
    /// the original `while h != 0` termination. Extracting each chunk
    /// from the *original* value breaks the original loop's serial
    /// shift dependency — the chunks fold in instruction-level
    /// parallel, which matters enormously for a 127-bit history folded
    /// three times per table per prediction.
    #[inline]
    fn fold(self, bits: u32) -> u64 {
        if bits == 0 {
            return 0;
        }
        let mask = (1u64 << bits) - 1;
        let mut acc = 0u64;
        match self {
            MaskedHist::Small(h, len) => {
                let mut sh = 0;
                while sh < len {
                    acc ^= (h >> sh) & mask;
                    sh += bits;
                }
            }
            MaskedHist::Large(h, len) => {
                let mut sh = 0;
                while sh < len {
                    acc ^= (h >> sh) as u64 & mask;
                    sh += bits;
                }
            }
        }
        acc
    }
}

/// The original from-scratch fold, kept as the semantic reference the
/// optimized [`MaskedHist::fold`] is checked against.
#[cfg(test)]
fn fold_reference(hist: u128, len: u32, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    let mut h = if len >= 128 {
        hist
    } else {
        hist & ((1u128 << len) - 1)
    };
    let mask = (1u64 << bits) - 1;
    let mut acc = 0u64;
    while h != 0 {
        acc ^= (h as u64) & mask;
        h >>= bits;
    }
    acc
}

fn bump(ctr: i8, taken: bool) -> i8 {
    if taken {
        (ctr + 1).min(CTR_MAX)
    } else {
        (ctr - 1).max(CTR_MIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tage() -> Tage {
        Tage::new(TageConfig::default())
    }

    #[test]
    fn learns_strong_bias() {
        let mut t = tage();
        let pc = Addr::new(0x4000);
        for _ in 0..32 {
            t.retire(pc, true);
        }
        assert!(t.predict(pc));
        let pc2 = Addr::new(0x8000);
        for _ in 0..32 {
            t.retire(pc2, false);
        }
        assert!(!t.predict(pc2));
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // A strict alternation is unlearnable by bimodal but trivial
        // with one bit of history.
        let mut t = tage();
        let pc = Addr::new(0x1230);
        let mut outcome = false;
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            let pred = t.predict(pc);
            if i > total / 2 && pred == outcome {
                correct += 1;
            }
            t.retire(pc, outcome);
            t.push_spec(outcome); // keep spec history in sync
            outcome = !outcome;
        }
        let acc = correct as f64 / (total / 2 - 1) as f64;
        assert!(acc > 0.9, "alternation accuracy {acc}");
    }

    #[test]
    fn learns_loop_exit_pattern() {
        // taken x7 then not-taken, repeated: a history predictor should
        // reach high accuracy; bimodal alone would cap at 7/8.
        let mut t = tage();
        let pc = Addr::new(0x5550);
        let mut correct = 0;
        let mut total = 0;
        for iter in 0..4000 {
            let outcome = (iter % 8) != 7;
            let pred = t.predict(pc);
            if iter > 2000 {
                total += 1;
                if pred == outcome {
                    correct += 1;
                }
            }
            t.retire(pc, outcome);
            t.push_spec(outcome);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.93, "loop-exit accuracy {acc}");
    }

    #[test]
    fn redirect_repairs_speculative_history() {
        let mut t = tage();
        // Diverge spec from retired, then repair.
        t.push_spec(true);
        t.push_spec(true);
        t.retire(Addr::new(0x10), false);
        assert_ne!(t.spec_hist, t.retired_hist);
        t.redirect();
        assert_eq!(t.spec_hist, t.retired_hist);
    }

    #[test]
    fn distinct_branches_do_not_destructively_alias() {
        let mut t = tage();
        // Many branches with opposite biases; overall accuracy must
        // stay high despite sharing tables.
        let mut correct = 0;
        let mut total = 0;
        for round in 0..300 {
            for i in 0..64u64 {
                let pc = Addr::new(0x1_0000 + i * 0x40);
                let outcome = i % 2 == 0;
                let pred = t.predict(pc);
                if round > 150 {
                    total += 1;
                    if pred == outcome {
                        correct += 1;
                    }
                }
                t.retire(pc, outcome);
                t.push_spec(outcome);
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "aliasing accuracy {acc}");
    }

    #[test]
    fn storage_within_budget() {
        let t = tage();
        assert!(t.storage_bits() <= 8 * 1024 * 8);
    }

    #[test]
    fn geometric_series_spans_min_to_max() {
        let cfg = TageConfig::default();
        assert_eq!(geometric_length(&cfg, 0), cfg.min_history);
        let last = geometric_length(&cfg, cfg.tagged_tables - 1);
        assert!(last >= 120, "longest history {last}");
    }

    #[test]
    fn fold_is_stable_and_bounded() {
        let h = 0xDEAD_BEEF_CAFE_BABE_u128;
        let fold = |h, len, bits| MaskedHist::new(h, len).fold(bits);
        let a = fold(h, 33, 9);
        assert_eq!(a, fold(h, 33, 9));
        assert!(a < 512);
        assert_ne!(
            fold(h, 33, 9),
            fold(h >> 1, 33, 9),
            "history changes the fold"
        );
        assert_eq!(fold(h, 0, 9), 0);
    }

    #[test]
    fn optimized_fold_matches_reference_on_edge_geometries() {
        // The split 64-bit fast path must be bit-for-bit the reference
        // fold at every boundary the geometry can hit: lengths at and
        // around the u64 split, chunk widths that do and don't divide
        // the length, and the zero-width tag fold.
        let hists = [
            0u128,
            1,
            u64::MAX as u128,
            (u64::MAX as u128) + 1,
            u128::MAX,
            0xDEAD_BEEF_CAFE_BABE_0123_4567_89AB_CDEF,
        ];
        for &h in &hists {
            for len in [0, 1, 5, 9, 10, 19, 36, 63, 64, 65, 68, 127, 128] {
                for bits in [0, 1, 8, 9, 11, 16] {
                    assert_eq!(
                        MaskedHist::new(h, len).fold(bits),
                        fold_reference(h, len, bits),
                        "fold mismatch at hist={h:#x} len={len} bits={bits}",
                    );
                }
            }
        }
    }

    fn splitmix(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn incremental_folds_track_from_scratch_folds() {
        // Push random bits through a register set and check every
        // register against a from-scratch fold of the history after
        // each push — the O(1) update must be exact at every length
        // boundary the geometry produces.
        let t = tage();
        let widths = [t.cfg.tagged_bits, t.cfg.tag_width, 0];
        let meta = FoldMeta::new(widths, &t.tables);
        let mut hist: u128 = 0;
        let mut regs = init_folds(&widths, &t.tables, hist);
        let mut next = splitmix(0xF01D);
        for _ in 0..4_000 {
            let bit = next() & 1 == 1;
            push_folds(&mut regs, &meta, hist, bit);
            hist = (hist << 1) | bit as u128;
            assert_eq!(regs, init_folds(&widths, &t.tables, hist));
        }
    }

    #[test]
    fn fold_scratch_is_bit_identical_to_classic_folding() {
        // Drive two predictors — one with scratch enabled mid-stream,
        // one without — through the decoupled-front-end idiom: predict
        // under spec history, snapshot it, retire under the snapshot,
        // with periodic redirects repairing spec from retired. Every
        // prediction and every retire-time result must agree.
        let mut classic = tage();
        let mut scratch = tage();
        let mut next = splitmix(0xBEEF);
        let mut pending: Vec<(Addr, bool, u128)> = Vec::new();
        for step in 0..30_000u32 {
            if step == 5_000 {
                scratch.enable_fold_scratch();
            }
            let pc = Addr::new(0x1000 + (next() % 512) * 0x10);
            let taken = !next().is_multiple_of(3);
            assert_eq!(classic.predict(pc), scratch.predict(pc), "step {step}");
            pending.push((pc, taken, classic.spec_snapshot()));
            assert_eq!(classic.spec_snapshot(), scratch.spec_snapshot());
            classic.push_spec(taken);
            scratch.push_spec(taken);
            // Retire with a lag, as the pipeline does.
            if pending.len() > 4 {
                let (rpc, rtaken, snap) = pending.remove(0);
                assert_eq!(
                    classic.retire_with(rpc, rtaken, snap),
                    scratch.retire_with(rpc, rtaken, snap),
                    "retire at step {step}"
                );
            }
            if next().is_multiple_of(64) {
                // A redirect drops the in-flight window, retires the
                // oldest under a stale snapshot (exercising the
                // fallback), and repairs spec history.
                if let Some((rpc, rtaken, snap)) = pending.pop() {
                    assert_eq!(
                        classic.retire_with(rpc, rtaken, snap),
                        scratch.retire_with(rpc, rtaken, snap),
                    );
                }
                pending.clear();
                classic.redirect();
                scratch.redirect();
            }
        }
        assert_eq!(classic.retired_hist, scratch.retired_hist);
        assert_eq!(classic.spec_hist, scratch.spec_hist);
        for pc in (0..256u64).map(|i| Addr::new(0x2000 + i * 0x20)) {
            assert_eq!(classic.predict(pc), scratch.predict(pc));
        }
    }

    #[test]
    fn optimized_fold_matches_reference_on_random_inputs() {
        // Deterministic pseudo-random sweep (SplitMix64 stream) across
        // the whole input space — the fast path has no excuse to differ
        // anywhere.
        let mut s = 0x5407_u64;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for _ in 0..20_000 {
            let h = ((next() as u128) << 64) | next() as u128;
            let len = (next() % 130) as u32;
            let bits = (next() % 17) as u32;
            assert_eq!(
                MaskedHist::new(h, len).fold(bits),
                fold_reference(h, len, bits),
                "fold mismatch at hist={h:#x} len={len} bits={bits}",
            );
        }
    }
}
