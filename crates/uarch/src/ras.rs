//! Return address stack, extended for Shotgun.
//!
//! §4.2.3: "on a call, in addition to the return address that normally
//! gets pushed on the RAS, the address of the basic block containing
//! the call is also pushed" — that call-block address is the U-BTB key
//! Shotgun uses to retrieve the *return footprint* on a RIB hit. Each
//! entry therefore carries both fields; for the baselines the extension
//! is simply unused.
//!
//! The stack is a fixed-capacity circular buffer: pushing past capacity
//! silently overwrites the oldest entry (real hardware behaviour, and
//! the source of rare deep-recursion return mispredictions). The
//! simulator keeps one speculative RAS in the branch-prediction unit
//! and one architectural RAS updated at retire; on redirect the
//! speculative one is repaired by cloning.

use fe_model::Addr;

/// One RAS entry: the predicted return target plus the basic-block
/// address of the call that pushed it (Shotgun's extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RasEntry {
    /// Return address (the call's fall-through block start).
    pub ret: Addr,
    /// Start address of the basic block containing the call.
    pub call_block: Addr,
}

/// Fixed-capacity circular return address stack.
///
/// ```
/// use fe_model::Addr;
/// use fe_uarch::{RasEntry, ReturnAddressStack};
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(RasEntry { ret: Addr::new(0x100), call_block: Addr::new(0x80) });
/// assert_eq!(ras.pop().unwrap().ret, Addr::new(0x100));
/// assert!(ras.pop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    slots: Vec<RasEntry>,
    /// Index one past the most recent entry (mod capacity).
    top: usize,
    /// Live entries (≤ capacity).
    len: usize,
}

impl ReturnAddressStack {
    /// Creates an empty stack of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        ReturnAddressStack {
            slots: vec![
                RasEntry {
                    ret: Addr::NULL,
                    call_block: Addr::NULL
                };
                capacity
            ],
            top: 0,
            len: 0,
        }
    }

    /// Pushes an entry, overwriting the oldest if full.
    pub fn push(&mut self, entry: RasEntry) {
        self.slots[self.top] = entry;
        self.top = (self.top + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
    }

    /// Pops the most recent entry; `None` when empty (the predictor
    /// then has no target and will misfetch).
    pub fn pop(&mut self) -> Option<RasEntry> {
        if self.len == 0 {
            return None;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.len -= 1;
        Some(self.slots[self.top])
    }

    /// Most recent entry without popping.
    pub fn peek(&self) -> Option<&RasEntry> {
        if self.len == 0 {
            None
        } else {
            Some(&self.slots[(self.top + self.slots.len() - 1) % self.slots.len()])
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Replaces this stack's contents with `other`'s — the redirect
    /// repair used to restore the speculative RAS from the retired one.
    pub fn restore_from(&mut self, other: &ReturnAddressStack) {
        self.slots.clone_from(&other.slots);
        self.top = other.top;
        self.len = other.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: u64) -> RasEntry {
        RasEntry {
            ret: Addr::new(v),
            call_block: Addr::new(v + 4),
        }
    }

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(e(1));
        ras.push(e(2));
        ras.push(e(3));
        assert_eq!(ras.pop(), Some(e(3)));
        assert_eq!(ras.pop(), Some(e(2)));
        assert_eq!(ras.pop(), Some(e(1)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(e(1));
        ras.push(e(2));
        ras.push(e(3)); // overwrites e(1)
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(e(3)));
        assert_eq!(ras.pop(), Some(e(2)));
        assert_eq!(ras.pop(), None, "oldest entry was lost to wrap-around");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(e(9));
        assert_eq!(ras.peek(), Some(&e(9)));
        assert_eq!(ras.len(), 1);
        assert_eq!(ras.pop(), Some(e(9)));
    }

    #[test]
    fn restore_repairs_speculative_state() {
        let mut retired = ReturnAddressStack::new(4);
        retired.push(e(1));
        retired.push(e(2));
        let mut spec = retired.clone();
        // Speculative path pops both and pushes garbage.
        spec.pop();
        spec.pop();
        spec.push(e(99));
        spec.restore_from(&retired);
        assert_eq!(spec.pop(), Some(e(2)));
        assert_eq!(spec.pop(), Some(e(1)));
    }

    #[test]
    fn carries_call_block_for_shotgun() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(RasEntry {
            ret: Addr::new(0x2000),
            call_block: Addr::new(0x1ff0),
        });
        let top = ras.pop().unwrap();
        assert_eq!(
            top.call_block,
            Addr::new(0x1ff0),
            "U-BTB key for the return footprint"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        ReturnAddressStack::new(0);
    }
}
