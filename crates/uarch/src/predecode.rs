//! Predecoding: extracting branch metadata from fetched cache lines.
//!
//! Both Boomerang's reactive BTB fill and Shotgun/Confluence's proactive
//! BTB prefill run fetched lines through predecoders that recover the
//! branches they contain (§4.2.3, Fig. 5b steps 4–5). A hardware
//! predecoder sees the instruction bytes; our stand-in consults the
//! static [`Program`] map, which yields exactly the same information —
//! the branches whose instruction lies in the line, with their type,
//! basic-block extent and taken target.

use fe_cfg::Program;
use fe_model::{Addr, BasicBlock, LineAddr};

/// Cycles charged for running a fetched line through the predecoder.
pub const PREDECODE_LATENCY: u32 = 1;

/// Branch metadata recoverable from one fetched cache line: every basic
/// block whose terminating branch instruction lies in `line`.
pub fn branches_in_line<'p>(
    program: &'p Program,
    line: LineAddr,
) -> impl Iterator<Item = BasicBlock> + 'p {
    program.branches_in_line(line).map(|id| *program.block(id))
}

/// Reactive-fill resolution (Boomerang §4.2.3): given the address the
/// branch-prediction unit missed on, recover the basic block starting
/// there. Returns the block plus the number of *additional* lines past
/// the first that must be fetched before its terminating branch is
/// visible to the predecoder (blocks can straddle line boundaries).
pub fn resolve_block(program: &Program, pc: Addr) -> Option<(BasicBlock, u32)> {
    let id = program.block_id_at(pc)?;
    let block = *program.block(id);
    let extra = block.branch_pc().line().get() - pc.line().get();
    Some((block, extra as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cfg::{LayerSpec, WorkloadSpec};
    use fe_model::BranchKind;

    fn program() -> Program {
        WorkloadSpec {
            name: "predecode".into(),
            seed: 44,
            layers: vec![LayerSpec::grouped(2, 3.0), LayerSpec::shared(12, 0.5)],
            kernel_entries: 2,
            kernel_helpers: 4,
            ..WorkloadSpec::default()
        }
        .build()
    }

    #[test]
    fn line_decode_matches_program_map() {
        let p = program();
        // Take an arbitrary block's line and verify its branch appears.
        let block = *p.block(5);
        let line = block.branch_pc().line();
        let decoded: Vec<_> = branches_in_line(&p, line).collect();
        assert!(decoded.contains(&block));
        // Everything decoded genuinely lives in that line.
        for b in decoded {
            assert_eq!(b.branch_pc().line(), line);
        }
    }

    #[test]
    fn empty_line_decodes_nothing() {
        let p = program();
        // Address far beyond any code.
        let line = LineAddr::containing(0x7000_0000_0000);
        assert_eq!(branches_in_line(&p, line).count(), 0);
    }

    #[test]
    fn resolve_block_finds_exact_start() {
        let p = program();
        let block = *p.block(7);
        let (resolved, extra) = resolve_block(&p, block.start).unwrap();
        assert_eq!(resolved, block);
        let expected = block.branch_pc().line().get() - block.start.line().get();
        assert_eq!(extra as u64, expected);
    }

    #[test]
    fn resolve_block_rejects_mid_block_pc() {
        let p = program();
        let block = *p.block(7);
        if block.instr_count > 1 {
            assert!(resolve_block(&p, block.start + 4).is_none());
        }
    }

    #[test]
    fn straddling_blocks_report_extra_lines() {
        let p = program();
        // Find a block whose branch is on a later line than its start.
        let straddler = (0..p.block_count() as u32)
            .map(|id| *p.block(id))
            .find(|b| b.branch_pc().line() != b.start.line());
        if let Some(b) = straddler {
            let (_, extra) = resolve_block(&p, b.start).unwrap();
            assert!(extra >= 1);
        }
    }

    #[test]
    fn every_block_kind_survives_decode() {
        let p = program();
        let mut kinds_seen = crate::fasthash::FastSet::default();
        for id in 0..p.block_count() as u32 {
            let b = p.block(id);
            for decoded in branches_in_line(&p, b.branch_pc().line()) {
                kinds_seen.insert(decoded.kind);
            }
        }
        assert!(kinds_seen.contains(&BranchKind::Conditional));
        assert!(kinds_seen.contains(&BranchKind::Call));
        assert!(kinds_seen.contains(&BranchKind::Return));
    }
}
