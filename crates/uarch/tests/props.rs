//! Property tests for the microarchitectural substrate: structural
//! invariants that must hold for any access sequence.

use fe_model::config::CacheConfig;
use fe_model::{Addr, LineAddr};
use fe_uarch::{BoundedQueue, InflightFills, LineCache, RasEntry, ReturnAddressStack, SetAssocMap};
use proptest::prelude::*;

proptest! {
    #[test]
    fn setmap_never_exceeds_capacity(
        keys in prop::collection::vec(0u64..512, 1..300),
        entries in 4usize..64,
        ways in 1usize..8,
    ) {
        let mut m: SetAssocMap<u64> = SetAssocMap::new(entries, ways);
        for &k in &keys {
            m.insert(k, k * 10);
            prop_assert!(m.len() <= m.capacity());
        }
        // Every resident key maps to its latest value.
        for (k, &v) in m.iter() {
            prop_assert_eq!(v, k * 10);
        }
    }

    #[test]
    fn setmap_most_recent_insert_is_resident(
        keys in prop::collection::vec(0u64..100, 1..100),
    ) {
        let mut m: SetAssocMap<u64> = SetAssocMap::new(16, 4);
        for &k in &keys {
            m.insert(k, k);
            prop_assert!(m.peek(k).is_some(), "freshly inserted key must be resident");
        }
    }

    #[test]
    fn cache_hit_iff_installed_and_not_evicted(
        lines in prop::collection::vec(0u64..256, 1..200),
    ) {
        let mut cache = LineCache::new(CacheConfig { kib: 1, ways: 2, latency: 2 });
        let mut shadow: fe_uarch::FastSet<u64> = Default::default();
        for &l in &lines {
            let line = LineAddr::from_index(l);
            if let Some(evicted) = cache.install(line, false) {
                shadow.remove(&evicted.line.get());
            }
            shadow.insert(l);
            prop_assert!(cache.len() <= cache.capacity());
        }
        // The shadow set of unevicted lines must all be resident.
        for &l in &shadow {
            prop_assert!(cache.probe(LineAddr::from_index(l)));
        }
    }

    #[test]
    fn ras_is_lifo_up_to_capacity(
        values in prop::collection::vec(0u64..(1 << 30), 1..64),
        capacity in 2usize..40,
    ) {
        let mut ras = ReturnAddressStack::new(capacity);
        for &v in &values {
            ras.push(RasEntry { ret: Addr::new(v), call_block: Addr::new(v ^ 0xff) });
        }
        // Pop order must be reverse push order for the entries that fit.
        let survivors = values.len().min(capacity);
        for i in 0..survivors {
            let expect = values[values.len() - 1 - i];
            let got = ras.pop().expect("entry must exist");
            prop_assert_eq!(got.ret.get(), expect);
        }
        prop_assert!(ras.pop().is_none() || values.len() > capacity);
    }

    #[test]
    fn bounded_queue_preserves_order_and_bound(
        items in prop::collection::vec(any::<u32>(), 1..100),
        cap in 1usize..32,
    ) {
        let mut q = BoundedQueue::new(cap);
        let mut accepted = Vec::new();
        for &item in &items {
            if q.push(item) {
                accepted.push(item);
            }
            prop_assert!(q.len() <= cap);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(drained, accepted);
    }

    #[test]
    fn inflight_fills_complete_exactly_once(
        reqs in prop::collection::vec((0u64..64, 1u64..1000), 1..100),
    ) {
        let mut fills = InflightFills::new(16);
        let mut outstanding: fe_uarch::FastSet<u64> = Default::default();
        let mut completed = 0usize;
        let mut accepted = 0usize;
        let mut now = 0u64;
        for &(line, delay) in &reqs {
            now += 7;
            let l = LineAddr::from_index(line);
            if !fills.contains(l) && fills.request(l, now + delay, true) {
                accepted += 1;
                outstanding.insert(line);
            }
            completed += fills.pop_ready(now).count();
            for (l, _) in fills.pop_ready(now) {
                outstanding.remove(&l.get());
            }
        }
        completed += fills.pop_ready(u64::MAX).count();
        prop_assert_eq!(completed, accepted, "every accepted fill completes once");
    }
}

// ---- deterministic full/empty edge cases (non-property) --------------
//
// The §6.1 pipeline depends on these boundary behaviors precisely: a
// full FTQ back-pressures the BPU, a full MSHR file must neither drop
// nor duplicate a demand, and empty structures must answer without
// side effects.

#[test]
fn bounded_queue_full_and_empty_boundaries() {
    let mut q: BoundedQueue<u32> = BoundedQueue::new(1);
    // Empty: every observer agrees, pops are side-effect-free.
    assert!(q.is_empty());
    assert!(!q.is_full());
    assert_eq!(q.len(), 0);
    assert_eq!(q.pop(), None);
    assert_eq!(q.front(), None);
    assert_eq!(q.front_mut(), None);
    assert_eq!(q.back(), None);
    // Capacity-1: full after one push, rejects without dropping.
    assert!(q.push(7));
    assert!(q.is_full());
    assert!(!q.push(8), "full queue must reject");
    assert_eq!(q.len(), 1);
    assert_eq!(q.front(), Some(&7), "rejected push must not clobber");
    // Pop frees exactly one slot.
    assert_eq!(q.pop(), Some(7));
    assert!(q.is_empty() && !q.is_full());
    assert!(q.push(9));
    // Clear from full, then reuse.
    q.clear();
    assert!(q.is_empty());
    assert!(q.push(10));
    assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![10]);
}

#[test]
fn inflight_fills_full_and_empty_boundaries() {
    let line = |i: u64| LineAddr::from_index(i);
    let mut m = InflightFills::new(1);
    // Empty: no completions, merges miss, lookups miss.
    assert!(m.is_empty());
    assert!(!m.is_full());
    assert_eq!(m.pop_ready(u64::MAX).count(), 0);
    assert_eq!(
        m.merge_demand(line(3)),
        None,
        "merge on absent line is a no-op"
    );
    assert!(m.lookup(line(3)).is_none());
    // Capacity-1: second line rejected, first untouched.
    assert!(m.request(line(1), 10, false));
    assert!(m.is_full());
    assert!(!m.request(line(2), 10, false), "full MSHR file must reject");
    assert!(m.contains(line(1)) && !m.contains(line(2)));
    // A rejected request must not corrupt completion of the holder.
    let done: Vec<_> = m.pop_ready(10).collect();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, line(1));
    assert!(m.is_empty(), "completion frees the MSHR");
    // Freed capacity accepts again; duplicate of in-flight still rejected.
    assert!(m.request(line(2), 20, true));
    assert!(
        !m.request(line(2), 25, false),
        "duplicate must merge, not re-issue"
    );
    assert_eq!(m.merge_demand(line(2)), Some(20));
    assert_eq!(m.len(), 1);
}
