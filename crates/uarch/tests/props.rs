//! Property tests for the microarchitectural substrate: structural
//! invariants that must hold for any access sequence.

use fe_model::config::CacheConfig;
use fe_model::{Addr, LineAddr};
use fe_uarch::{BoundedQueue, InflightFills, LineCache, RasEntry, ReturnAddressStack, SetAssocMap};
use proptest::prelude::*;

proptest! {
    #[test]
    fn setmap_never_exceeds_capacity(
        keys in prop::collection::vec(0u64..512, 1..300),
        entries in 4usize..64,
        ways in 1usize..8,
    ) {
        let mut m: SetAssocMap<u64> = SetAssocMap::new(entries, ways);
        for &k in &keys {
            m.insert(k, k * 10);
            prop_assert!(m.len() <= m.capacity());
        }
        // Every resident key maps to its latest value.
        for (k, &v) in m.iter() {
            prop_assert_eq!(v, k * 10);
        }
    }

    #[test]
    fn setmap_most_recent_insert_is_resident(
        keys in prop::collection::vec(0u64..100, 1..100),
    ) {
        let mut m: SetAssocMap<u64> = SetAssocMap::new(16, 4);
        for &k in &keys {
            m.insert(k, k);
            prop_assert!(m.peek(k).is_some(), "freshly inserted key must be resident");
        }
    }

    #[test]
    fn cache_hit_iff_installed_and_not_evicted(
        lines in prop::collection::vec(0u64..256, 1..200),
    ) {
        let mut cache = LineCache::new(CacheConfig { kib: 1, ways: 2, latency: 2 });
        let mut shadow: std::collections::HashSet<u64> = Default::default();
        for &l in &lines {
            let line = LineAddr::from_index(l);
            if let Some(evicted) = cache.install(line, false) {
                shadow.remove(&evicted.line.get());
            }
            shadow.insert(l);
            prop_assert!(cache.len() <= cache.capacity());
        }
        // The shadow set of unevicted lines must all be resident.
        for &l in &shadow {
            prop_assert!(cache.probe(LineAddr::from_index(l)));
        }
    }

    #[test]
    fn ras_is_lifo_up_to_capacity(
        values in prop::collection::vec(0u64..(1 << 30), 1..64),
        capacity in 2usize..40,
    ) {
        let mut ras = ReturnAddressStack::new(capacity);
        for &v in &values {
            ras.push(RasEntry { ret: Addr::new(v), call_block: Addr::new(v ^ 0xff) });
        }
        // Pop order must be reverse push order for the entries that fit.
        let survivors = values.len().min(capacity);
        for i in 0..survivors {
            let expect = values[values.len() - 1 - i];
            let got = ras.pop().expect("entry must exist");
            prop_assert_eq!(got.ret.get(), expect);
        }
        prop_assert!(ras.pop().is_none() || values.len() > capacity);
    }

    #[test]
    fn bounded_queue_preserves_order_and_bound(
        items in prop::collection::vec(any::<u32>(), 1..100),
        cap in 1usize..32,
    ) {
        let mut q = BoundedQueue::new(cap);
        let mut accepted = Vec::new();
        for &item in &items {
            if q.push(item) {
                accepted.push(item);
            }
            prop_assert!(q.len() <= cap);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(drained, accepted);
    }

    #[test]
    fn inflight_fills_complete_exactly_once(
        reqs in prop::collection::vec((0u64..64, 1u64..1000), 1..100),
    ) {
        let mut fills = InflightFills::new(16);
        let mut outstanding: std::collections::HashSet<u64> = Default::default();
        let mut completed = 0usize;
        let mut accepted = 0usize;
        let mut now = 0u64;
        for &(line, delay) in &reqs {
            now += 7;
            let l = LineAddr::from_index(line);
            if !fills.contains(l) && fills.request(l, now + delay, true) {
                accepted += 1;
                outstanding.insert(line);
            }
            completed += fills.pop_ready(now).count();
            for (l, _) in fills.pop_ready(now) {
                outstanding.remove(&l.get());
            }
        }
        completed += fills.pop_ready(u64::MAX).count();
        prop_assert_eq!(completed, accepted, "every accepted fill completes once");
    }
}
