//! The v2 chunk-compressed, indexed on-disk trace store.
//!
//! A [`TraceStore`] holds the same record stream as a v1 [`Trace`] but
//! re-packages it for *selective* decode: the payload is split into
//! chunks of a fixed record count, each chunk is delta-encoded from a
//! reset decoder state (so any chunk decodes standalone) and
//! LZ-compressed when that saves bytes, and a per-chunk index records
//! every chunk's raw size, stored size, record count and instruction
//! count. Seeking — the [`BlockSource::skip_instrs`] fast path sampled
//! simulation leans on — walks the index and decompresses only the
//! chunk the target lands in, instead of decoding every record on the
//! way; [`StoreReplayer`] counts its chunk decodes so tests can pin
//! exactly that.
//!
//! The container shares the v1 fixed header layout (same magic, same
//! field offsets, version field = [`STORE_VERSION`], same whole-file
//! FNV-1a checksum rule) and appends the provenance string, the chunk
//! geometry, the index, and the chunk data — see `docs/TRACE_FORMAT.md`
//! for the byte-level spec. A v1 reader rejects a store file with its
//! named `UnsupportedVersion` error and vice versa; nothing silently
//! misparses.
//!
//! ```
//! use fe_cfg::workloads;
//! use fe_model::BlockSource;
//! use fe_trace::{Trace, TraceStore};
//!
//! let program = workloads::nutch().scaled(0.05).build();
//! let trace = Trace::record(&program, 42, 20_000);
//! let store = TraceStore::from_trace(&trace, "doctest recording");
//! // Lossless: the store reconstructs the v1 trace byte-for-byte.
//! assert_eq!(store.to_trace().to_bytes(), trace.to_bytes());
//! // Seekable: skipping decodes only the chunks it lands in.
//! let mut replay = store.replayer();
//! replay.skip_instrs(15_000);
//! assert!(replay.chunks_decoded() < store.chunk_count() as u64);
//! ```

use std::path::Path;

use fe_cfg::Program;
use fe_model::{Addr, BlockSource, RetiredBlock};

use crate::codec::{self, encode_record, fnv1a, fnv1a_update, FNV_OFFSET};
use crate::{
    ProgramFingerprint, Trace, TraceError, TraceHeader, TraceWriter, CHECKSUM_RANGE,
    HEADER_FIXED_LEN, MAGIC,
};

/// Format version written by [`TraceStore::to_bytes`] (v1 is the flat
/// [`Trace`] format).
pub const STORE_VERSION: u16 = 2;

/// Default records per chunk: small enough that a seek decodes a few
/// thousand records at most, large enough that the LZ window and the
/// per-chunk index entry amortize well.
pub const DEFAULT_CHUNK_RECORDS: u32 = 4096;

/// Serialized size of one index entry (four `u32` fields + flags byte).
const INDEX_ENTRY_LEN: usize = 17;

/// Chunk flag bit: payload is LZ-compressed (raw otherwise).
const CHUNK_COMPRESSED: u8 = 1;

/// One chunk's index entry: everything a seek needs to know about the
/// chunk without touching its bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Encoded (uncompressed) chunk size in bytes.
    pub raw_len: u32,
    /// Bytes the chunk occupies in the store (== `raw_len` when stored
    /// raw).
    pub stored_len: u32,
    /// Records in the chunk.
    pub records: u32,
    /// Instructions across the chunk's records.
    pub instrs: u32,
    /// Whether the chunk is LZ-compressed.
    pub compressed: bool,
}

/// A chunk-compressed, indexed trace store — the v2 on-disk format.
///
/// Build one from a recorded or imported v1 [`Trace`] with
/// [`TraceStore::from_trace`]; go back with [`TraceStore::to_trace`]
/// (lossless, byte-identical serialization). [`TraceStore::replayer`]
/// feeds a simulator directly, decoding chunks lazily.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStore {
    header: TraceHeader,
    provenance: String,
    chunk_records: u32,
    index: Vec<ChunkEntry>,
    /// Byte offset of each chunk in `data` (derived from the index;
    /// kept so a seek lands in O(1) once it picks a chunk).
    offsets: Vec<usize>,
    /// Concatenated stored chunk bytes.
    data: Vec<u8>,
}

impl TraceStore {
    /// Converts a v1 trace into a store with [`DEFAULT_CHUNK_RECORDS`]
    /// records per chunk, attaching `provenance` (free-form origin
    /// string: capture tool, source file, conversion date — whatever
    /// identifies where the data came from).
    ///
    /// # Panics
    ///
    /// Panics if `trace`'s payload fails to decode (unreachable for a
    /// trace that passed [`Trace::from_bytes`] validation or came from
    /// a recorder).
    pub fn from_trace(trace: &Trace, provenance: &str) -> TraceStore {
        Self::from_trace_with(trace, provenance, DEFAULT_CHUNK_RECORDS)
    }

    /// [`TraceStore::from_trace`] with an explicit chunk record count
    /// (clamped into `1..=1<<20` — the index fields are `u32`).
    pub fn from_trace_with(trace: &Trace, provenance: &str, chunk_records: u32) -> TraceStore {
        let chunk_records = chunk_records.clamp(1, 1 << 20);
        let mut index = Vec::new();
        let mut offsets = Vec::new();
        let mut data = Vec::new();
        let mut raw = Vec::new();
        let mut prev_next = Addr::NULL;
        let mut records = 0u32;
        let mut instrs = 0u32;
        let mut flush = |raw: &mut Vec<u8>, records: &mut u32, instrs: &mut u32| {
            if *records == 0 {
                return;
            }
            let packed = crate::compress::compress(raw);
            let compressed = packed.len() < raw.len();
            let stored = if compressed { &packed } else { &*raw };
            offsets.push(data.len());
            index.push(ChunkEntry {
                raw_len: raw.len() as u32,
                stored_len: stored.len() as u32,
                records: *records,
                instrs: *instrs,
                compressed,
            });
            data.extend_from_slice(stored);
            raw.clear();
            *records = 0;
            *instrs = 0;
        };
        for rb in trace.reader() {
            let rb = rb.expect("source trace passed whole-file checksum validation");
            // Chunks delta-encode from a reset decoder state so each
            // decodes standalone — the seekability invariant.
            encode_record(&mut raw, &rb, &mut prev_next);
            records += 1;
            instrs += rb.instr_count() as u32;
            if records == chunk_records {
                flush(&mut raw, &mut records, &mut instrs);
                prev_next = Addr::NULL;
            }
        }
        flush(&mut raw, &mut records, &mut instrs);
        TraceStore {
            header: trace.header().clone(),
            provenance: provenance.to_string(),
            chunk_records,
            index,
            offsets,
            data,
        }
    }

    /// Reconstructs the flat v1 [`Trace`]. Lossless: the result
    /// serializes byte-identically to the trace the store was built
    /// from (record encoding is deterministic, and the header fields
    /// are carried through unchanged).
    ///
    /// # Panics
    ///
    /// Panics if a chunk fails to decompress or decode (unreachable
    /// for a store that passed [`TraceStore::from_bytes`] validation or
    /// came from [`TraceStore::from_trace`]).
    pub fn to_trace(&self) -> Trace {
        let mut writer = TraceWriter::new(
            self.header.name.clone(),
            self.header.seed,
            self.header.fingerprint,
        );
        for chunk in 0..self.index.len() {
            let buf = self
                .chunk_bytes(chunk)
                .expect("store chunks passed whole-file checksum validation");
            let mut pos = 0;
            let mut prev_next = Addr::NULL;
            for _ in 0..self.index[chunk].records {
                let rb = codec::decode_record(&buf, &mut pos, &mut prev_next)
                    .map_err(TraceError::from)
                    .expect("store chunks passed whole-file checksum validation");
                writer.record(&rb);
            }
        }
        writer.finish_with_fingerprint(self.header.fingerprint)
    }

    /// The trace metadata (shared with the v1 header: name, seed,
    /// counts, fingerprint).
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Free-form origin string attached at conversion time.
    pub fn provenance(&self) -> &str {
        &self.provenance
    }

    /// Nominal records per chunk the store was built with (the last
    /// chunk may hold fewer).
    pub fn chunk_records(&self) -> u32 {
        self.chunk_records
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> u32 {
        self.index.len() as u32
    }

    /// The index entry for `chunk`.
    pub fn chunk_entry(&self, chunk: u32) -> Option<ChunkEntry> {
        self.index.get(chunk as usize).copied()
    }

    /// Total stored chunk bytes (compressed where that won).
    pub fn stored_len(&self) -> usize {
        self.data.len()
    }

    /// Total encoded bytes before compression — the v1 payload size.
    pub fn raw_len(&self) -> usize {
        self.index.iter().map(|e| e.raw_len as usize).sum()
    }

    /// `true` when this store's stream was recorded against `program`
    /// (by fingerprint) — the precondition for faithful replay.
    pub fn matches(&self, program: &Program) -> bool {
        self.header.fingerprint == ProgramFingerprint::of(program)
    }

    /// A [`BlockSource`] replaying this store into a simulator,
    /// decoding chunks lazily and seeking via the index.
    pub fn replayer(&self) -> StoreReplayer<'_> {
        StoreReplayer {
            store: self,
            next_chunk: 0,
            buf: Vec::new(),
            pos: 0,
            prev_next: Addr::NULL,
            chunk_remaining: 0,
            replayed: 0,
            chunks_decoded: 0,
            records_decoded: 0,
        }
    }

    /// The decoded (decompressed) bytes of one chunk.
    fn chunk_bytes(&self, chunk: usize) -> Result<Vec<u8>, TraceError> {
        let entry = self.index[chunk];
        let at = self.offsets[chunk];
        let stored = &self.data[at..at + entry.stored_len as usize];
        if entry.compressed {
            crate::compress::decompress(stored, entry.raw_len as usize)
                .map_err(|what| TraceError::Corrupt(format!("chunk {chunk}: {what}")))
        } else {
            Ok(stored.to_vec())
        }
    }

    /// Serializes the store (shared fixed header, name, provenance,
    /// chunk geometry, index, chunk data) with the whole-file checksum
    /// patched in — the byte layout `docs/TRACE_FORMAT.md` specifies.
    pub fn to_bytes(&self) -> Vec<u8> {
        let h = &self.header;
        let name = h.name.as_bytes();
        assert!(name.len() <= u16::MAX as usize, "trace name too long");
        let prov = self.provenance.as_bytes();
        assert!(prov.len() <= u16::MAX as usize, "provenance too long");
        let mut out = Vec::with_capacity(
            HEADER_FIXED_LEN
                + name.len()
                + prov.len()
                + 10
                + self.index.len() * INDEX_ENTRY_LEN
                + self.data.len(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&STORE_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags (reserved)
        out.extend_from_slice(&h.seed.to_le_bytes());
        out.extend_from_slice(&h.block_count.to_le_bytes());
        out.extend_from_slice(&h.instr_count.to_le_bytes());
        out.extend_from_slice(&h.fingerprint.blocks.to_le_bytes());
        out.extend_from_slice(&h.fingerprint.digest.to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // checksum placeholder
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(prov.len() as u16).to_le_bytes());
        out.extend_from_slice(prov);
        out.extend_from_slice(&self.chunk_records.to_le_bytes());
        out.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for e in &self.index {
            out.extend_from_slice(&e.raw_len.to_le_bytes());
            out.extend_from_slice(&e.stored_len.to_le_bytes());
            out.extend_from_slice(&e.records.to_le_bytes());
            out.extend_from_slice(&e.instrs.to_le_bytes());
            out.push(if e.compressed { CHUNK_COMPRESSED } else { 0 });
        }
        out.extend_from_slice(&self.data);
        // Same checksum rule as v1: FNV-1a over the entire file with
        // the checksum field read as zero, then patched in.
        let checksum = fnv1a(&out);
        out[CHECKSUM_RANGE].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses a serialized store, validating magic, version, every
    /// length field, the index's internal consistency (chunk sums must
    /// reproduce the header's block/instruction/payload totals), and
    /// the whole-file checksum — truncated or bit-flipped files are
    /// rejected here with a descriptive [`TraceError`], never decoded.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceStore, TraceError> {
        if bytes.len() < HEADER_FIXED_LEN {
            return Err(if bytes.get(..4).is_some_and(|m| m == MAGIC) {
                TraceError::Truncated {
                    expected: HEADER_FIXED_LEN as u64,
                    actual: bytes.len() as u64,
                }
            } else {
                TraceError::BadMagic
            });
        }
        if bytes[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let u16_at = |off: usize| {
            u16::from_le_bytes(
                bytes[off..off + 2]
                    .try_into()
                    .expect("slice is exactly 2 bytes"),
            )
        };
        let u64_at = |off: usize| {
            u64::from_le_bytes(
                bytes[off..off + 8]
                    .try_into()
                    .expect("slice is exactly 8 bytes"),
            )
        };
        let version = u16_at(4);
        if version != STORE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let seed = u64_at(8);
        let block_count = u64_at(16);
        let instr_count = u64_at(24);
        let fingerprint = ProgramFingerprint {
            blocks: u64_at(32),
            digest: u64_at(40),
        };
        let payload_len = u64_at(48);
        let checksum = u64_at(56);
        let name_len = u16_at(64) as usize;
        // Bounds-checked tail reads: a corrupted length field must
        // surface as a clean Truncated/Corrupt error, never a slice
        // panic or an overflow.
        let truncated = |expected: u64| TraceError::Truncated {
            expected,
            actual: bytes.len() as u64,
        };
        let need = |pos: usize, len: usize| -> Result<usize, TraceError> {
            let end = (pos as u64)
                .checked_add(len as u64)
                .ok_or_else(|| TraceError::Corrupt("header length fields overflow".into()))?;
            if bytes.len() as u64 >= end {
                Ok(end as usize)
            } else {
                Err(truncated(end))
            }
        };
        let mut pos = need(HEADER_FIXED_LEN, name_len)?;
        let name_range = HEADER_FIXED_LEN..pos;
        let end = need(pos, 2)?;
        let prov_len = u16_at(pos) as usize;
        pos = need(end, prov_len)?;
        let prov_range = end..pos;
        let end = need(pos, 8)?;
        let chunk_records = u32::from_le_bytes(
            bytes[pos..pos + 4]
                .try_into()
                .expect("slice is exactly 4 bytes"),
        );
        let chunk_count = u32::from_le_bytes(
            bytes[pos + 4..pos + 8]
                .try_into()
                .expect("slice is exactly 4 bytes"),
        ) as usize;
        pos = end;
        let index_end = need(
            pos,
            chunk_count
                .checked_mul(INDEX_ENTRY_LEN)
                .ok_or_else(|| TraceError::Corrupt("chunk count overflows the index".into()))?,
        )?;
        let total = (index_end as u64)
            .checked_add(payload_len)
            .ok_or_else(|| TraceError::Corrupt("header length fields overflow".into()))?;
        if (bytes.len() as u64) < total {
            return Err(truncated(total));
        }
        let total = total as usize;
        // Validate the checksum before trusting any field further —
        // same whole-file rule as v1.
        let stored = fnv1a_update(
            fnv1a_update(
                fnv1a_update(FNV_OFFSET, &bytes[..CHECKSUM_RANGE.start]),
                &[0u8; 8],
            ),
            &bytes[CHECKSUM_RANGE.end..total],
        );
        if stored != checksum {
            return Err(TraceError::ChecksumMismatch);
        }
        let name = std::str::from_utf8(&bytes[name_range])
            .map_err(|_| TraceError::Corrupt("trace name is not UTF-8".into()))?
            .to_string();
        let provenance = std::str::from_utf8(&bytes[prov_range])
            .map_err(|_| TraceError::Corrupt("provenance is not UTF-8".into()))?
            .to_string();
        let mut index = Vec::with_capacity(chunk_count);
        let mut offsets = Vec::with_capacity(chunk_count);
        let mut at = pos;
        let (mut sum_stored, mut sum_records, mut sum_instrs) = (0u64, 0u64, 0u64);
        for _ in 0..chunk_count {
            let u32_at = |off: usize| {
                u32::from_le_bytes(
                    bytes[off..off + 4]
                        .try_into()
                        .expect("slice is exactly 4 bytes"),
                )
            };
            let flags = bytes[at + 16];
            if flags & !CHUNK_COMPRESSED != 0 {
                return Err(TraceError::Corrupt(format!(
                    "reserved chunk flag set ({flags:#04x})"
                )));
            }
            let entry = ChunkEntry {
                raw_len: u32_at(at),
                stored_len: u32_at(at + 4),
                records: u32_at(at + 8),
                instrs: u32_at(at + 12),
                compressed: flags & CHUNK_COMPRESSED != 0,
            };
            if entry.records == 0 {
                return Err(TraceError::Corrupt("empty chunk in index".into()));
            }
            offsets.push(sum_stored as usize);
            sum_stored += entry.stored_len as u64;
            sum_records += entry.records as u64;
            sum_instrs += entry.instrs as u64;
            index.push(entry);
            at += INDEX_ENTRY_LEN;
        }
        // The index must reproduce the header totals exactly — a
        // mismatch means the file lies about its own geometry.
        if sum_stored != payload_len {
            return Err(TraceError::Corrupt(format!(
                "index stored sizes sum to {sum_stored}, header claims {payload_len}"
            )));
        }
        if sum_records != block_count {
            return Err(TraceError::Corrupt(format!(
                "index records sum to {sum_records}, header claims {block_count}"
            )));
        }
        if sum_instrs != instr_count {
            return Err(TraceError::Corrupt(format!(
                "index instructions sum to {sum_instrs}, header claims {instr_count}"
            )));
        }
        Ok(TraceStore {
            header: TraceHeader {
                name,
                seed,
                block_count,
                instr_count,
                fingerprint,
            },
            provenance,
            chunk_records,
            index,
            offsets,
            data: bytes[index_end..total].to_vec(),
        })
    }

    /// Writes the serialized store to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Reads and validates a store file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<TraceStore, TraceError> {
        TraceStore::from_bytes(&std::fs::read(path)?)
    }
}

/// Replays a [`TraceStore`] as the simulator's [`BlockSource`],
/// decoding chunks lazily: `next_block` decompresses one chunk at a
/// time into an owned buffer, and [`BlockSource::skip_instrs`] walks
/// the index past whole chunks — decompressing *only* the chunk the
/// seek lands in. [`StoreReplayer::chunks_decoded`] and
/// [`StoreReplayer::records_decoded`] expose exactly how much work the
/// replay did, which the seek tests pin.
pub struct StoreReplayer<'s> {
    store: &'s TraceStore,
    /// Index of the next chunk to load.
    next_chunk: usize,
    /// Decoded bytes of the current chunk.
    buf: Vec<u8>,
    pos: usize,
    prev_next: Addr,
    /// Records left undecoded in `buf`.
    chunk_remaining: u32,
    replayed: u64,
    chunks_decoded: u64,
    records_decoded: u64,
}

impl StoreReplayer<'_> {
    /// Blocks replayed (decoded or skipped) so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Chunks decompressed/loaded so far — whole-chunk seeks do not
    /// count, which is the point of the index.
    pub fn chunks_decoded(&self) -> u64 {
        self.chunks_decoded
    }

    /// Records individually decoded (including decode-skips) so far;
    /// records passed over by whole-chunk seeks do not count.
    pub fn records_decoded(&self) -> u64 {
        self.records_decoded
    }

    /// Loads the next chunk into `buf`, resetting the decoder state.
    /// Returns `false` when the store is exhausted.
    fn load_next_chunk(&mut self) -> bool {
        let Some(entry) = self.store.index.get(self.next_chunk) else {
            return false;
        };
        match self.store.chunk_bytes(self.next_chunk) {
            Ok(buf) => self.buf = buf,
            // audit-allow(no-unchecked-panic): corrupt chunk mid-replay is unrecoverable — the store passed its whole-file checksum at load, so this is a programming error, and returning None would silently truncate the stream
            Err(e) => panic!(
                "store `{}` chunk {} failed to decode: {e}",
                self.store.header.name, self.next_chunk,
            ),
        }
        self.pos = 0;
        self.prev_next = Addr::NULL;
        self.chunk_remaining = entry.records;
        self.chunks_decoded += 1;
        self.next_chunk += 1;
        true
    }
}

impl BlockSource for StoreReplayer<'_> {
    /// Returns `None` when the store runs out of records; otherwise
    /// exactly the recorded stream, chunk by chunk.
    ///
    /// # Panics
    ///
    /// Panics when a chunk fails to decompress or a record fails to
    /// decode: the file passed the whole-file checksum at load, so a
    /// structural failure here is a programming error — silently
    /// truncating would replay a different stream.
    #[inline]
    fn next_block(&mut self) -> Option<RetiredBlock> {
        if self.chunk_remaining == 0 && !self.load_next_chunk() {
            return None;
        }
        match codec::decode_record(&self.buf, &mut self.pos, &mut self.prev_next) {
            Ok(rb) => {
                self.chunk_remaining -= 1;
                self.replayed += 1;
                self.records_decoded += 1;
                Some(rb)
            }
            // audit-allow(no-unchecked-panic): corrupt record mid-replay is unrecoverable — see load_next_chunk; the `# Panics` doc above is the contract
            Err(e) => panic!(
                "store `{}` failed to decode at block {}: {}",
                self.store.header.name,
                self.replayed + 1,
                TraceError::from(e),
            ),
        }
    }

    /// Seekable fast-forward over the index: whole chunks whose
    /// instruction counts fit under the target are passed over without
    /// decompression; only the chunk the seek lands in is decoded (by
    /// decode-skip, address chain only). This is what makes sampled
    /// simulation over an on-disk store cheap.
    ///
    /// # Panics
    ///
    /// Panics on a structural decode failure, like
    /// [`Self::next_block`].
    #[inline]
    fn skip_instrs(&mut self, min_instrs: u64) -> u64 {
        let mut skipped = 0u64;
        loop {
            // Drain whatever is already decoded.
            while skipped < min_instrs && self.chunk_remaining > 0 {
                match codec::skip_record(&self.buf, &mut self.pos, &mut self.prev_next) {
                    Ok(instrs) => {
                        self.chunk_remaining -= 1;
                        self.replayed += 1;
                        self.records_decoded += 1;
                        skipped += instrs;
                    }
                    // audit-allow(no-unchecked-panic): corrupt record mid-skip is unrecoverable — see next_block; the `# Panics` doc above is the contract
                    Err(e) => panic!(
                        "store `{}` failed to decode at block {}: {}",
                        self.store.header.name,
                        self.replayed + 1,
                        TraceError::from(e),
                    ),
                }
            }
            if skipped >= min_instrs {
                return skipped;
            }
            match self.store.index.get(self.next_chunk) {
                None => return skipped, // exhausted: report the shortfall
                Some(entry) if skipped + entry.instrs as u64 <= min_instrs => {
                    // The whole chunk fits under the target: account
                    // for it via the index, no decompression.
                    skipped += entry.instrs as u64;
                    self.replayed += entry.records as u64;
                    self.next_chunk += 1;
                }
                Some(_) => {
                    // The target lands inside this chunk: decode it.
                    self.load_next_chunk();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cfg::{workloads, Executor};
    use proptest::prelude::*;

    fn small_trace() -> (Program, Trace) {
        let program = workloads::nutch().scaled(0.05).build();
        let trace = Trace::record(&program, 7, 50_000);
        (program, trace)
    }

    #[test]
    fn store_round_trips_losslessly() {
        let (program, trace) = small_trace();
        let store = TraceStore::from_trace_with(&trace, "unit test", 512);
        assert!(store.chunk_count() > 4, "test needs several chunks");
        assert_eq!(store.header(), trace.header());
        assert_eq!(store.provenance(), "unit test");
        assert!(store.matches(&program));
        // Lossless reconstruction, down to the serialized bytes.
        assert_eq!(store.to_trace(), trace);
        assert_eq!(store.to_trace().to_bytes(), trace.to_bytes());
        // And the container itself round-trips.
        let back = TraceStore::from_bytes(&store.to_bytes()).expect("round trip");
        assert_eq!(back, store);
    }

    #[test]
    fn store_compresses_the_payload() {
        let (_, trace) = small_trace();
        let store = TraceStore::from_trace(&trace, "compression check");
        // Per-chunk delta resets cost a few bytes over the flat
        // payload (each chunk's first record carries a full address) —
        // that's the price of seekability, and it is tiny.
        assert!(store.raw_len() >= trace.payload_len());
        assert!(store.raw_len() < trace.payload_len() + 16 * store.chunk_count() as usize);
        assert!(
            store.stored_len() < store.raw_len(),
            "stored {} raw {}",
            store.stored_len(),
            store.raw_len(),
        );
    }

    #[test]
    fn replayer_matches_flat_replay_and_live_walk() {
        let (program, trace) = small_trace();
        let store = TraceStore::from_trace_with(&trace, "replay test", 256);
        let mut live = Executor::new(&program, 7);
        let mut flat = trace.replayer();
        let mut chunked = store.replayer();
        for _ in 0..trace.header().block_count {
            let expected = live.next_block();
            assert_eq!(flat.next_block(), Some(expected));
            assert_eq!(chunked.next_block(), Some(expected));
        }
        assert_eq!(chunked.next_block(), None, "exhaustion yields None");
        assert_eq!(chunked.next_block(), None, "exhaustion is sticky");
        assert_eq!(chunked.replayed(), trace.header().block_count);
    }

    #[test]
    fn seek_skips_chunks_without_decoding_them() {
        let (_, trace) = small_trace();
        let chunk_records = 256u32;
        let store = TraceStore::from_trace_with(&trace, "seek test", chunk_records);
        assert!(store.chunk_count() >= 8, "test needs many chunks");
        // Aim deep into the store: many chunks should be passed over
        // purely via the index.
        let target = trace.header().instr_count * 3 / 4;
        let mut replay = store.replayer();
        let skipped = replay.skip_instrs(target);
        assert!(skipped >= target);
        assert_eq!(
            replay.chunks_decoded(),
            1,
            "only the landing chunk is decoded"
        );
        assert!(
            replay.records_decoded() <= chunk_records as u64,
            "decoded {} records for a seek into a {}-record chunk",
            replay.records_decoded(),
            chunk_records,
        );
        // And the post-seek stream position is exactly where a
        // decode-everything replayer lands.
        let mut reference = trace.replayer();
        let ref_skipped = reference.skip_instrs(target);
        assert_eq!(skipped, ref_skipped);
        assert_eq!(replay.replayed(), reference.replayed());
        for _ in 0..64 {
            assert_eq!(replay.next_block(), reference.next_block());
        }
    }

    #[test]
    fn seek_past_the_end_reports_the_shortfall() {
        let (_, trace) = small_trace();
        let store = TraceStore::from_trace_with(&trace, "overrun test", 256);
        let mut replay = store.replayer();
        assert_eq!(replay.skip_instrs(u64::MAX), trace.header().instr_count);
        assert_eq!(replay.next_block(), None);
        assert_eq!(replay.chunks_decoded(), 0, "a pure overrun never decodes");
    }

    #[test]
    fn corrupt_and_truncated_stores_are_rejected() {
        let (_, trace) = small_trace();
        let store = TraceStore::from_trace_with(&trace, "corruption test", 512);
        let bytes = store.to_bytes();

        assert!(matches!(
            TraceStore::from_bytes(&[]),
            Err(TraceError::BadMagic)
        ));
        assert!(matches!(
            TraceStore::from_bytes(b"not a store"),
            Err(TraceError::BadMagic)
        ));
        assert!(matches!(
            TraceStore::from_bytes(&bytes[..bytes.len() / 2]),
            Err(TraceError::Truncated { .. })
        ));
        // A v1 flat trace is not a store: named version error both ways.
        assert!(matches!(
            TraceStore::from_bytes(&trace.to_bytes()),
            Err(TraceError::UnsupportedVersion(1))
        ));
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(2))
        ));
        // Any bit flip anywhere fails the whole-file checksum.
        for at in [8usize, 30, 70, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x40;
            assert!(
                matches!(
                    TraceStore::from_bytes(&flipped),
                    Err(TraceError::ChecksumMismatch)
                        | Err(TraceError::Corrupt(_))
                        | Err(TraceError::Truncated { .. })
                ),
                "flip at {at} must be rejected",
            );
        }
    }

    proptest! {
        // Records -> chunked store -> seek -> replay lands exactly
        // where direct decode-everything replay lands, for arbitrary
        // chunk sizes and seek targets.
        #[test]
        fn seek_equals_direct_replay(
            chunk_records in 1u32..600,
            target_num in 0u64..1000,
        ) {
            let program = workloads::streaming().scaled(0.05).build();
            let trace = Trace::record(&program, 11, 20_000);
            let store = TraceStore::from_trace_with(&trace, "prop", chunk_records);
            let target = trace.header().instr_count * target_num / 1000;

            let mut via_store = store.replayer();
            let mut direct = trace.replayer();
            let a = via_store.skip_instrs(target);
            let b = direct.skip_instrs(target);
            prop_assert_eq!(a, b);
            prop_assert_eq!(via_store.replayed(), direct.replayed());
            for _ in 0..32 {
                prop_assert_eq!(via_store.next_block(), direct.next_block());
            }
        }

        // The container round-trips for arbitrary chunk geometry.
        #[test]
        fn container_round_trips(chunk_records in 1u32..2000) {
            let program = workloads::apache().scaled(0.05).build();
            let trace = Trace::record(&program, 13, 10_000);
            let store = TraceStore::from_trace_with(&trace, "prop rt", chunk_records);
            let back = TraceStore::from_bytes(&store.to_bytes()).expect("round trip");
            prop_assert_eq!(&back, &store);
            prop_assert_eq!(back.to_trace().to_bytes(), trace.to_bytes());
        }
    }
}
