//! Importers bridging external trace formats into [`Trace`].
//!
//! The long-term goal (ROADMAP: scenario diversity) is to replay real
//! captured workloads — CBP/ChampSim-style branch traces — through the
//! timing model. This module is the format bridge: it converts an
//! external branch stream into the native record format. Imported
//! traces carry a **content fingerprint** — an order-sensitive digest
//! of the imported record stream itself (see [`ContentFingerprint`]) —
//! so distinct captures are distinguishable and content-addressed
//! tooling (result caches keyed by trace identity) works on them. They
//! cannot yet drive the simulator, which needs a matching static
//! [`Program`](fe_cfg::Program) image (BTB contents, predecode,
//! footprints) that external traces do not ship; reconstructing a
//! program skeleton from the trace itself is the planned follow-up.
//!
//! The accepted interchange format is textual, one branch record per
//! line (`#` comments and blank lines ignored):
//!
//! ```text
//! <pc-hex> <target-hex> <kind> <taken>
//! ```
//!
//! where `kind` is one of `C`onditional, `J`ump, ca`L`l, `R`eturn,
//! `T`rap, trap-`E`xit, and `taken` is `0`/`1` — the fields a CBP
//! branch record carries. Each branch becomes a single-instruction
//! basic block (external traces do not delimit block starts).

use fe_model::addr::VA_BITS;
use fe_model::{Addr, BasicBlock, BranchKind, RetiredBlock, INSTR_BYTES};

use crate::codec::fnv1a_update;
use crate::{ProgramFingerprint, Trace, TraceError, TraceWriter};

/// Running content fingerprint over the imported record stream.
///
/// External traces ship no static program image, so an import's
/// identity *is* its branch stream: the digest folds every imported
/// record's fields in order, and `blocks` counts them — giving each
/// distinct capture a distinct, deterministic [`ProgramFingerprint`]
/// (never [`ProgramFingerprint::UNKNOWN`], whose `blocks` is 0 while a
/// valid import has at least one record). Content addressing — result
/// caches keyed by trace identity — needs this; the sentinel would
/// alias every import to one cache line.
struct ContentFingerprint {
    digest: u64,
    blocks: u64,
}

impl ContentFingerprint {
    /// FNV-1a offset basis — matches the digest seed used everywhere
    /// else in the codec.
    fn new() -> Self {
        ContentFingerprint {
            digest: 0xcbf2_9ce4_8422_2325,
            blocks: 0,
        }
    }

    fn fold(&mut self, rb: &RetiredBlock) {
        let mut bytes = [0u8; 26];
        bytes[..8].copy_from_slice(&rb.block.start.get().to_le_bytes());
        bytes[8..16].copy_from_slice(&rb.block.target.get().to_le_bytes());
        bytes[16..24].copy_from_slice(&rb.next_pc.get().to_le_bytes());
        bytes[24] = rb.block.kind as u8;
        bytes[25] = rb.taken as u8;
        self.digest = fnv1a_update(self.digest, &bytes);
        self.blocks += 1;
    }

    fn finish(self) -> ProgramFingerprint {
        ProgramFingerprint {
            blocks: self.blocks,
            digest: self.digest,
        }
    }
}

fn kind_from_letter(letter: &str) -> Option<BranchKind> {
    match letter {
        "C" | "c" => Some(BranchKind::Conditional),
        "J" | "j" => Some(BranchKind::Jump),
        "L" | "l" => Some(BranchKind::Call),
        "R" | "r" => Some(BranchKind::Return),
        "T" | "t" => Some(BranchKind::Trap),
        "E" | "e" => Some(BranchKind::TrapReturn),
        _ => None,
    }
}

/// Outcome of a lossy import: the trace plus an account of what the
/// parser had to drop, so callers can report data quality instead of
/// records vanishing silently.
#[derive(Debug)]
pub struct ImportReport {
    /// The imported trace.
    pub trace: Trace,
    /// Branch records imported.
    pub imported: u64,
    /// Malformed lines skipped (blank lines and `#` comments are not
    /// records and are not counted).
    pub skipped: u64,
    /// The first skipped line's line-numbered parse error, kept so a
    /// lossy import can still say *why* records went missing.
    pub first_error: Option<String>,
}

/// Parses one record line. `Ok(None)` for blank/comment lines; a
/// line-numbered [`TraceError::Corrupt`] for malformed ones.
fn parse_cbp_line(line: &str, lineno: usize) -> Result<Option<RetiredBlock>, TraceError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let mut field = |what: &str| {
        fields.next().ok_or_else(|| {
            TraceError::Corrupt(format!("line {}: missing {what} in `{line}`", lineno + 1))
        })
    };
    let pc = parse_addr(field("pc")?, lineno)?;
    let target = parse_addr(field("target")?, lineno)?;
    let kind_field = field("kind")?;
    let kind = kind_from_letter(kind_field).ok_or_else(|| {
        TraceError::Corrupt(format!(
            "line {}: unknown branch kind `{kind_field}`",
            lineno + 1
        ))
    })?;
    let taken = match field("taken")? {
        "0" => false,
        "1" => true,
        other => {
            return Err(TraceError::Corrupt(format!(
                "line {}: taken must be 0 or 1, got `{other}`",
                lineno + 1
            )))
        }
    };
    if taken && kind.is_return() && target == 0 {
        return Err(TraceError::Corrupt(format!(
            "line {}: taken return needs its dynamic target",
            lineno + 1
        )));
    }
    let block = BasicBlock::new(
        Addr::new(pc),
        1,
        kind,
        // Returns read the RAS, not a static target.
        if kind.is_return() {
            Addr::NULL
        } else {
            Addr::new(target)
        },
    );
    let next_pc = if taken {
        Addr::new(target)
    } else {
        Addr::new(pc + INSTR_BYTES)
    };
    Ok(Some(RetiredBlock {
        block,
        taken,
        next_pc,
    }))
}

/// Imports a CBP-style textual branch trace (see module docs),
/// rejecting the whole import on the first malformed line with a
/// line-numbered error.
///
/// Returns a valid [`Trace`] fingerprinted by its own content (a
/// digest of the imported record stream — deterministic, and distinct
/// for distinct captures); it round-trips through the binary format
/// and tooling (`trace inspect`), but replaying it requires a matching
/// program image, which imports do not yet carry. For tolerating dirty
/// captures, see [`import_cbp_lossy`].
pub fn import_cbp(text: &str, name: &str) -> Result<Trace, TraceError> {
    let mut writer = TraceWriter::new(name, 0, ProgramFingerprint::UNKNOWN);
    let mut fingerprint = ContentFingerprint::new();
    for (lineno, line) in text.lines().enumerate() {
        if let Some(rb) = parse_cbp_line(line, lineno)? {
            writer.record(&rb);
            fingerprint.fold(&rb);
        }
    }
    if writer.block_count() == 0 {
        return Err(TraceError::Corrupt(
            "import contains no branch records".into(),
        ));
    }
    Ok(writer.finish_with_fingerprint(fingerprint.finish()))
}

/// Like [`import_cbp`], but skips malformed lines instead of failing —
/// with the skips *counted* and the first parse error preserved in the
/// returned [`ImportReport`], never dropped silently. Real capture
/// pipelines truncate lines and interleave garbage; a lossy import
/// that accounts for its losses beats both a stonewalling strict
/// parser and a silent one.
///
/// Still errors when not a single record parses (the input is not a
/// CBP trace at all).
pub fn import_cbp_lossy(text: &str, name: &str) -> Result<ImportReport, TraceError> {
    let mut writer = TraceWriter::new(name, 0, ProgramFingerprint::UNKNOWN);
    let mut fingerprint = ContentFingerprint::new();
    let mut skipped = 0u64;
    let mut first_error = None;
    for (lineno, line) in text.lines().enumerate() {
        match parse_cbp_line(line, lineno) {
            Ok(Some(rb)) => {
                writer.record(&rb);
                fingerprint.fold(&rb);
            }
            Ok(None) => {}
            Err(e) => {
                skipped += 1;
                if first_error.is_none() {
                    first_error = Some(e.to_string());
                }
            }
        }
    }
    if writer.block_count() == 0 {
        return Err(TraceError::Corrupt(match first_error {
            Some(e) => format!("import contains no parseable branch records (first error: {e})"),
            None => "import contains no branch records".into(),
        }));
    }
    let imported = writer.block_count();
    Ok(ImportReport {
        trace: writer.finish_with_fingerprint(fingerprint.finish()),
        imported,
        skipped,
        first_error,
    })
}

fn parse_addr(field: &str, lineno: usize) -> Result<u64, TraceError> {
    let digits = field
        .strip_prefix("0x")
        .or_else(|| field.strip_prefix("0X"))
        .unwrap_or(field);
    let value = u64::from_str_radix(digits, 16)
        .map_err(|_| TraceError::Corrupt(format!("line {}: bad hex `{field}`", lineno + 1)))?;
    // Reject rather than silently mask to the modeled address space.
    if value >= 1 << VA_BITS {
        return Err(TraceError::Corrupt(format!(
            "line {}: address {field} exceeds the {VA_BITS}-bit address space",
            lineno + 1,
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imports_and_round_trips() {
        let text = "# demo\n\
                    0x1000 0x2000 L 1\n\
                    0x2000 0x0 C 0\n\
                    0x2004 0x1004 R 1\n";
        let trace = import_cbp(text, "demo").expect("imports");
        assert_eq!(trace.header().block_count, 3);
        assert_eq!(trace.header().instr_count, 3);
        assert!(
            !trace.header().fingerprint.is_unknown(),
            "imports carry a real content fingerprint"
        );

        let records: Vec<_> = trace.reader().map(|r| r.unwrap()).collect();
        assert_eq!(records[0].block.kind, BranchKind::Call);
        assert_eq!(records[0].next_pc, Addr::new(0x2000));
        assert!(!records[1].taken);
        assert_eq!(records[1].next_pc, Addr::new(0x2004));
        assert_eq!(records[2].next_pc, Addr::new(0x1004));

        let back = Trace::from_bytes(&trace.to_bytes()).expect("binary round trip");
        assert_eq!(back, trace);
    }

    #[test]
    fn content_fingerprint_identifies_the_capture() {
        let a = "0x1000 0x2000 L 1\n0x2000 0x0 C 0\n";
        let b = "0x1000 0x2000 L 1\n0x2000 0x0 C 1\n"; // one flipped outcome
        let fp = |text: &str| import_cbp(text, "t").unwrap().header().fingerprint;
        assert_eq!(fp(a), fp(a), "fingerprint is deterministic");
        assert_ne!(fp(a), fp(b), "different content, different fingerprint");
        // Order matters: the stream is the identity, not a record set.
        let swapped = "0x2000 0x0 C 0\n0x1000 0x2000 L 1\n";
        assert_ne!(fp(a), fp(swapped));
        // The name does not enter the fingerprint (same capture under
        // two filenames is the same content).
        assert_eq!(
            import_cbp(a, "x").unwrap().header().fingerprint,
            import_cbp(a, "y").unwrap().header().fingerprint,
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(import_cbp("", "empty").is_err());
        assert!(import_cbp("zzzz 0x0 C 0", "badhex").is_err());
        assert!(import_cbp("0x1000 0x0 Q 0", "badkind").is_err());
        assert!(import_cbp("0x1000 0x0 C 2", "badtaken").is_err());
        assert!(import_cbp("0x1000 0x0 R 1", "badreturn").is_err());
        // Out-of-space addresses are rejected, not silently masked
        // (and a full-u64 pc must not overflow the fall-through math).
        assert!(import_cbp("ffffffffffffffff 0x0 C 0", "hugepc").is_err());
        assert!(import_cbp("0x1000 1000000000000 J 1", "hugetarget").is_err());
    }

    #[test]
    fn strict_errors_carry_the_line_number() {
        let text = "0x1000 0x2000 L 1\n0x2000 0x0 Q 0\n";
        let err = import_cbp(text, "badkind").expect_err("line 2 is malformed");
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "error must name the line: {msg}");
        assert!(msg.contains('Q'), "error must name the bad field: {msg}");
    }

    #[test]
    fn lossy_import_counts_skipped_records() {
        let text = "# capture with interleaved garbage\n\
                    0x1000 0x2000 L 1\n\
                    zzzz not-a-record\n\
                    0x2000 0x0 C 0\n\
                    0x2004 0x0 C 9\n\
                    0x2004 0x1004 R 1\n";
        let report = import_cbp_lossy(text, "dirty").expect("imports the good lines");
        assert_eq!(report.imported, 3);
        assert_eq!(report.skipped, 2, "comments and blanks are not skips");
        assert_eq!(report.trace.header().block_count, 3);
        let first = report.first_error.expect("first error preserved");
        assert!(
            first.contains("line 3"),
            "first error names its line: {first}"
        );

        // The lossy trace matches a strict import of only the good
        // lines (record-for-record, not just count).
        let clean = "0x1000 0x2000 L 1\n0x2000 0x0 C 0\n0x2004 0x1004 R 1\n";
        let strict = import_cbp(clean, "dirty").expect("clean import");
        assert_eq!(report.trace, strict);
    }

    #[test]
    fn lossy_import_still_rejects_recordless_input() {
        let err = import_cbp_lossy("garbage\nmore garbage\n", "junk").expect_err("no records");
        assert!(err.to_string().contains("first error"));
        assert!(import_cbp_lossy("# only comments\n", "comments").is_err());
    }
}
