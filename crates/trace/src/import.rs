//! Importers bridging external trace formats into [`Trace`].
//!
//! The long-term goal (ROADMAP: scenario diversity) is to replay real
//! captured workloads — CBP/ChampSim-style branch traces — through the
//! timing model. This module is the format bridge: it converts an
//! external branch stream into the native record format. It is an
//! **experimental stub**: imported traces carry
//! [`ProgramFingerprint::UNKNOWN`] and cannot yet drive the simulator,
//! which needs a matching static [`Program`](fe_cfg::Program) image
//! (BTB contents, predecode, footprints) that external traces do not
//! ship. Reconstructing a program skeleton from the trace itself is
//! the planned follow-up.
//!
//! The accepted interchange format is textual, one branch record per
//! line (`#` comments and blank lines ignored):
//!
//! ```text
//! <pc-hex> <target-hex> <kind> <taken>
//! ```
//!
//! where `kind` is one of `C`onditional, `J`ump, ca`L`l, `R`eturn,
//! `T`rap, trap-`E`xit, and `taken` is `0`/`1` — the fields a CBP
//! branch record carries. Each branch becomes a single-instruction
//! basic block (external traces do not delimit block starts).

use fe_model::addr::VA_BITS;
use fe_model::{Addr, BasicBlock, BranchKind, RetiredBlock, INSTR_BYTES};

use crate::{ProgramFingerprint, Trace, TraceError, TraceWriter};

fn kind_from_letter(letter: &str) -> Option<BranchKind> {
    match letter {
        "C" | "c" => Some(BranchKind::Conditional),
        "J" | "j" => Some(BranchKind::Jump),
        "L" | "l" => Some(BranchKind::Call),
        "R" | "r" => Some(BranchKind::Return),
        "T" | "t" => Some(BranchKind::Trap),
        "E" | "e" => Some(BranchKind::TrapReturn),
        _ => None,
    }
}

/// Imports a CBP-style textual branch trace (see module docs).
///
/// Returns a valid [`Trace`] whose fingerprint is
/// [`ProgramFingerprint::UNKNOWN`]; it round-trips through the binary
/// format and tooling (`trace inspect`), but replaying it requires a
/// matching program image, which imports do not yet carry.
pub fn import_cbp(text: &str, name: &str) -> Result<Trace, TraceError> {
    let mut writer = TraceWriter::new(name, 0, ProgramFingerprint::UNKNOWN);
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let mut field = |what: &str| {
            fields
                .next()
                .ok_or_else(|| TraceError::Corrupt(format!("line {}: missing {what}", lineno + 1)))
        };
        let pc = parse_addr(field("pc")?, lineno)?;
        let target = parse_addr(field("target")?, lineno)?;
        let kind = kind_from_letter(field("kind")?).ok_or_else(|| {
            TraceError::Corrupt(format!("line {}: unknown branch kind", lineno + 1))
        })?;
        let taken = match field("taken")? {
            "0" => false,
            "1" => true,
            other => {
                return Err(TraceError::Corrupt(format!(
                    "line {}: taken must be 0 or 1, got `{other}`",
                    lineno + 1
                )))
            }
        };
        if taken && kind.is_return() && target == 0 {
            return Err(TraceError::Corrupt(format!(
                "line {}: taken return needs its dynamic target",
                lineno + 1
            )));
        }
        let block = BasicBlock::new(
            Addr::new(pc),
            1,
            kind,
            // Returns read the RAS, not a static target.
            if kind.is_return() {
                Addr::NULL
            } else {
                Addr::new(target)
            },
        );
        let next_pc = if taken {
            Addr::new(target)
        } else {
            Addr::new(pc + INSTR_BYTES)
        };
        writer.record(&RetiredBlock {
            block,
            taken,
            next_pc,
        });
    }
    if writer.block_count() == 0 {
        return Err(TraceError::Corrupt(
            "import contains no branch records".into(),
        ));
    }
    Ok(writer.finish())
}

fn parse_addr(field: &str, lineno: usize) -> Result<u64, TraceError> {
    let digits = field
        .strip_prefix("0x")
        .or_else(|| field.strip_prefix("0X"))
        .unwrap_or(field);
    let value = u64::from_str_radix(digits, 16)
        .map_err(|_| TraceError::Corrupt(format!("line {}: bad hex `{field}`", lineno + 1)))?;
    // Reject rather than silently mask to the modeled address space.
    if value >= 1 << VA_BITS {
        return Err(TraceError::Corrupt(format!(
            "line {}: address {field} exceeds the {VA_BITS}-bit address space",
            lineno + 1,
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imports_and_round_trips() {
        let text = "# demo\n\
                    0x1000 0x2000 L 1\n\
                    0x2000 0x0 C 0\n\
                    0x2004 0x1004 R 1\n";
        let trace = import_cbp(text, "demo").expect("imports");
        assert_eq!(trace.header().block_count, 3);
        assert_eq!(trace.header().instr_count, 3);
        assert!(trace.header().fingerprint.is_unknown());

        let records: Vec<_> = trace.reader().map(|r| r.unwrap()).collect();
        assert_eq!(records[0].block.kind, BranchKind::Call);
        assert_eq!(records[0].next_pc, Addr::new(0x2000));
        assert!(!records[1].taken);
        assert_eq!(records[1].next_pc, Addr::new(0x2004));
        assert_eq!(records[2].next_pc, Addr::new(0x1004));

        let back = Trace::from_bytes(&trace.to_bytes()).expect("binary round trip");
        assert_eq!(back, trace);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(import_cbp("", "empty").is_err());
        assert!(import_cbp("zzzz 0x0 C 0", "badhex").is_err());
        assert!(import_cbp("0x1000 0x0 Q 0", "badkind").is_err());
        assert!(import_cbp("0x1000 0x0 C 2", "badtaken").is_err());
        assert!(import_cbp("0x1000 0x0 R 1", "badreturn").is_err());
        // Out-of-space addresses are rejected, not silently masked
        // (and a full-u64 pc must not overflow the fall-through math).
        assert!(import_cbp("ffffffffffffffff 0x0 C 0", "hugepc").is_err());
        assert!(import_cbp("0x1000 1000000000000 J 1", "hugetarget").is_err());
    }
}
