//! Importers bridging external trace formats into [`Trace`].
//!
//! The long-term goal (ROADMAP: scenario diversity) is to replay real
//! captured workloads — CBP/ChampSim-style branch traces — through the
//! timing model. This module is the format bridge: it converts an
//! external branch stream into the native record format. Imported
//! traces carry a **content fingerprint** — an order-sensitive digest
//! of the imported record stream itself (the private `ContentFingerprint`) —
//! so distinct captures are distinguishable and content-addressed
//! tooling (result caches keyed by trace identity) works on them. They
//! cannot yet drive the simulator, which needs a matching static
//! [`Program`](fe_cfg::Program) image (BTB contents, predecode,
//! footprints) that external traces do not ship; reconstructing a
//! program skeleton from the trace itself is the planned follow-up.
//!
//! Two interchange formats are accepted, carrying the same fields a
//! CBP branch record does. The textual one is one branch record per
//! line (`#` comments and blank lines ignored):
//!
//! ```text
//! <pc-hex> <target-hex> <kind> <taken>
//! ```
//!
//! where `kind` is one of `C`onditional, `J`ump, ca`L`l, `R`eturn,
//! `T`rap, trap-`E`xit, and `taken` is `0`/`1`. The binary one (see
//! [`import_cbp_binary`]) is a 5-byte header (`b"CBPB"` + version
//! byte) followed by fixed 18-byte little-endian records. Either way,
//! each branch becomes a single-instruction basic block (external
//! traces do not delimit block starts), and both paths apply the same
//! validation, so the same capture imports identically from both
//! encodings.

use fe_model::addr::VA_BITS;
use fe_model::{Addr, BasicBlock, BranchKind, RetiredBlock, INSTR_BYTES};

use crate::codec::fnv1a_update;
use crate::{ProgramFingerprint, Trace, TraceError, TraceWriter};

/// Running content fingerprint over the imported record stream.
///
/// External traces ship no static program image, so an import's
/// identity *is* its branch stream: the digest folds every imported
/// record's fields in order, and `blocks` counts them — giving each
/// distinct capture a distinct, deterministic [`ProgramFingerprint`]
/// (never [`ProgramFingerprint::UNKNOWN`], whose `blocks` is 0 while a
/// valid import has at least one record). Content addressing — result
/// caches keyed by trace identity — needs this; the sentinel would
/// alias every import to one cache line.
struct ContentFingerprint {
    digest: u64,
    blocks: u64,
}

impl ContentFingerprint {
    /// FNV-1a offset basis — matches the digest seed used everywhere
    /// else in the codec.
    fn new() -> Self {
        ContentFingerprint {
            digest: 0xcbf2_9ce4_8422_2325,
            blocks: 0,
        }
    }

    fn fold(&mut self, rb: &RetiredBlock) {
        let mut bytes = [0u8; 26];
        bytes[..8].copy_from_slice(&rb.block.start.get().to_le_bytes());
        bytes[8..16].copy_from_slice(&rb.block.target.get().to_le_bytes());
        bytes[16..24].copy_from_slice(&rb.next_pc.get().to_le_bytes());
        bytes[24] = rb.block.kind as u8;
        bytes[25] = rb.taken as u8;
        self.digest = fnv1a_update(self.digest, &bytes);
        self.blocks += 1;
    }

    fn finish(self) -> ProgramFingerprint {
        ProgramFingerprint {
            blocks: self.blocks,
            digest: self.digest,
        }
    }
}

fn kind_from_letter(letter: &str) -> Option<BranchKind> {
    match letter {
        "C" | "c" => Some(BranchKind::Conditional),
        "J" | "j" => Some(BranchKind::Jump),
        "L" | "l" => Some(BranchKind::Call),
        "R" | "r" => Some(BranchKind::Return),
        "T" | "t" => Some(BranchKind::Trap),
        "E" | "e" => Some(BranchKind::TrapReturn),
        _ => None,
    }
}

/// Outcome of a lossy import: the trace plus an account of what the
/// parser had to drop, so callers can report data quality instead of
/// records vanishing silently.
#[derive(Debug)]
pub struct ImportReport {
    /// The imported trace.
    pub trace: Trace,
    /// Branch records imported.
    pub imported: u64,
    /// Malformed lines skipped (blank lines and `#` comments are not
    /// records and are not counted).
    pub skipped: u64,
    /// The first skipped line's line-numbered parse error, kept so a
    /// lossy import can still say *why* records went missing.
    pub first_error: Option<String>,
}

/// Parses one record line. `Ok(None)` for blank/comment lines; a
/// line-numbered [`TraceError::Corrupt`] for malformed ones.
fn parse_cbp_line(line: &str, lineno: usize) -> Result<Option<RetiredBlock>, TraceError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let mut field = |what: &str| {
        fields.next().ok_or_else(|| {
            TraceError::Corrupt(format!("line {}: missing {what} in `{line}`", lineno + 1))
        })
    };
    let pc = parse_addr(field("pc")?, lineno)?;
    let target = parse_addr(field("target")?, lineno)?;
    let kind_field = field("kind")?;
    let kind = kind_from_letter(kind_field).ok_or_else(|| {
        TraceError::Corrupt(format!(
            "line {}: unknown branch kind `{kind_field}`",
            lineno + 1
        ))
    })?;
    let taken = match field("taken")? {
        "0" => false,
        "1" => true,
        other => {
            return Err(TraceError::Corrupt(format!(
                "line {}: taken must be 0 or 1, got `{other}`",
                lineno + 1
            )))
        }
    };
    if taken && kind.is_return() && target == 0 {
        return Err(TraceError::Corrupt(format!(
            "line {}: taken return needs its dynamic target",
            lineno + 1
        )));
    }
    Ok(Some(branch_record(pc, target, kind, taken)))
}

/// Imports a CBP-style textual branch trace (see module docs),
/// rejecting the whole import on the first malformed line with a
/// line-numbered error.
///
/// Returns a valid [`Trace`] fingerprinted by its own content (a
/// digest of the imported record stream — deterministic, and distinct
/// for distinct captures); it round-trips through the binary format
/// and tooling (`trace inspect`), but replaying it requires a matching
/// program image, which imports do not yet carry. For tolerating dirty
/// captures, see [`import_cbp_lossy`].
pub fn import_cbp(text: &str, name: &str) -> Result<Trace, TraceError> {
    let mut writer = TraceWriter::new(name, 0, ProgramFingerprint::UNKNOWN);
    let mut fingerprint = ContentFingerprint::new();
    for (lineno, line) in text.lines().enumerate() {
        if let Some(rb) = parse_cbp_line(line, lineno)? {
            writer.record(&rb);
            fingerprint.fold(&rb);
        }
    }
    if writer.block_count() == 0 {
        return Err(TraceError::Corrupt(
            "import contains no branch records".into(),
        ));
    }
    Ok(writer.finish_with_fingerprint(fingerprint.finish()))
}

/// Like [`import_cbp`], but skips malformed lines instead of failing —
/// with the skips *counted* and the first parse error preserved in the
/// returned [`ImportReport`], never dropped silently. Real capture
/// pipelines truncate lines and interleave garbage; a lossy import
/// that accounts for its losses beats both a stonewalling strict
/// parser and a silent one.
///
/// Still errors when not a single record parses (the input is not a
/// CBP trace at all).
pub fn import_cbp_lossy(text: &str, name: &str) -> Result<ImportReport, TraceError> {
    let mut writer = TraceWriter::new(name, 0, ProgramFingerprint::UNKNOWN);
    let mut fingerprint = ContentFingerprint::new();
    let mut skipped = 0u64;
    let mut first_error = None;
    for (lineno, line) in text.lines().enumerate() {
        match parse_cbp_line(line, lineno) {
            Ok(Some(rb)) => {
                writer.record(&rb);
                fingerprint.fold(&rb);
            }
            Ok(None) => {}
            Err(e) => {
                skipped += 1;
                if first_error.is_none() {
                    first_error = Some(e.to_string());
                }
            }
        }
    }
    if writer.block_count() == 0 {
        return Err(TraceError::Corrupt(match first_error {
            Some(e) => format!("import contains no parseable branch records (first error: {e})"),
            None => "import contains no branch records".into(),
        }));
    }
    let imported = writer.block_count();
    Ok(ImportReport {
        trace: writer.finish_with_fingerprint(fingerprint.finish()),
        imported,
        skipped,
        first_error,
    })
}

/// Magic bytes opening a binary CBP branch trace.
pub const CBP_BINARY_MAGIC: [u8; 4] = *b"CBPB";
/// Binary CBP format version this importer reads and writes.
pub const CBP_BINARY_VERSION: u8 = 1;
/// Serialized size of one binary CBP record.
pub const CBP_BINARY_RECORD_LEN: usize = 18;

/// Stable kind codes of the binary CBP record (match the letters of
/// the textual format in order: C, J, L, R, T, E).
fn kind_from_binary_code(code: u8) -> Option<BranchKind> {
    Some(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Jump,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Trap,
        5 => BranchKind::TrapReturn,
        _ => return None,
    })
}

fn kind_to_binary_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Jump => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Trap => 4,
        BranchKind::TrapReturn => 5,
    }
}

/// Builds the [`RetiredBlock`] for one validated branch record —
/// shared by the textual and binary parsers so both encodings import
/// identically.
fn branch_record(pc: u64, target: u64, kind: BranchKind, taken: bool) -> RetiredBlock {
    let block = BasicBlock::new(
        Addr::new(pc),
        1,
        kind,
        // Returns read the RAS, not a static target.
        if kind.is_return() {
            Addr::NULL
        } else {
            Addr::new(target)
        },
    );
    let next_pc = if taken {
        Addr::new(target)
    } else {
        Addr::new(pc + INSTR_BYTES)
    };
    RetiredBlock {
        block,
        taken,
        next_pc,
    }
}

/// Imports a binary CBP branch trace: a 5-byte header
/// ([`CBP_BINARY_MAGIC`] + version byte [`CBP_BINARY_VERSION`])
/// followed by fixed 18-byte little-endian records — `pc: u64`,
/// `target: u64`, `kind: u8` (0=C 1=J 2=L 3=R 4=T 5=E), `taken: u8`
/// (0/1). Validation matches the textual importer exactly (address
/// range, kind and taken codes, taken-return target), with errors
/// naming the offending record index; a payload that is not a whole
/// number of records is rejected as [`TraceError::Truncated`].
///
/// ```
/// use fe_trace::import::{export_cbp_binary, import_cbp, import_cbp_binary};
///
/// let text = "0x1000 0x2000 L 1\n0x2000 0x0 C 0\n";
/// let trace = import_cbp(text, "capture").unwrap();
/// let binary = export_cbp_binary(trace.reader().map(|r| r.unwrap()));
/// assert_eq!(import_cbp_binary(&binary, "capture").unwrap(), trace);
/// ```
pub fn import_cbp_binary(bytes: &[u8], name: &str) -> Result<Trace, TraceError> {
    let header_len = CBP_BINARY_MAGIC.len() + 1;
    if bytes.len() < header_len {
        return Err(if bytes.starts_with(&CBP_BINARY_MAGIC) {
            TraceError::Truncated {
                expected: header_len as u64,
                actual: bytes.len() as u64,
            }
        } else {
            TraceError::BadMagic
        });
    }
    if bytes[..4] != CBP_BINARY_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = bytes[4];
    if version != CBP_BINARY_VERSION {
        return Err(TraceError::Corrupt(format!(
            "binary CBP version {version} unsupported (importer is v{CBP_BINARY_VERSION})"
        )));
    }
    let body = &bytes[header_len..];
    if !body.len().is_multiple_of(CBP_BINARY_RECORD_LEN) {
        return Err(TraceError::Truncated {
            expected: (header_len
                + body.len().div_ceil(CBP_BINARY_RECORD_LEN) * CBP_BINARY_RECORD_LEN)
                as u64,
            actual: bytes.len() as u64,
        });
    }
    let mut writer = TraceWriter::new(name, 0, ProgramFingerprint::UNKNOWN);
    let mut fingerprint = ContentFingerprint::new();
    for (i, rec) in body.chunks_exact(CBP_BINARY_RECORD_LEN).enumerate() {
        let u64_at = |off: usize| {
            u64::from_le_bytes(
                rec[off..off + 8]
                    .try_into()
                    .expect("slice is exactly 8 bytes"),
            )
        };
        let bad = |what: String| TraceError::Corrupt(format!("record {i}: {what}"));
        let pc = u64_at(0);
        let target = u64_at(8);
        for (label, addr) in [("pc", pc), ("target", target)] {
            if addr >= 1 << VA_BITS {
                return Err(bad(format!(
                    "{label} {addr:#x} exceeds the {VA_BITS}-bit address space"
                )));
            }
        }
        let kind = kind_from_binary_code(rec[16])
            .ok_or_else(|| bad(format!("unknown branch-kind code {}", rec[16])))?;
        let taken = match rec[17] {
            0 => false,
            1 => true,
            other => return Err(bad(format!("taken must be 0 or 1, got {other}"))),
        };
        if taken && kind.is_return() && target == 0 {
            return Err(bad("taken return needs its dynamic target".into()));
        }
        let rb = branch_record(pc, target, kind, taken);
        writer.record(&rb);
        fingerprint.fold(&rb);
    }
    if writer.block_count() == 0 {
        return Err(TraceError::Corrupt(
            "import contains no branch records".into(),
        ));
    }
    Ok(writer.finish_with_fingerprint(fingerprint.finish()))
}

/// Serializes a branch stream into the binary CBP format
/// [`import_cbp_binary`] reads — the fixture-generation and testing
/// counterpart of the importer. Each block is flattened to its branch:
/// the terminating instruction's PC, the target field as the textual
/// format carries it (a taken return writes its dynamic target, other
/// returns write zero), the kind code, and the outcome. Re-importing
/// an exported single-instruction-block stream (any imported trace)
/// reproduces it record for record.
pub fn export_cbp_binary(records: impl IntoIterator<Item = RetiredBlock>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CBP_BINARY_MAGIC);
    out.push(CBP_BINARY_VERSION);
    for rb in records {
        let b = &rb.block;
        let branch_pc = b.start + (b.instr_count as u64 - 1) * INSTR_BYTES;
        let target = if b.kind.is_return() {
            if rb.taken {
                rb.next_pc
            } else {
                Addr::NULL
            }
        } else {
            b.target
        };
        out.extend_from_slice(&branch_pc.get().to_le_bytes());
        out.extend_from_slice(&target.get().to_le_bytes());
        out.push(kind_to_binary_code(b.kind));
        out.push(rb.taken as u8);
    }
    out
}

fn parse_addr(field: &str, lineno: usize) -> Result<u64, TraceError> {
    let digits = field
        .strip_prefix("0x")
        .or_else(|| field.strip_prefix("0X"))
        .unwrap_or(field);
    let value = u64::from_str_radix(digits, 16)
        .map_err(|_| TraceError::Corrupt(format!("line {}: bad hex `{field}`", lineno + 1)))?;
    // Reject rather than silently mask to the modeled address space.
    if value >= 1 << VA_BITS {
        return Err(TraceError::Corrupt(format!(
            "line {}: address {field} exceeds the {VA_BITS}-bit address space",
            lineno + 1,
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imports_and_round_trips() {
        let text = "# demo\n\
                    0x1000 0x2000 L 1\n\
                    0x2000 0x0 C 0\n\
                    0x2004 0x1004 R 1\n";
        let trace = import_cbp(text, "demo").expect("imports");
        assert_eq!(trace.header().block_count, 3);
        assert_eq!(trace.header().instr_count, 3);
        assert!(
            !trace.header().fingerprint.is_unknown(),
            "imports carry a real content fingerprint"
        );

        let records: Vec<_> = trace.reader().map(|r| r.unwrap()).collect();
        assert_eq!(records[0].block.kind, BranchKind::Call);
        assert_eq!(records[0].next_pc, Addr::new(0x2000));
        assert!(!records[1].taken);
        assert_eq!(records[1].next_pc, Addr::new(0x2004));
        assert_eq!(records[2].next_pc, Addr::new(0x1004));

        let back = Trace::from_bytes(&trace.to_bytes()).expect("binary round trip");
        assert_eq!(back, trace);
    }

    #[test]
    fn content_fingerprint_identifies_the_capture() {
        let a = "0x1000 0x2000 L 1\n0x2000 0x0 C 0\n";
        let b = "0x1000 0x2000 L 1\n0x2000 0x0 C 1\n"; // one flipped outcome
        let fp = |text: &str| import_cbp(text, "t").unwrap().header().fingerprint;
        assert_eq!(fp(a), fp(a), "fingerprint is deterministic");
        assert_ne!(fp(a), fp(b), "different content, different fingerprint");
        // Order matters: the stream is the identity, not a record set.
        let swapped = "0x2000 0x0 C 0\n0x1000 0x2000 L 1\n";
        assert_ne!(fp(a), fp(swapped));
        // The name does not enter the fingerprint (same capture under
        // two filenames is the same content).
        assert_eq!(
            import_cbp(a, "x").unwrap().header().fingerprint,
            import_cbp(a, "y").unwrap().header().fingerprint,
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(import_cbp("", "empty").is_err());
        assert!(import_cbp("zzzz 0x0 C 0", "badhex").is_err());
        assert!(import_cbp("0x1000 0x0 Q 0", "badkind").is_err());
        assert!(import_cbp("0x1000 0x0 C 2", "badtaken").is_err());
        assert!(import_cbp("0x1000 0x0 R 1", "badreturn").is_err());
        // Out-of-space addresses are rejected, not silently masked
        // (and a full-u64 pc must not overflow the fall-through math).
        assert!(import_cbp("ffffffffffffffff 0x0 C 0", "hugepc").is_err());
        assert!(import_cbp("0x1000 1000000000000 J 1", "hugetarget").is_err());
    }

    #[test]
    fn strict_errors_carry_the_line_number() {
        let text = "0x1000 0x2000 L 1\n0x2000 0x0 Q 0\n";
        let err = import_cbp(text, "badkind").expect_err("line 2 is malformed");
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "error must name the line: {msg}");
        assert!(msg.contains('Q'), "error must name the bad field: {msg}");
    }

    #[test]
    fn lossy_import_counts_skipped_records() {
        let text = "# capture with interleaved garbage\n\
                    0x1000 0x2000 L 1\n\
                    zzzz not-a-record\n\
                    0x2000 0x0 C 0\n\
                    0x2004 0x0 C 9\n\
                    0x2004 0x1004 R 1\n";
        let report = import_cbp_lossy(text, "dirty").expect("imports the good lines");
        assert_eq!(report.imported, 3);
        assert_eq!(report.skipped, 2, "comments and blanks are not skips");
        assert_eq!(report.trace.header().block_count, 3);
        let first = report.first_error.expect("first error preserved");
        assert!(
            first.contains("line 3"),
            "first error names its line: {first}"
        );

        // The lossy trace matches a strict import of only the good
        // lines (record-for-record, not just count).
        let clean = "0x1000 0x2000 L 1\n0x2000 0x0 C 0\n0x2004 0x1004 R 1\n";
        let strict = import_cbp(clean, "dirty").expect("clean import");
        assert_eq!(report.trace, strict);
    }

    #[test]
    fn binary_import_matches_textual_import() {
        let text = "# capture\n\
                    0x1000 0x2000 L 1\n\
                    0x2000 0x0 C 0\n\
                    0x2004 0x1004 R 1\n\
                    0x1004 0x0 R 0\n";
        let from_text = import_cbp(text, "cap").expect("text imports");
        let binary = export_cbp_binary(from_text.reader().map(|r| r.expect("decodes")));
        let from_binary = import_cbp_binary(&binary, "cap").expect("binary imports");
        // Same records, same content fingerprint — the encodings are
        // interchangeable views of one capture.
        assert_eq!(from_binary, from_text);
        assert_eq!(
            binary.len(),
            5 + 4 * CBP_BINARY_RECORD_LEN,
            "header + fixed records"
        );
    }

    #[test]
    fn binary_import_rejects_malformed_input() {
        let good = export_cbp_binary(
            import_cbp("0x1000 0x2000 J 1\n", "one")
                .unwrap()
                .reader()
                .map(|r| r.unwrap()),
        );
        assert!(import_cbp_binary(&good, "one").is_ok());

        // Not the binary magic at all.
        assert!(matches!(
            import_cbp_binary(b"nope", "x"),
            Err(TraceError::BadMagic)
        ));
        // Magic but missing the version byte.
        assert!(matches!(
            import_cbp_binary(b"CBPB", "x"),
            Err(TraceError::Truncated { .. })
        ));
        // Unknown version.
        let mut versioned = good.clone();
        versioned[4] = 9;
        let err = import_cbp_binary(&versioned, "x").expect_err("bad version");
        assert!(err.to_string().contains("version 9"), "{err}");
        // A partial trailing record is a truncation, not a silent drop.
        assert!(matches!(
            import_cbp_binary(&good[..good.len() - 7], "x"),
            Err(TraceError::Truncated { .. })
        ));
        // Header only, no records.
        assert!(import_cbp_binary(&good[..5], "x").is_err());
        // Field validation names the record index.
        let mut bad_kind = good.clone();
        bad_kind[5 + 16] = 7;
        let err = import_cbp_binary(&bad_kind, "x").expect_err("bad kind");
        assert!(err.to_string().contains("record 0"), "{err}");
        let mut bad_taken = good.clone();
        bad_taken[5 + 17] = 2;
        assert!(import_cbp_binary(&bad_taken, "x").is_err());
        // Out-of-space address.
        let mut huge_pc = good;
        huge_pc[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = import_cbp_binary(&huge_pc, "x").expect_err("huge pc");
        assert!(err.to_string().contains("address space"), "{err}");
        // Taken return without its dynamic target.
        let mut ret = Vec::new();
        ret.extend_from_slice(&CBP_BINARY_MAGIC);
        ret.push(CBP_BINARY_VERSION);
        ret.extend_from_slice(&0x1000u64.to_le_bytes());
        ret.extend_from_slice(&0u64.to_le_bytes());
        ret.push(3); // Return
        ret.push(1); // taken
        let err = import_cbp_binary(&ret, "x").expect_err("taken return");
        assert!(err.to_string().contains("dynamic target"), "{err}");
    }

    #[test]
    fn lossy_import_still_rejects_recordless_input() {
        let err = import_cbp_lossy("garbage\nmore garbage\n", "junk").expect_err("no records");
        assert!(err.to_string().contains("first error"));
        assert!(import_cbp_lossy("# only comments\n", "comments").is_err());
    }
}
