#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fe-trace — recorded control-flow traces
//!
//! The paper's methodology is trace-driven (§5.1): workloads are
//! captured once as control-flow traces and replayed through the
//! timing model for every front-end configuration. This crate is that
//! layer for the reproduction: a compact binary format for
//! [`RetiredBlock`] streams plus record/replay machinery, so one
//! executor walk can feed every `(workload, scheme)` cell of a sweep —
//! and so external traces can become a workload class of their own.
//!
//! * [`Trace`] — an immutable recorded stream: a validated header and
//!   the encoded record payload. In-memory ([`Trace::from_bytes`] /
//!   [`Trace::to_bytes`]) and on-disk ([`Trace::read_from`] /
//!   [`Trace::write_to`]) backends share one byte format.
//! * [`TraceWriter`] — streaming encoder ([`TraceWriter::record`] one
//!   block at a time, [`TraceWriter::finish`] into a [`Trace`]).
//! * [`TraceReader`] — decoding iterator over a trace's records,
//!   yielding `Result` so truncated or corrupt payloads surface as
//!   clean [`TraceError`]s.
//! * [`TraceReplayer`] — the [`BlockSource`] adapter the simulator
//!   consumes; replaying a trace is byte-identical to live execution
//!   because the pipeline sees the same blocks in the same order.
//! * [`store`] — the v2 chunk-compressed, indexed on-disk format
//!   ([`TraceStore`]): same record stream, re-packaged so seeking
//!   decodes only the chunks it lands in.
//! * [`import`] — decoders for external trace formats (CBP-style
//!   branch traces, textual and binary).
//! * [`ingest`] — the conversion pipeline tying those together:
//!   autodetect an external format, convert to a [`TraceStore`],
//!   verify losslessness, and report what happened.
//!
//! ```
//! use fe_cfg::workloads;
//! use fe_model::BlockSource;
//! use fe_trace::Trace;
//!
//! let program = workloads::nutch().scaled(0.05).build();
//! let trace = Trace::record(&program, 42, 10_000);
//! assert!(trace.header().instr_count >= 10_000);
//! let mut replay = trace.replayer();
//! let mut live = fe_cfg::Executor::new(&program, 42);
//! for _ in 0..100 {
//!     assert_eq!(replay.next_block(), Some(live.next_block()));
//! }
//! ```
//!
//! ## Formats
//!
//! The byte-level specification of both on-disk formats lives in
//! `docs/TRACE_FORMAT.md`. In brief, version 1 (this module's
//! [`Trace`]) is a little-endian header followed by one flat record
//! payload:
//!
//! ```text
//! magic   b"FETR"        version u16 (1)        flags u16 (0)
//! seed    u64            block_count u64        instr_count u64
//! program_blocks u64     program_digest u64     (0,0 = unknown origin)
//! payload_len u64        checksum u64 (FNV-1a)
//! name_len u16, name bytes (UTF-8)
//! <payload_len bytes of records>
//! ```
//!
//! The checksum covers the *entire* serialized trace (header fields,
//! name, and payload, with the checksum field itself read as zero), so
//! a bit flip anywhere — including in the length or count fields — is
//! rejected at [`Trace::from_bytes`], never decoded.
//!
//! Records are delta-encoded against the previous record's `next_pc`
//! with varint lengths — see [`codec`](self) module docs; a typical
//! record is 2-4 bytes (~0.5-1 byte per instruction).
//!
//! Version 2 ([`TraceStore`]) shares the fixed header layout (version
//! field = 2) and checksum rule, but splits the payload into
//! independently decodable, LZ-compressed chunks behind a per-chunk
//! index — see the [`store`] module docs. Each reader rejects the
//! other version with a named [`TraceError::UnsupportedVersion`].

use std::path::Path;

use fe_cfg::{Executor, Program};
use fe_model::{Addr, BlockSource, RetiredBlock};

mod codec;
mod compress;
pub mod import;
pub mod ingest;
pub mod store;

use codec::{encode_record, fnv1a, fnv1a_update, RecordDecoder, FNV_OFFSET};

pub use ingest::{ingest_bytes, ingest_file, IngestOptions, IngestReport, SourceFormat};
pub use store::{ChunkEntry, StoreReplayer, TraceStore, DEFAULT_CHUNK_RECORDS, STORE_VERSION};

/// Magic bytes opening every trace file (v1 flat traces and v2 stores
/// alike; the version field distinguishes them).
pub const MAGIC: [u8; 4] = *b"FETR";
/// Format version of the flat [`Trace`] container ([`STORE_VERSION`]
/// is the chunked store).
pub const VERSION: u16 = 1;

/// Why a trace could not be read or decoded.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not open with [`MAGIC`] — not a trace.
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u16),
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The trace checksum does not match its contents (bit flip in
    /// the header, name, or payload).
    ChecksumMismatch,
    /// A structural decoding error (bad varint, invalid field, ...).
    Corrupt(String),
    /// Post-conversion verification failed: the converted store does
    /// not reproduce its source stream (see [`ingest`]). A correct
    /// converter never produces this; it guards the ingest pipeline
    /// against its own bugs before a bad file is ever written.
    VerifyFailed(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (flat traces are \
                     v{VERSION}, chunked stores v{})",
                    store::STORE_VERSION,
                )
            }
            TraceError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated trace: header promises {expected} bytes, found {actual}"
                )
            }
            TraceError::ChecksumMismatch => write!(f, "trace checksum mismatch"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            TraceError::VerifyFailed(what) => {
                write!(f, "ingest verification failed: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Identity of the program a trace was recorded against, carried in
/// the header so replay can refuse a mismatched program (a trace is
/// only meaningful against the exact code layout it walked).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProgramFingerprint {
    /// Block count of the program.
    pub blocks: u64,
    /// FNV-1a digest over the entry point and a sample of block
    /// descriptors.
    pub digest: u64,
}

impl ProgramFingerprint {
    /// The "unknown origin" fingerprint carried by imported traces.
    pub const UNKNOWN: ProgramFingerprint = ProgramFingerprint {
        blocks: 0,
        digest: 0,
    };

    /// Fingerprints `program`.
    pub fn of(program: &Program) -> Self {
        let count = program.block_count();
        let mut bytes = Vec::with_capacity(64 * 26 + 16);
        bytes.extend_from_slice(&program.entry().get().to_le_bytes());
        bytes.extend_from_slice(&(count as u64).to_le_bytes());
        // Sample a bounded number of blocks across the whole layout.
        let stride = (count / 1024).max(1);
        for id in (0..count).step_by(stride) {
            let b = program.block(id as u32);
            bytes.extend_from_slice(&b.start.get().to_le_bytes());
            bytes.extend_from_slice(&b.target.get().to_le_bytes());
            bytes.push(b.instr_count);
            bytes.push(b.kind as u8);
        }
        ProgramFingerprint {
            blocks: count as u64,
            digest: fnv1a(&bytes),
        }
    }

    /// `true` for [`Self::UNKNOWN`].
    pub fn is_unknown(&self) -> bool {
        *self == Self::UNKNOWN
    }
}

/// Metadata of a recorded trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceHeader {
    /// Workload (or import source) name.
    pub name: String,
    /// Executor seed the stream was recorded with (0 for imports).
    pub seed: u64,
    /// Number of records in the payload.
    pub block_count: u64,
    /// Total instructions across all records.
    pub instr_count: u64,
    /// Identity of the program that produced the stream.
    pub fingerprint: ProgramFingerprint,
}

/// Fixed-size portion of the serialized header (magic, version, flags,
/// seven u64 fields, name length), after which the name bytes and
/// payload follow. Shared verbatim by the v2 store container (see
/// [`store`]), which is why each version can reject the other cleanly.
pub(crate) const HEADER_FIXED_LEN: usize = 4 + 2 + 2 + 8 * 7 + 2;

/// Byte range of the checksum field within the serialized header.
pub(crate) const CHECKSUM_RANGE: std::ops::Range<usize> = 56..64;

/// An immutable recorded control-flow trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    header: TraceHeader,
    payload: Vec<u8>,
}

impl Trace {
    /// Records `program`'s retired stream from a fresh walk under
    /// `seed`, stopping at the first block boundary at or past
    /// `min_instrs` instructions.
    pub fn record(program: &Program, seed: u64, min_instrs: u64) -> Trace {
        let mut exec = Executor::new(program, seed);
        let mut writer = TraceWriter::new(program.name(), seed, ProgramFingerprint::of(program));
        while writer.instr_count() < min_instrs {
            writer.record(&exec.next_block());
        }
        writer.finish()
    }

    /// The trace's metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Size of the encoded record payload in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// A decoding iterator over the records.
    pub fn reader(&self) -> TraceReader<'_> {
        TraceReader {
            decoder: RecordDecoder::new(&self.payload),
            remaining: self.header.block_count,
        }
    }

    /// A [`BlockSource`] replaying this trace into a simulator.
    pub fn replayer(&self) -> TraceReplayer<'_> {
        TraceReplayer {
            decoder: RecordDecoder::new(&self.payload),
            remaining: self.header.block_count,
            name: &self.header.name,
            replayed: 0,
        }
    }

    /// `true` when this trace was recorded against `program` (by
    /// fingerprint) — the precondition for faithful replay.
    pub fn matches(&self, program: &Program) -> bool {
        self.header.fingerprint == ProgramFingerprint::of(program)
    }

    /// The same trace under a new name (ingest renaming). Payload and
    /// fingerprint are untouched — identity is content-derived.
    pub(crate) fn with_name(mut self, name: &str) -> Trace {
        self.header.name = name.to_string();
        self
    }

    /// Serializes the trace (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let h = &self.header;
        let name = h.name.as_bytes();
        assert!(name.len() <= u16::MAX as usize, "trace name too long");
        let mut out = Vec::with_capacity(HEADER_FIXED_LEN + name.len() + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags (reserved)
        out.extend_from_slice(&h.seed.to_le_bytes());
        out.extend_from_slice(&h.block_count.to_le_bytes());
        out.extend_from_slice(&h.instr_count.to_le_bytes());
        out.extend_from_slice(&h.fingerprint.blocks.to_le_bytes());
        out.extend_from_slice(&h.fingerprint.digest.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // checksum placeholder
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.payload);
        // Checksum the whole trace with the checksum field read as
        // zero (which the placeholder already is), then patch it in.
        let checksum = fnv1a(&out);
        out[CHECKSUM_RANGE].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses a serialized trace, validating magic, version, length
    /// and checksum — truncated or bit-flipped files are rejected here
    /// with a descriptive [`TraceError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        if bytes.len() < HEADER_FIXED_LEN {
            return Err(if bytes.get(..4).is_some_and(|m| m == MAGIC) {
                TraceError::Truncated {
                    expected: HEADER_FIXED_LEN as u64,
                    actual: bytes.len() as u64,
                }
            } else {
                TraceError::BadMagic
            });
        }
        if bytes[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let u16_at = |off: usize| {
            u16::from_le_bytes(
                bytes[off..off + 2]
                    .try_into()
                    .expect("slice is exactly 2 bytes"),
            )
        };
        let u64_at = |off: usize| {
            u64::from_le_bytes(
                bytes[off..off + 8]
                    .try_into()
                    .expect("slice is exactly 8 bytes"),
            )
        };
        let version = u16_at(4);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let seed = u64_at(8);
        let block_count = u64_at(16);
        let instr_count = u64_at(24);
        let fingerprint = ProgramFingerprint {
            blocks: u64_at(32),
            digest: u64_at(40),
        };
        let payload_len = u64_at(48);
        let checksum = u64_at(56);
        let name_len = u16_at(64) as usize;
        // Checked: a corrupted length field must surface as a clean
        // error, not an overflow panic or a wrapped-around slice bound.
        let total = (HEADER_FIXED_LEN as u64 + name_len as u64)
            .checked_add(payload_len)
            .ok_or_else(|| TraceError::Corrupt("header length fields overflow".into()))?;
        if (bytes.len() as u64) < total {
            return Err(TraceError::Truncated {
                expected: total,
                actual: bytes.len() as u64,
            });
        }
        // The checksum covers the whole trace — header and name
        // included — with the checksum field itself read as zero, so
        // corrupted seeds/counts/lengths are caught, not just payload
        // damage. Hash the regions around the field to avoid copying.
        let stored = fnv1a_update(
            fnv1a_update(
                fnv1a_update(FNV_OFFSET, &bytes[..CHECKSUM_RANGE.start]),
                &[0u8; 8],
            ),
            &bytes[CHECKSUM_RANGE.end..total as usize],
        );
        if stored != checksum {
            return Err(TraceError::ChecksumMismatch);
        }
        let name = std::str::from_utf8(&bytes[HEADER_FIXED_LEN..HEADER_FIXED_LEN + name_len])
            .map_err(|_| TraceError::Corrupt("trace name is not UTF-8".into()))?
            .to_string();
        let payload = bytes
            [HEADER_FIXED_LEN + name_len..HEADER_FIXED_LEN + name_len + payload_len as usize]
            .to_vec();
        Ok(Trace {
            header: TraceHeader {
                name,
                seed,
                block_count,
                instr_count,
                fingerprint,
            },
            payload,
        })
    }

    /// Writes the serialized trace to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Reads and validates a trace file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        Trace::from_bytes(&std::fs::read(path)?)
    }
}

/// Streaming trace encoder: feed retired blocks in order, then
/// [`finish`](Self::finish) into an immutable [`Trace`].
pub struct TraceWriter {
    name: String,
    seed: u64,
    fingerprint: ProgramFingerprint,
    payload: Vec<u8>,
    prev_next: Addr,
    block_count: u64,
    instr_count: u64,
}

impl TraceWriter {
    /// Starts a trace for the named stream.
    pub fn new(name: impl Into<String>, seed: u64, fingerprint: ProgramFingerprint) -> Self {
        TraceWriter {
            name: name.into(),
            seed,
            fingerprint,
            payload: Vec::with_capacity(64 * 1024),
            prev_next: Addr::NULL,
            block_count: 0,
            instr_count: 0,
        }
    }

    /// Appends one retired block.
    pub fn record(&mut self, rb: &RetiredBlock) {
        encode_record(&mut self.payload, rb, &mut self.prev_next);
        self.block_count += 1;
        self.instr_count += rb.instr_count();
    }

    /// Blocks recorded so far.
    pub fn block_count(&self) -> u64 {
        self.block_count
    }

    /// Instructions recorded so far.
    pub fn instr_count(&self) -> u64 {
        self.instr_count
    }

    /// Seals the recording.
    pub fn finish(self) -> Trace {
        let fingerprint = self.fingerprint;
        self.finish_with_fingerprint(fingerprint)
    }

    /// Seals the recording under a fingerprint computed *during*
    /// recording — for sources (importers) whose identity is the
    /// record stream itself rather than a static program known
    /// up front.
    pub fn finish_with_fingerprint(self, fingerprint: ProgramFingerprint) -> Trace {
        Trace {
            header: TraceHeader {
                name: self.name,
                seed: self.seed,
                block_count: self.block_count,
                instr_count: self.instr_count,
                fingerprint,
            },
            payload: self.payload,
        }
    }
}

/// Decoding iterator over a trace's records. Structural damage the
/// checksum could not attribute (and payloads whose record count
/// disagrees with the header) surface as `Err` items.
pub struct TraceReader<'t> {
    decoder: RecordDecoder<'t>,
    remaining: u64,
}

impl Iterator for TraceReader<'_> {
    type Item = Result<RetiredBlock, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.decoder.decode_record() {
            Ok(rb) => Some(Ok(rb)),
            Err(e) => {
                self.remaining = 0;
                Some(Err(TraceError::from(e)))
            }
        }
    }
}

/// Replays a recorded trace as the simulator's [`BlockSource`].
///
/// The replayer hands back exactly the recorded stream; because the
/// timing pipeline is deterministic given its block stream, replay is
/// bit-identical to the live run that would have produced it.
pub struct TraceReplayer<'t> {
    decoder: RecordDecoder<'t>,
    remaining: u64,
    name: &'t str,
    replayed: u64,
}

impl TraceReplayer<'_> {
    /// Blocks replayed so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }
}

impl BlockSource for TraceReplayer<'_> {
    /// Returns `None` when the trace runs out of records (the recording
    /// was shorter than the simulated run plus the pipeline's
    /// lookahead); the simulator degrades the truncation into a
    /// reported stall and ends the run early instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics when a record fails to decode: the payload passed the
    /// whole-trace checksum at load, so a structural decode failure is
    /// a programming error — silently truncating there would replay a
    /// different stream.
    #[inline]
    fn next_block(&mut self) -> Option<RetiredBlock> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.decoder.decode_record() {
            Ok(rb) => {
                self.replayed += 1;
                Some(rb)
            }
            // audit-allow(no-unchecked-panic): corrupt trace mid-replay is unrecoverable — returning None would silently replay a truncated stream and corrupt every downstream stat
            Err(e) => panic!(
                "trace `{}` failed to decode at block {}: {}",
                self.name,
                self.replayed + 1,
                TraceError::from(e),
            ),
        }
    }

    /// Seekable fast-forward: decode-skips whole records (address chain
    /// only, no block materialization) until at least `min_instrs`
    /// instructions have passed — the sampled-simulation fast path.
    ///
    /// # Panics
    ///
    /// Panics on a structural decode failure, like [`Self::next_block`].
    #[inline]
    fn skip_instrs(&mut self, min_instrs: u64) -> u64 {
        let mut skipped = 0;
        while skipped < min_instrs && self.remaining > 0 {
            self.remaining -= 1;
            match self.decoder.skip_record() {
                Ok(instrs) => {
                    self.replayed += 1;
                    skipped += instrs;
                }
                // audit-allow(no-unchecked-panic): corrupt trace mid-skip is unrecoverable — see next_block; the `# Panics` doc above is the contract
                Err(e) => panic!(
                    "trace `{}` failed to decode at block {}: {}",
                    self.name,
                    self.replayed + 1,
                    TraceError::from(e),
                ),
            }
        }
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cfg::workloads;

    fn small_trace() -> (Program, Trace) {
        let program = workloads::nutch().scaled(0.05).build();
        let trace = Trace::record(&program, 7, 5_000);
        (program, trace)
    }

    #[test]
    fn record_matches_live_walk() {
        let (program, trace) = small_trace();
        let mut live = Executor::new(&program, 7);
        let mut n = 0u64;
        for rb in trace.reader() {
            assert_eq!(rb.unwrap(), live.next_block());
            n += 1;
        }
        assert_eq!(n, trace.header().block_count);
        assert!(trace.header().instr_count >= 5_000);
        assert!(trace.matches(&program));
        assert!(!trace.matches(&workloads::zeus().scaled(0.05).build()));
    }

    #[test]
    fn bytes_round_trip() {
        let (_, trace) = small_trace();
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, trace);
        // Compact: the format should beat one byte per instruction on
        // contiguous executor streams.
        assert!(
            (trace.payload_len() as u64) < trace.header().instr_count,
            "payload {} bytes for {} instructions",
            trace.payload_len(),
            trace.header().instr_count,
        );
    }

    #[test]
    fn file_round_trip() {
        let (_, trace) = small_trace();
        let path = std::env::temp_dir().join("fe_trace_file_round_trip.fetr");
        trace.write_to(&path).expect("write");
        let back = Trace::read_from(&path).expect("read");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, trace);
    }

    #[test]
    fn truncated_and_corrupt_files_are_rejected() {
        let (_, trace) = small_trace();
        let bytes = trace.to_bytes();

        assert!(matches!(Trace::from_bytes(&[]), Err(TraceError::BadMagic)));
        assert!(matches!(
            Trace::from_bytes(b"not a trace at all"),
            Err(TraceError::BadMagic)
        ));
        assert!(matches!(
            Trace::from_bytes(&bytes[..bytes.len() / 2]),
            Err(TraceError::Truncated { .. })
        ));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        assert!(matches!(
            Trace::from_bytes(&flipped),
            Err(TraceError::ChecksumMismatch)
        ));
        let mut versioned = bytes.clone();
        versioned[4] = 0xfe;
        assert!(matches!(
            Trace::from_bytes(&versioned),
            Err(TraceError::UnsupportedVersion(_))
        ));
        // Header bit flips (seed, counts, fingerprint) are caught by
        // the whole-trace checksum, not just payload damage.
        let mut header_flip = bytes.clone();
        header_flip[24] ^= 0x80; // low byte of instr_count
        assert!(matches!(
            Trace::from_bytes(&header_flip),
            Err(TraceError::ChecksumMismatch)
        ));
        // A corrupted payload_len field (offset 48..56) must produce a
        // clean error even when the sum would overflow u64, never an
        // arithmetic or slice panic.
        let mut huge_len = bytes.clone();
        for b in &mut huge_len[48..56] {
            *b = 0xff;
        }
        assert!(matches!(
            Trace::from_bytes(&huge_len),
            Err(TraceError::Corrupt(_))
        ));
        let mut long_len = bytes;
        long_len[53] = 0x7f; // plausible but larger than the file
        assert!(matches!(
            Trace::from_bytes(&long_len),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn replayer_returns_none_on_exhaustion() {
        let (_, trace) = small_trace();
        let mut replay = trace.replayer();
        for _ in 0..trace.header().block_count {
            assert!(replay.next_block().is_some());
        }
        assert_eq!(
            replay.next_block(),
            None,
            "overrun yields None, not a panic"
        );
        assert_eq!(replay.next_block(), None, "exhaustion is sticky");
        assert_eq!(replay.replayed(), trace.header().block_count);
    }

    #[test]
    fn skip_instrs_lands_on_the_same_stream_position_as_decoding() {
        let (_, trace) = small_trace();
        // Skip some instructions via the fast path, then check the next
        // decoded block matches a reference replayer that decoded every
        // record on the way.
        for target in [0u64, 1, 37, 500, 2_000] {
            let mut fast = trace.replayer();
            let skipped = fast.skip_instrs(target);
            assert!(skipped >= target, "skip must reach its target");

            let mut slow = trace.replayer();
            let mut walked = 0;
            while walked < target {
                walked += slow.next_block().expect("reference walk").instr_count();
            }
            assert_eq!(skipped, walked, "skip target {target}");
            assert_eq!(fast.replayed(), slow.replayed(), "skip target {target}");
            assert_eq!(fast.next_block(), slow.next_block(), "skip target {target}");
        }
        // Skipping past the end reports the shortfall via the count.
        let mut fast = trace.replayer();
        let all = fast.skip_instrs(u64::MAX);
        assert_eq!(all, trace.header().instr_count);
        assert_eq!(fast.next_block(), None);
    }
}
