//! The record codec: LEB128 varints, zigzag signed deltas, and the
//! per-block encoding.
//!
//! Each [`RetiredBlock`] is encoded relative to the decoder state (the
//! previous record's `next_pc`), exploiting two invariants of retired
//! control flow: the stream is *contiguous* (a block starts where the
//! previous one handed off, so the start delta is almost always zero
//! and elided) and the next PC is almost always *implied* by the block
//! and its outcome (fall-through when not taken, the BTB target when
//! taken — only RAS-supplied return targets need explicit bytes). A
//! typical record is 2-4 bytes.

use fe_model::addr::VA_BITS;
use fe_model::{Addr, BasicBlock, BranchKind, RetiredBlock};

use crate::TraceError;

/// Flag bits of the leading record byte (bits 0..2 hold the kind).
const FLAG_TAKEN: u8 = 1 << 3;
const FLAG_CONTIGUOUS: u8 = 1 << 4;
const FLAG_HAS_TARGET: u8 = 1 << 5;
const FLAG_NEXT_IMPLIED: u8 = 1 << 6;
const FLAG_RESERVED: u8 = 1 << 7;
const KIND_MASK: u8 = 0b111;

/// Stable on-wire numbering of [`BranchKind`] (format v1 — do not
/// reorder).
fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Jump => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Trap => 4,
        BranchKind::TrapReturn => 5,
    }
}

#[inline]
fn kind_from_code(code: u8) -> Result<BranchKind, RecordError> {
    Ok(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Jump,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Trap,
        5 => BranchKind::TrapReturn,
        _ => return Err(RecordError::BadKind(code)),
    })
}

/// Why one record failed to decode. A small `Copy` type — the hot
/// decode loop must not carry heap-owning errors (drop glue on every
/// `Result` would tax the happy path); [`TraceError::from`] attaches
/// the prose at the cold boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RecordError {
    /// Payload ended mid-record.
    Truncated,
    /// A varint ran past 64 bits.
    BadVarint,
    /// Unknown branch-kind code.
    BadKind(u8),
    /// Instruction count outside `1..=MAX_INSTRS`.
    BadCount(u8),
    /// A delta left the 48-bit address space.
    AddrRange,
    /// A reserved flag bit was set.
    ReservedFlag,
    /// A taken return claimed an implied (static) target.
    ImpliedReturn,
}

impl From<RecordError> for TraceError {
    fn from(e: RecordError) -> TraceError {
        TraceError::Corrupt(match e {
            RecordError::Truncated => "record payload ends mid-record".into(),
            RecordError::BadVarint => "varint exceeds 64 bits".into(),
            RecordError::BadKind(code) => format!("unknown branch-kind code {code}"),
            RecordError::BadCount(n) => format!(
                "instruction count {n} outside 1..={}",
                BasicBlock::MAX_INSTRS
            ),
            RecordError::AddrRange => {
                format!("address delta leaves the {}-bit address space", VA_BITS)
            }
            RecordError::ReservedFlag => "reserved record flag set".into(),
            RecordError::ImpliedReturn => "taken return marked as having an implied target".into(),
        })
    }
}

/// Appends `value` as an LEB128 varint.
pub(crate) fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed delta into varint space.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_delta(out: &mut Vec<u8>, delta: i64) {
    push_varint(out, zigzag(delta));
}

/// The address `next_pc` takes when it is fully determined by the
/// block and the branch outcome: fall-through when not taken, the
/// static target when taken — `None` for taken returns, whose target
/// is dynamic (RAS-supplied).
fn implied_next(block: &BasicBlock, taken: bool) -> Option<Addr> {
    if !taken {
        Some(block.fall_through())
    } else if block.kind.has_btb_target() {
        Some(block.target)
    } else {
        None
    }
}

/// Encodes one record, advancing `prev_next` (the decoder-state mirror).
pub(crate) fn encode_record(out: &mut Vec<u8>, rb: &RetiredBlock, prev_next: &mut Addr) {
    let b = &rb.block;
    let mut flags = kind_code(b.kind);
    if rb.taken {
        flags |= FLAG_TAKEN;
    }
    let contiguous = b.start == *prev_next;
    if contiguous {
        flags |= FLAG_CONTIGUOUS;
    }
    let has_target = !b.target.is_null();
    if has_target {
        flags |= FLAG_HAS_TARGET;
    }
    let implied = implied_next(b, rb.taken) == Some(rb.next_pc);
    if implied {
        flags |= FLAG_NEXT_IMPLIED;
    }
    out.push(flags);
    out.push(b.instr_count);
    if !contiguous {
        push_delta(out, b.start - *prev_next);
    }
    if has_target {
        push_delta(out, b.target - b.start);
    }
    if !implied {
        push_delta(out, rb.next_pc - b.fall_through());
    }
    *prev_next = rb.next_pc;
}

/// Decodes the next record from `bytes` at `*pos` against the decoder
/// state `*prev_next`, advancing both on success. Free-function form so
/// callers that own their byte buffer (the chunked store replayer, see
/// [`crate::store`]) can decode without borrowing through a wrapper;
/// [`RecordDecoder`] packages the same state for slice-backed callers.
#[inline]
pub(crate) fn decode_record(
    bytes: &[u8],
    pos: &mut usize,
    prev_next: &mut Addr,
) -> Result<RetiredBlock, RecordError> {
    // Cursor state lives in locals so the optimizer keeps it in
    // registers across the field reads.
    let mut cur = Cursor { bytes, pos: *pos };
    // Every record opens with the flags and count bytes: one
    // bounds check covers both.
    let Some(&[flags, instr_count]) = cur.bytes.get(cur.pos..cur.pos + 2) else {
        return Err(RecordError::Truncated);
    };
    cur.pos += 2;
    if flags & FLAG_RESERVED != 0 {
        return Err(RecordError::ReservedFlag);
    }
    let kind = kind_from_code(flags & KIND_MASK)?;
    if instr_count.wrapping_sub(1) >= BasicBlock::MAX_INSTRS {
        return Err(RecordError::BadCount(instr_count));
    }
    let start = if flags & FLAG_CONTIGUOUS != 0 {
        *prev_next
    } else {
        cur.addr_from(*prev_next)?
    };
    let target = if flags & FLAG_HAS_TARGET != 0 {
        cur.addr_from(start)?
    } else {
        Addr::NULL
    };
    let block = BasicBlock {
        start,
        instr_count,
        kind,
        target,
    };
    let taken = flags & FLAG_TAKEN != 0;
    let next_pc = if flags & FLAG_NEXT_IMPLIED != 0 {
        implied_next(&block, taken).ok_or(RecordError::ImpliedReturn)?
    } else {
        cur.addr_from(block.fall_through())?
    };
    *pos = cur.pos;
    *prev_next = next_pc;
    Ok(RetiredBlock {
        block,
        taken,
        next_pc,
    })
}

/// Decodes past the next record without materializing it, returning
/// its instruction count — the seekable-replay fast path. Only the
/// address chain (`prev_next`) is reconstructed; block assembly,
/// kind validation and the implied-target check are skipped, so the
/// sampled-simulation fast-forward pays a fraction of
/// [`decode_record`]'s work per record.
#[inline]
pub(crate) fn skip_record(
    bytes: &[u8],
    pos: &mut usize,
    prev_next: &mut Addr,
) -> Result<u64, RecordError> {
    let mut cur = Cursor { bytes, pos: *pos };
    let Some(&[flags, instr_count]) = cur.bytes.get(cur.pos..cur.pos + 2) else {
        return Err(RecordError::Truncated);
    };
    cur.pos += 2;
    if flags & FLAG_RESERVED != 0 {
        return Err(RecordError::ReservedFlag);
    }
    if instr_count.wrapping_sub(1) >= BasicBlock::MAX_INSTRS {
        return Err(RecordError::BadCount(instr_count));
    }
    let start = if flags & FLAG_CONTIGUOUS != 0 {
        *prev_next
    } else {
        cur.addr_from(*prev_next)?
    };
    let target = if flags & FLAG_HAS_TARGET != 0 {
        cur.addr_from(start)?
    } else {
        Addr::NULL
    };
    let fall_through = start + instr_count as u64 * fe_model::INSTR_BYTES;
    *prev_next = if flags & FLAG_NEXT_IMPLIED != 0 {
        if flags & FLAG_TAKEN != 0 {
            // An implied taken next PC is the static target; a
            // taken return (no static target) never sets the flag.
            if target.is_null() {
                return Err(RecordError::ImpliedReturn);
            }
            target
        } else {
            fall_through
        }
    } else {
        cur.addr_from(fall_through)?
    };
    *pos = cur.pos;
    Ok(instr_count as u64)
}

/// Incremental decoder over a record payload.
pub(crate) struct RecordDecoder<'t> {
    bytes: &'t [u8],
    pos: usize,
    prev_next: Addr,
}

impl<'t> RecordDecoder<'t> {
    pub(crate) fn new(bytes: &'t [u8]) -> Self {
        RecordDecoder {
            bytes,
            pos: 0,
            prev_next: Addr::NULL,
        }
    }

    /// Bytes consumed so far.
    #[cfg(test)]
    pub(crate) fn consumed(&self) -> usize {
        self.pos
    }

    #[cfg(test)]
    pub(crate) fn varint(&mut self) -> Result<u64, RecordError> {
        let mut cursor = Cursor {
            bytes: self.bytes,
            pos: self.pos,
        };
        let v = cursor.varint();
        self.pos = cursor.pos;
        v
    }

    /// Decodes the next record.
    #[inline]
    pub(crate) fn decode_record(&mut self) -> Result<RetiredBlock, RecordError> {
        decode_record(self.bytes, &mut self.pos, &mut self.prev_next)
    }

    /// See [`skip_record`].
    #[inline]
    pub(crate) fn skip_record(&mut self) -> Result<u64, RecordError> {
        skip_record(self.bytes, &mut self.pos, &mut self.prev_next)
    }
}

/// Local decode cursor — see [`RecordDecoder::decode_record`].
struct Cursor<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Cursor<'_> {
    #[inline]
    fn byte(&mut self) -> Result<u8, RecordError> {
        let Some(&b) = self.bytes.get(self.pos) else {
            return Err(RecordError::Truncated);
        };
        self.pos += 1;
        Ok(b)
    }

    #[inline]
    fn varint(&mut self) -> Result<u64, RecordError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 64 {
                return Err(RecordError::BadVarint);
            }
        }
    }

    #[inline]
    fn addr_from(&mut self, base: Addr) -> Result<Addr, RecordError> {
        let raw = (base.get() as i64).wrapping_add(unzigzag(self.varint()?));
        if raw as u64 >= 1 << VA_BITS {
            return Err(RecordError::AddrRange);
        }
        Ok(Addr::new(raw as u64))
    }
}

/// FNV-1a 64-bit initial state.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a 64-bit state — chainable, so the
/// trace checksum can cover discontiguous regions (header-with-zeroed-
/// hash-field ++ name ++ payload) without copying.
pub(crate) fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64-bit hash of one contiguous region.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut dec = RecordDecoder::new(&buf);
            assert_eq!(dec.varint().unwrap(), v);
            assert_eq!(dec.consumed(), buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn contiguous_taken_jump_is_two_plus_delta_bytes() {
        // start == prev_next and next implied by the target: only the
        // flags byte, the count byte, and the target delta remain.
        let block = BasicBlock::new(Addr::new(0x1000), 4, BranchKind::Jump, Addr::new(0x1020));
        let rb = RetiredBlock::resolve(block, true, None);
        let mut out = Vec::new();
        let mut prev = Addr::new(0x1000);
        encode_record(&mut out, &rb, &mut prev);
        assert_eq!(out.len(), 3, "flags + count + 1-byte target delta");
        assert_eq!(prev, Addr::new(0x1020));
    }
}
