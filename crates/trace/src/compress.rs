//! Chunk compressor for the v2 indexed trace store.
//!
//! A minimal, dependency-free LZSS: byte-aligned tokens grouped under
//! control bytes (one flag bit per token, LSB first), literals one byte
//! each, matches three bytes (`u16` little-endian distance `1..=65535`,
//! `u8` length minus [`MIN_MATCH`]). Matching is greedy over a
//! single-probe hash of 4-byte prefixes — the LZ4-fast shape — which is
//! plenty for delta-encoded trace payloads (loopy control flow repeats
//! the same few byte patterns for thousands of records) and keeps both
//! directions allocation-light and fully deterministic: the same input
//! bytes always produce the same compressed bytes on every host, which
//! the store's whole-file checksum and the byte-identity tests rely on.
//!
//! The store keeps a chunk compressed only when that actually saved
//! bytes (see [`crate::store`]); incompressible chunks are stored raw,
//! so this module never needs an escape hatch of its own.

/// Shortest match worth a 3-byte token (a shorter one would not beat
/// the literals it replaces).
pub(crate) const MIN_MATCH: usize = 4;
/// Longest encodable match: [`MIN_MATCH`] plus a `u8` extension.
const MAX_MATCH: usize = MIN_MATCH + u8::MAX as usize;
/// Farthest back a match may reach (`u16` distance, zero reserved).
const MAX_DISTANCE: usize = u16::MAX as usize;
/// log2 of the hash-table slot count.
const HASH_BITS: u32 = 13;
/// Empty-slot sentinel (chunk offsets are far below `u32::MAX`).
const EMPTY: u32 = u32::MAX;

/// Multiply-shift hash of the 4 bytes at `pos`.
#[inline]
fn hash4(bytes: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes(
        bytes[pos..pos + 4]
            .try_into()
            .expect("caller bounds-checked 4 bytes"),
    );
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into the LZSS token stream described in the
/// module docs. Deterministic; never fails. The output can exceed the
/// input on incompressible data (worst case 9/8 + control overhead) —
/// the store compares lengths and keeps the raw bytes in that case.
pub(crate) fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Plain vector, not a map: indexed by hash, probed once. (Also
    // keeps the audit's no-siphash rule trivially satisfied.)
    let mut table = vec![EMPTY; 1 << HASH_BITS];
    let mut ctrl_at = 0usize;
    let mut ctrl_bit = 8u32;
    let mut pos = 0usize;
    while pos < input.len() {
        // Probe for a usable match at `pos`.
        let mut match_len = 0usize;
        let mut match_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let slot = hash4(input, pos);
            let cand = table[slot];
            table[slot] = pos as u32;
            if cand != EMPTY {
                let cand = cand as usize;
                let dist = pos - cand;
                if dist <= MAX_DISTANCE {
                    let limit = (input.len() - pos).min(MAX_MATCH);
                    let mut len = 0;
                    while len < limit && input[cand + len] == input[pos + len] {
                        len += 1;
                    }
                    if len >= MIN_MATCH {
                        match_len = len;
                        match_dist = dist;
                    }
                }
            }
        }
        if ctrl_bit == 8 {
            out.push(0);
            ctrl_at = out.len() - 1;
            ctrl_bit = 0;
        }
        if match_len >= MIN_MATCH {
            out[ctrl_at] |= 1 << ctrl_bit;
            out.extend_from_slice(&(match_dist as u16).to_le_bytes());
            out.push((match_len - MIN_MATCH) as u8);
            pos += match_len;
        } else {
            out.push(input[pos]);
            pos += 1;
        }
        ctrl_bit += 1;
    }
    out
}

/// Decompresses a chunk produced by [`compress`], validating every
/// token against the declared `raw_len`: a match reaching before the
/// output start, output overrunning `raw_len`, a token stream ending
/// early, or trailing bytes all fail with a static description (the
/// store wraps it into a [`TraceError::Corrupt`](crate::TraceError)).
pub(crate) fn decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>, &'static str> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while out.len() < raw_len {
        let Some(&ctrl) = input.get(pos) else {
            return Err("compressed chunk ends before its declared raw length");
        };
        pos += 1;
        let mut bit = 0u32;
        while bit < 8 && out.len() < raw_len {
            if ctrl & (1 << bit) != 0 {
                let Some(token) = input.get(pos..pos + 3) else {
                    return Err("compressed chunk ends mid-match-token");
                };
                pos += 3;
                let dist = u16::from_le_bytes([token[0], token[1]]) as usize;
                let len = token[2] as usize + MIN_MATCH;
                if dist == 0 || dist > out.len() {
                    return Err("match distance reaches before the chunk start");
                }
                if out.len() + len > raw_len {
                    return Err("match overruns the declared raw length");
                }
                // Byte-wise copy: matches may overlap their own output
                // (dist < len replicates a short period).
                for _ in 0..len {
                    out.push(out[out.len() - dist]);
                }
            } else {
                let Some(&byte) = input.get(pos) else {
                    return Err("compressed chunk ends mid-literal");
                };
                pos += 1;
                out.push(byte);
            }
            bit += 1;
        }
    }
    if pos != input.len() {
        return Err("trailing bytes after the declared raw length");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SeedableRng};

    fn round_trip(input: &[u8]) {
        let packed = compress(input);
        let back = decompress(&packed, input.len()).expect("round trip");
        assert_eq!(back, input);
    }

    #[test]
    fn round_trips_edge_shapes() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(&[0u8; 10_000]);
        round_trip(b"abcdabcdabcdabcdabcd");
        // A period shorter than MIN_MATCH forces overlapping copies.
        round_trip(&b"ab".repeat(500));
        // Exactly MAX_MATCH-long repeats exercise the length cap.
        let mut long = vec![7u8; MAX_MATCH * 3 + 1];
        long.push(9);
        round_trip(&long);
    }

    #[test]
    fn compresses_repetitive_payloads() {
        let input = b"the same record pattern ".repeat(200);
        let packed = compress(&input);
        assert!(
            packed.len() * 4 < input.len(),
            "{} bytes packed from {}",
            packed.len(),
            input.len()
        );
    }

    #[test]
    fn round_trips_random_and_structured_noise() {
        let mut rng = SmallRng::seed_from_u64(0x5407);
        for case in 0..50 {
            let len: usize = rng.gen_range(0..4096);
            let data: Vec<u8> = if case % 2 == 0 {
                // Incompressible noise.
                (0..len).map(|_| rng.next_u64() as u8).collect()
            } else {
                // Loopy structure like a delta-encoded trace.
                (0..len).map(|i| ((i * 7) % 23) as u8).collect()
            };
            round_trip(&data);
        }
    }

    #[test]
    fn rejects_malformed_streams() {
        // Declared length never reached.
        assert!(decompress(&[], 1).is_err());
        // Match before output starts: control byte says match, dist 1
        // with empty output.
        assert!(decompress(&[0b0000_0001, 1, 0, 0], 8).is_err());
        // Truncated match token.
        assert!(decompress(&[0b0000_0010, b'a', 1, 0], 8).is_err());
        // Trailing garbage after raw_len satisfied.
        let mut packed = compress(b"abcd");
        packed.push(0);
        assert!(decompress(&packed, 4).is_err());
        // Output would overrun raw_len.
        let packed = compress(&b"abcd".repeat(10));
        assert!(decompress(&packed, 5).is_err());
    }

    #[test]
    fn deterministic_output() {
        let input: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(compress(&input), compress(&input));
    }
}
